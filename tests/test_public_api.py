"""Tests that the package's public API surface is importable and coherent."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "0.1.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_exposed(self):
        assert callable(repro.load_dataset)
        assert callable(repro.verify_by_enumeration)
        assert callable(repro.max_certified_poisoning)
        assert isinstance(repro.list_datasets(), list)

    def test_quickstart_flow(self):
        """The docstring quickstart must actually run."""
        split = repro.load_dataset("iris", scale=0.3, seed=1)
        verifier = repro.PoisoningVerifier(max_depth=1, domain="box")
        result = verifier.verify(split.train, split.test.X[0], n=1)
        assert isinstance(result, repro.VerificationResult)
        assert result.status in list(repro.VerificationStatus)
