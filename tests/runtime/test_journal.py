"""Tests for the resumable run journal."""

from repro.domains.interval import Interval
from repro.runtime import RunJournal, run_id
from repro.verify.result import VerificationResult, VerificationStatus


def _result(index):
    return VerificationResult(
        status=VerificationStatus.ROBUST,
        poisoning_amount=2,
        predicted_class=index % 2,
        certified_class=index % 2,
        class_intervals=(Interval(0.0, 1.0),),
        domain="box",
        elapsed_seconds=0.1,
        peak_memory_bytes=0,
        exit_count=1,
        max_disjuncts=1,
        log10_num_datasets=3.0,
    )


class TestRunId:
    def test_deterministic(self):
        args = ("f" * 64, ["a" * 64, "b" * 64], "removal", 2, "depth=1")
        assert run_id(*args) == run_id(*args)

    def test_sensitive_to_every_facet(self):
        base = run_id("f" * 64, ["a" * 64], "removal", 2, "depth=1")
        assert run_id("e" * 64, ["a" * 64], "removal", 2, "depth=1") != base
        assert run_id("f" * 64, ["b" * 64], "removal", 2, "depth=1") != base
        assert run_id("f" * 64, ["a" * 64], "label-flip:k=2", 2, "depth=1") != base
        assert run_id("f" * 64, ["a" * 64], "removal", 3, "depth=1") != base
        assert run_id("f" * 64, ["a" * 64], "removal", 2, "depth=2") != base

    def test_sensitive_to_point_order(self):
        digests = ["a" * 64, "b" * 64]
        assert run_id("f" * 64, digests, "removal", 2, "d") != run_id(
            "f" * 64, list(reversed(digests)), "removal", 2, "d"
        )


class TestJournal:
    def test_record_and_load(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        journal.record(0, _result(0))
        journal.record(3, _result(3))
        loaded = RunJournal(tmp_path, "abc123").load()
        assert sorted(loaded) == [0, 3]
        assert loaded[3].predicted_class == 1

    def test_missing_journal_loads_empty(self, tmp_path):
        assert RunJournal(tmp_path, "nothere").load() == {}

    def test_truncated_tail_is_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path, "trunc")
        journal.record(0, _result(0))
        journal.record(1, _result(1))
        text = journal.path.read_text(encoding="utf-8")
        # Simulate a crash mid-append: cut the last line in half.
        journal.path.write_text(text[: len(text) - 40], encoding="utf-8")
        loaded = journal.load()
        assert sorted(loaded) == [0]

    def test_runs_are_isolated(self, tmp_path):
        RunJournal(tmp_path, "one").record(0, _result(0))
        assert RunJournal(tmp_path, "two").load() == {}

    def test_discard(self, tmp_path):
        journal = RunJournal(tmp_path, "gone")
        journal.record(0, _result(0))
        journal.discard()
        assert not journal.exists()
        assert journal.load() == {}
        journal.discard()  # idempotent
