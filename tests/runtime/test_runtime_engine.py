"""Integration tests: CertificationEngine driving the runtime layer."""

import numpy as np
import pytest

import repro.api.engine as engine_module
from repro.api import CertificationEngine, CertificationRequest
from repro.poisoning.models import (
    CompositePoisoningModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)
from repro.runtime import CertificationRuntime
from repro.verify.search import max_certified_poisoning
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0], [0.8], [10.2], [1.2], [11.5]])


def _engine(tmp_path, **runtime_kwargs):
    return CertificationEngine(
        max_depth=1,
        domain="box",
        runtime=CertificationRuntime(tmp_path / "cache", **runtime_kwargs),
    )


def _request(n=2):
    return CertificationRequest(
        well_separated_dataset(), POINTS, RemovalPoisoningModel(n)
    )


def _forbid_compute(monkeypatch):
    def boom(self, *args, **kwargs):
        raise AssertionError("learner was invoked on a fully cached batch")

    monkeypatch.setattr(engine_module.CertificationEngine, "_compute_stream", boom)
    monkeypatch.setattr(engine_module.CertificationEngine, "_certify_one", boom)


class TestWarmCache:
    def test_second_identical_batch_runs_zero_learners(self, tmp_path, monkeypatch):
        engine = _engine(tmp_path)
        cold = engine.verify(_request())
        assert cold.runtime_stats["learner_invocations"] == len(POINTS)
        _forbid_compute(monkeypatch)
        warm = engine.verify(_request())
        stats = warm.runtime_stats
        assert stats["learner_invocations"] == 0
        assert stats["cache_misses"] == 0
        assert stats["journal_restored"] + stats["cache_hits"] == len(POINTS)
        assert stats["hit_rate"] == 1.0
        assert [r.status for r in warm.results] == [r.status for r in cold.results]
        assert [r.class_intervals for r in warm.results] == [
            r.class_intervals for r in cold.results
        ]

    def test_warm_cache_survives_process_boundary_simulation(self, tmp_path, monkeypatch):
        # A fresh engine + fresh runtime over the same cache dir mimics a new
        # process: only the on-disk state may answer.
        _engine(tmp_path).verify(_request())
        fresh = _engine(tmp_path, resume=False)
        _forbid_compute(monkeypatch)
        warm = fresh.verify(_request())
        assert warm.runtime_stats["learner_invocations"] == 0
        assert warm.runtime_stats["cache_hits"] == len(POINTS)

    def test_results_match_runtime_free_engine(self, tmp_path):
        plain = CertificationEngine(max_depth=1, domain="box")
        baseline = plain.verify(_request())
        routed = _engine(tmp_path).verify(_request())
        assert [r.status for r in routed.results] == [
            r.status for r in baseline.results
        ]
        assert [r.predicted_class for r in routed.results] == [
            r.predicted_class for r in baseline.results
        ]


class TestMonotoneReuse:
    def _big_request(self, n):
        # per_class=40 keeps every probe point certifiable up to budget 4.
        return CertificationRequest(
            well_separated_dataset(40), POINTS, RemovalPoisoningModel(n)
        )

    def test_smaller_budget_served_from_larger_proof(self, tmp_path, monkeypatch):
        engine = _engine(tmp_path)
        at_four = engine.verify(self._big_request(4))
        assert all(r.is_certified for r in at_four.results)
        _forbid_compute(monkeypatch)
        at_two = engine.verify(self._big_request(2))
        stats = at_two.runtime_stats
        assert stats["learner_invocations"] == 0
        assert stats["cache_monotone_hits"] == len(POINTS)
        assert all(r.is_certified for r in at_two.results)
        # Derived results are re-anchored to the requested budget.
        assert all(r.poisoning_amount == 2 for r in at_two.results)
        assert all("budget 4" in r.message for r in at_two.results)

    def test_unknown_derivation_drops_unsound_intervals(self, tmp_path, monkeypatch):
        # Intervals stored for unknown-at-2 under-approximate the reachable
        # set at budget 8, so the derived verdict must not carry them; the
        # robust-direction derivation keeps its (over-approximating) ones.
        engine = _engine(tmp_path)
        small = engine.verify(_request(8))
        unknown_at_8 = [i for i, r in enumerate(small.results) if not r.is_certified]
        assert unknown_at_8, "expected at least one unknown point at budget 8"
        _forbid_compute(monkeypatch)
        derived = engine.verify(
            CertificationRequest(
                well_separated_dataset(), POINTS, RemovalPoisoningModel(12)
            )
        )
        for index in unknown_at_8:
            result = derived.results[index]
            assert not result.is_certified
            assert result.class_intervals == ()
            assert "budget 8" in result.message

    def test_label_flip_budgets_are_monotone_too(self, tmp_path, monkeypatch):
        dataset = well_separated_dataset(40)
        engine = _engine(tmp_path)
        flipped = engine.verify(
            CertificationRequest(dataset, POINTS[:2], LabelFlipModel(2))
        )
        assert all(r.is_certified for r in flipped.results)
        _forbid_compute(monkeypatch)
        derived = engine.verify(
            CertificationRequest(dataset, POINTS[:2], LabelFlipModel(1))
        )
        assert derived.runtime_stats["cache_monotone_hits"] == 2

    def test_composite_pairs_derive_along_dominance(self, tmp_path, monkeypatch):
        dataset = well_separated_dataset(40)
        engine = CertificationEngine(
            max_depth=1,
            domain="either",
            runtime=CertificationRuntime(tmp_path / "cache"),
        )
        proved = engine.verify(
            CertificationRequest(dataset, POINTS[:2], CompositePoisoningModel(1, 1))
        )
        assert all(r.is_certified for r in proved.results)
        _forbid_compute(monkeypatch)
        # Both dominated pairs resolve from the (1, 1) proof without learners.
        for pair in ((0, 1), (1, 0)):
            derived = engine.verify(
                CertificationRequest(dataset, POINTS[:2], CompositePoisoningModel(*pair))
            )
            assert derived.runtime_stats["learner_invocations"] == 0, pair
            assert derived.runtime_stats["cache_monotone_hits"] == 2, pair
            assert all(r.is_certified for r in derived.results)

    def test_composite_non_nested_pair_misses_the_cache(self, tmp_path):
        dataset = well_separated_dataset(40)
        engine = CertificationEngine(
            max_depth=1,
            domain="either",
            runtime=CertificationRuntime(tmp_path / "cache"),
        )
        engine.verify(
            CertificationRequest(dataset, POINTS[:2], CompositePoisoningModel(2, 1))
        )
        # (1, 2) is incomparable with (2, 1): the robust proof must not leak.
        sideways = engine.verify(
            CertificationRequest(dataset, POINTS[:2], CompositePoisoningModel(1, 2))
        )
        assert sideways.runtime_stats["cache_monotone_hits"] == 0
        assert sideways.runtime_stats["learner_invocations"] == 2

    def test_nominal_amount_rewritten_on_shared_resolved_budget(self, tmp_path):
        # n=1000 and n=2000 both resolve to |T| removals: one proof, two
        # reports, each stating its own nominal amount.
        dataset = well_separated_dataset()
        engine = _engine(tmp_path)
        first = engine.verify(
            CertificationRequest(dataset, POINTS[:1], RemovalPoisoningModel(1000))
        )
        second = engine.verify(
            CertificationRequest(dataset, POINTS[:1], RemovalPoisoningModel(2000))
        )
        assert second.runtime_stats["learner_invocations"] == 0
        assert first.results[0].poisoning_amount == 1000
        assert second.results[0].poisoning_amount == 2000


class TestEnvironmentalOutcomes:
    def test_timeouts_neither_cached_nor_journaled(self, tmp_path, monkeypatch):
        from repro.verify.result import VerificationResult, VerificationStatus

        timeout = VerificationResult(
            status=VerificationStatus.TIMEOUT,
            poisoning_amount=2,
            predicted_class=0,
            certified_class=None,
            class_intervals=(),
            domain="box",
            elapsed_seconds=1.0,
            peak_memory_bytes=0,
            exit_count=0,
            max_disjuncts=0,
            log10_num_datasets=3.0,
            message="timed out",
        )

        def compute_timeouts(self, dataset, rows, model, *, n_jobs=1, shared_handle=None):
            yield from (timeout for _ in rows)

        engine = _engine(tmp_path)
        monkeypatch.setattr(
            engine_module.CertificationEngine, "_compute_stream", compute_timeouts
        )
        first = engine.verify(_request())
        assert all(r.status is VerificationStatus.TIMEOUT for r in first.results)
        # A second (resumed) run must re-attempt every point: timeouts are
        # machine-dependent and may not repeat with more time or CPU.
        second = engine.verify(_request())
        stats = second.runtime_stats
        assert stats["journal_restored"] == 0
        assert stats["cache_hits"] == 0
        assert stats["learner_invocations"] == len(POINTS)


class TestResume:
    def test_interrupted_batch_resumes_where_it_stopped(self, tmp_path):
        limited = _engine(tmp_path, max_new_points=2)
        partial = list(limited.certify_stream(_request()))
        assert len(partial) == 2
        stats = limited.runtime.last_batch_stats
        assert stats.truncated_at == 2
        # Truncated stats describe only what was actually served.
        assert stats.points == 2
        assert stats.learner_invocations == 2
        assert stats.hit_rate == 0.0
        resumed = _engine(tmp_path, resume=True)
        full = resumed.verify(_request())
        stats = full.runtime_stats
        assert len(full.results) == len(POINTS)
        assert stats["journal_restored"] == 2
        assert stats["learner_invocations"] == len(POINTS) - 2
        baseline = CertificationEngine(max_depth=1, domain="box").verify(_request())
        assert [r.status for r in full.results] == [
            r.status for r in baseline.results
        ]

    def test_resume_false_discards_prior_progress(self, tmp_path):
        _engine(tmp_path, max_new_points=2).verify(_request())
        fresh = _engine(tmp_path, resume=False)
        report = fresh.verify(_request())
        # Journal dropped, but the verdict cache still answers the two
        # already-computed points.
        assert report.runtime_stats["journal_restored"] == 0
        assert report.runtime_stats["cache_hits"] == 2
        assert report.runtime_stats["learner_invocations"] == len(POINTS) - 2


class TestBudgetSweep:
    def test_matches_uncached_search(self, tmp_path):
        dataset = well_separated_dataset()
        engine = _engine(tmp_path)
        plain = CertificationEngine(max_depth=1, domain="box")
        outcomes = engine.runtime.budget_sweep(
            engine, dataset, POINTS, max_budget=16
        )
        for row, outcome in zip(POINTS, outcomes):
            expected = max_certified_poisoning(plain, dataset, row, max_n=16)
            assert outcome.max_certified_n == expected.max_certified_n

    def test_repeat_sweep_is_free(self, tmp_path):
        dataset = well_separated_dataset()
        engine = _engine(tmp_path)
        first = engine.runtime.budget_sweep(engine, dataset, POINTS, max_budget=16)
        assert sum(o.learner_invocations for o in first) > 0
        again = engine.runtime.budget_sweep(engine, dataset, POINTS, max_budget=16)
        assert sum(o.learner_invocations for o in again) == 0
        assert [o.max_certified_n for o in again] == [
            o.max_certified_n for o in first
        ]

    def test_certify_point_routes_through_cache(self, tmp_path, monkeypatch):
        dataset = well_separated_dataset()
        engine = _engine(tmp_path)
        first = engine.certify_point(dataset, [0.5], 2)
        _forbid_compute(monkeypatch)
        second = engine.certify_point(dataset, [0.5], 2)
        assert second.status == first.status


class TestDeduplication:
    def test_duplicate_rows_certified_once(self, tmp_path):
        tiled = np.tile(POINTS[:2], (3, 1))  # each point appears three times
        engine = _engine(tmp_path)
        report = engine.verify(
            CertificationRequest(
                well_separated_dataset(), tiled, RemovalPoisoningModel(2)
            )
        )
        stats = report.runtime_stats
        assert stats["learner_invocations"] == 2
        assert stats["deduplicated"] == 4
        # Every occurrence gets the same verdict as its first computation.
        assert [r.status for r in report.results[:2]] * 3 == [
            r.status for r in report.results
        ]

    def test_runtime_requires_cache_dir_for_max_new_points(self):
        with pytest.raises(ValueError, match="cache_dir"):
            CertificationRuntime(max_new_points=2)


class TestParallelRuntime:
    def test_parallel_batch_parity_with_runtime(self, tmp_path):
        # Exercises the shared-memory pool path when the host supports it and
        # the serial fallback otherwise; parity must hold either way.
        engine = _engine(tmp_path)
        serial = CertificationEngine(max_depth=1, domain="box").verify(_request())
        parallel = engine.verify(_request(), n_jobs=2)
        assert [r.status for r in parallel.results] == [
            r.status for r in serial.results
        ]
        assert [r.predicted_class for r in parallel.results] == [
            r.predicted_class for r in serial.results
        ]

    def test_engine_pickles_without_runtime_state(self, tmp_path):
        import pickle

        engine = _engine(tmp_path)
        engine.verify(_request())
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.runtime is None
        assert clone._plan_cache == {}
