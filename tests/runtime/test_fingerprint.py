"""Tests for the content-addressed keys of the runtime layer."""

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.poisoning.models import (
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)
from repro.api import CertificationEngine
from repro.runtime import (
    engine_cache_key,
    fingerprint_dataset,
    model_cache_key,
    monotone_in_budget,
    point_digest,
)


def _dataset(**changes):
    fields = dict(
        X=np.array([[0.0, 1.0], [1.0, 0.0], [2.0, 1.0], [3.0, 0.0]]),
        y=np.array([0, 1, 0, 1]),
        n_classes=2,
        name="fp-test",
    )
    fields.update(changes)
    return Dataset(**fields)


class TestDatasetFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert fingerprint_dataset(_dataset()) == fingerprint_dataset(_dataset())

    def test_cosmetic_metadata_excluded(self):
        renamed = _dataset(
            name="other-name",
            feature_names=("alpha", "beta"),
            class_names=("neg", "pos"),
        )
        assert fingerprint_dataset(renamed) == fingerprint_dataset(_dataset())

    def test_content_changes_change_fingerprint(self):
        base = fingerprint_dataset(_dataset())
        shifted = _dataset(X=np.array([[0.0, 1.0], [1.0, 0.0], [2.0, 1.0], [3.0, 0.5]]))
        relabelled = _dataset(y=np.array([1, 1, 0, 1]))
        assert fingerprint_dataset(shifted) != base
        assert fingerprint_dataset(relabelled) != base

    def test_feature_kinds_included(self):
        boolean_ish = _dataset(
            X=np.array([[0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
        )
        as_real = Dataset(
            X=boolean_ish.X,
            y=boolean_ish.y,
            n_classes=2,
            feature_kinds=(FeatureKind.REAL, FeatureKind.REAL),
        )
        as_boolean = Dataset(
            X=boolean_ish.X,
            y=boolean_ish.y,
            n_classes=2,
            feature_kinds=(FeatureKind.BOOLEAN, FeatureKind.BOOLEAN),
        )
        assert fingerprint_dataset(as_real) != fingerprint_dataset(as_boolean)

    def test_memoized_on_instance(self):
        dataset = _dataset()
        first = fingerprint_dataset(dataset)
        assert getattr(dataset, "_content_fingerprint") == first
        assert fingerprint_dataset(dataset) is first


class TestPointDigest:
    def test_equal_points_equal_digest(self):
        assert point_digest([1.0, 2.0]) == point_digest(np.array([1.0, 2.0]))

    def test_different_points_differ(self):
        assert point_digest([1.0, 2.0]) != point_digest([2.0, 1.0])


class TestModelKey:
    def test_removal_and_fractional_share_family(self):
        # On a 100-row set, 25% == 25 removals: same perturbation space.
        family_a, budget_a = model_cache_key(RemovalPoisoningModel(25), 100)
        family_b, budget_b = model_cache_key(FractionalRemovalModel(0.25), 100)
        assert (family_a, budget_a) == (family_b, budget_b) == ("removal", 25)

    def test_removal_budget_resolves_against_size(self):
        family, budget = model_cache_key(RemovalPoisoningModel(1000), 100)
        assert (family, budget) == ("removal", 100)

    def test_label_flip_family_includes_classes(self):
        family_two, _ = model_cache_key(LabelFlipModel(2, n_classes=2), 100)
        family_three, _ = model_cache_key(LabelFlipModel(2, n_classes=3), 100)
        assert family_two != family_three

    def test_monotone_families(self):
        assert monotone_in_budget(RemovalPoisoningModel(2))
        assert monotone_in_budget(FractionalRemovalModel(0.1))
        assert monotone_in_budget(LabelFlipModel(1))


class TestEngineKey:
    def test_same_configuration_same_key(self):
        assert engine_cache_key(CertificationEngine(max_depth=2)) == engine_cache_key(
            CertificationEngine(max_depth=2)
        )

    def test_verdict_relevant_knobs_change_key(self):
        base = engine_cache_key(CertificationEngine(max_depth=2, domain="either"))
        assert engine_cache_key(CertificationEngine(max_depth=3)) != base
        assert engine_cache_key(CertificationEngine(max_depth=2, domain="box")) != base
        assert (
            engine_cache_key(CertificationEngine(max_depth=2, max_disjuncts=16)) != base
        )

    def test_timeout_excluded_from_key(self):
        # Timeout verdicts are never cached, so the budget is not part of the
        # cache identity: warm caches survive a timeout change.
        with_timeout = CertificationEngine(max_depth=2, timeout_seconds=5.0)
        without = CertificationEngine(max_depth=2, timeout_seconds=None)
        assert engine_cache_key(with_timeout) == engine_cache_key(without)
