"""Tests for the shared-memory dataset plane."""

import numpy as np
import pytest

from repro.api import CertificationEngine
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import DatasetStore, fingerprint_dataset
from tests.conftest import well_separated_dataset


@pytest.fixture
def store():
    store = DatasetStore()
    yield store
    store.close()


def _publish(store, dataset):
    handle = store.publish(dataset)
    if handle is None:
        pytest.skip("shared memory unavailable on this host")
    return handle


class TestPublishAttach:
    def test_round_trip_preserves_content(self, store):
        dataset = well_separated_dataset()
        attached = _publish(store, dataset).attach()
        assert np.array_equal(attached.X, dataset.X)
        assert np.array_equal(attached.y, dataset.y)
        assert attached.n_classes == dataset.n_classes
        assert attached.feature_kinds == dataset.feature_kinds
        assert attached.feature_names == dataset.feature_names
        assert attached.class_names == dataset.class_names
        assert attached.name == dataset.name

    def test_attached_dataset_carries_fingerprint(self, store):
        dataset = well_separated_dataset()
        attached = _publish(store, dataset).attach()
        assert fingerprint_dataset(attached) == fingerprint_dataset(dataset)

    def test_handle_is_small_and_picklable(self, store):
        import pickle

        dataset = well_separated_dataset()
        handle = _publish(store, dataset)
        payload = pickle.dumps(handle)
        # The whole point: the handle must be orders of magnitude smaller
        # than the pickled dataset it stands in for.
        assert len(payload) < len(pickle.dumps(dataset))
        assert pickle.loads(payload).fingerprint == handle.fingerprint

    def test_same_content_reuses_segments(self, store):
        dataset = well_separated_dataset()
        copy = well_separated_dataset()
        first = _publish(store, dataset)
        second = store.publish(copy)
        assert second is first
        assert store.published_count == 1

    def test_certification_parity_on_attached_dataset(self, store):
        dataset = well_separated_dataset()
        attached = _publish(store, dataset).attach()
        engine = CertificationEngine(max_depth=1, domain="box")
        for x in ([0.5], [11.0]):
            original = engine.certify_point(dataset, x, RemovalPoisoningModel(1))
            mirrored = engine.certify_point(attached, x, RemovalPoisoningModel(1))
            assert mirrored.status == original.status
            assert mirrored.class_intervals == original.class_intervals


class TestLifecycle:
    def test_close_unlinks_segments(self):
        store = DatasetStore()
        dataset = well_separated_dataset()
        handle = _publish(store, dataset)
        store.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.X_spec.segment)
        assert store.published_count == 0

    def test_close_is_idempotent(self, store):
        _publish(store, well_separated_dataset())
        store.close()
        store.close()

    def test_lru_eviction_bounds_published_datasets(self):
        from multiprocessing import shared_memory

        store = DatasetStore(max_datasets=1)
        try:
            first = _publish(store, well_separated_dataset(10))
            second = store.publish(well_separated_dataset(12))
            assert second is not None
            assert store.published_count == 1
            # The evicted dataset's segments are unlinked immediately.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first.X_spec.segment)
            # The survivor is still attachable.
            shared_memory.SharedMemory(name=second.X_spec.segment).close()
        finally:
            store.close()
