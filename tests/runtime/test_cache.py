"""Tests for the persistent, monotonicity-aware verdict cache."""

import pytest

from repro.domains.interval import Interval
from repro.runtime import CertificationCache
from repro.verify.result import VerificationResult, VerificationStatus

FP = "a" * 64
POINT = "b" * 64
ENGINE = "depth=1|domain=box"


def _result(status, n=2):
    return VerificationResult(
        status=status,
        poisoning_amount=n,
        predicted_class=0,
        certified_class=0 if status is VerificationStatus.ROBUST else None,
        class_intervals=(Interval(0.6, 0.9), Interval(0.1, 0.4)),
        domain="box",
        elapsed_seconds=0.5,
        peak_memory_bytes=1024,
        exit_count=3,
        max_disjuncts=1,
        log10_num_datasets=4.2,
        message="",
    )


@pytest.fixture
def cache(tmp_path):
    cache = CertificationCache(tmp_path)
    yield cache
    cache.close()


class TestExactHits:
    def test_round_trip(self, cache):
        stored = _result(VerificationStatus.ROBUST)
        assert cache.store(FP, POINT, "removal", ENGINE, 2, stored)
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 2)
        assert hit is not None and hit.is_exact
        assert hit.result == stored

    def test_miss_on_empty(self, cache):
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is None

    def test_persists_across_reopen(self, cache, tmp_path):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        cache.close()
        reopened = CertificationCache(tmp_path)
        assert reopened.lookup(FP, POINT, "removal", ENGINE, 2) is not None
        reopened.close()

    def test_key_facets_isolate_entries(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        assert cache.lookup("c" * 64, POINT, "removal", ENGINE, 2) is None
        assert cache.lookup(FP, "d" * 64, "removal", ENGINE, 2) is None
        assert cache.lookup(FP, POINT, "label-flip:k=2", ENGINE, 2) is None
        assert cache.lookup(FP, POINT, "removal", "depth=2|domain=box", 2) is None


class TestMonotoneDerivation:
    def test_robust_at_larger_budget_answers_smaller(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 3)
        assert hit is not None and not hit.is_exact
        assert hit.stored_budget == 5
        assert hit.result.status is VerificationStatus.ROBUST

    def test_unknown_at_smaller_budget_answers_larger(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.UNKNOWN, 2))
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 7)
        assert hit is not None and not hit.is_exact
        assert hit.result.status is VerificationStatus.UNKNOWN

    def test_no_derivation_in_the_unsound_directions(self, cache):
        # robust at 2 says nothing about 3; unknown at 5 says nothing about 4.
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST, 2))
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.UNKNOWN, 5))
        assert cache.lookup(FP, POINT, "removal", ENGINE, 3) is None
        assert cache.lookup(FP, POINT, "removal", ENGINE, 4) is None

    def test_monotone_flag_disables_derivation(self, cache):
        cache.store(FP, POINT, "weird", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        assert cache.lookup(FP, POINT, "weird", ENGINE, 3, monotone=False) is None


class TestCachePolicy:
    def test_environmental_outcomes_never_stored(self, cache):
        assert not cache.store(
            FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.TIMEOUT)
        )
        assert not cache.store(
            FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.RESOURCE_EXHAUSTED)
        )
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is None

    def test_stats_and_clear(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        cache.store(FP, "f" * 64, "removal", ENGINE, 2, _result(VerificationStatus.UNKNOWN))
        stats = cache.stats()
        assert stats["verdicts"] == 2
        assert stats["by_status"] == {"robust": 1, "unknown": 1}
        assert stats["datasets"] == 1
        assert cache.clear() == 2
        assert cache.stats()["verdicts"] == 0

    def test_clear_removes_run_journals(self, cache):
        # A cleared cache must not keep serving verdicts through --resume.
        journal = cache.cache_dir / "journal-deadbeef.jsonl"
        journal.write_text('{"index": 0}\n', encoding="utf-8")
        cache.clear()
        assert not journal.exists()

    def test_concurrent_handles_can_interleave_writes(self, tmp_path):
        # Two processes sharing a cache dir must not deadlock each other:
        # chunked commits + WAL keep write transactions short.
        first = CertificationCache(tmp_path)
        second = CertificationCache(tmp_path)
        try:
            first.store(FP, POINT, "removal", ENGINE, 1, _result(VerificationStatus.ROBUST, 1))
            second.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST, 2))
            first.store(FP, POINT, "removal", ENGINE, 3, _result(VerificationStatus.ROBUST, 3))
            assert second.stats()["verdicts"] == 3
            assert first._db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        finally:
            first.close()
            second.close()

    def test_cache_dir_expands_user(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = CertificationCache("~/certcache")
        assert cache.cache_dir == tmp_path / "certcache"
        assert cache.cache_dir.is_dir()
        cache.close()
