"""Tests for the persistent, monotonicity-aware verdict cache."""

import pytest

from repro.domains.interval import Interval
from repro.runtime import CertificationCache
from repro.verify.result import VerificationResult, VerificationStatus

FP = "a" * 64
POINT = "b" * 64
ENGINE = "depth=1|domain=box"


def _result(status, n=2):
    return VerificationResult(
        status=status,
        poisoning_amount=n,
        predicted_class=0,
        certified_class=0 if status is VerificationStatus.ROBUST else None,
        class_intervals=(Interval(0.6, 0.9), Interval(0.1, 0.4)),
        domain="box",
        elapsed_seconds=0.5,
        peak_memory_bytes=1024,
        exit_count=3,
        max_disjuncts=1,
        log10_num_datasets=4.2,
        message="",
    )


@pytest.fixture
def cache(tmp_path):
    cache = CertificationCache(tmp_path)
    yield cache
    cache.close()


class TestExactHits:
    def test_round_trip(self, cache):
        stored = _result(VerificationStatus.ROBUST)
        assert cache.store(FP, POINT, "removal", ENGINE, 2, stored)
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 2)
        assert hit is not None and hit.is_exact
        assert hit.result == stored

    def test_miss_on_empty(self, cache):
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is None

    def test_persists_across_reopen(self, cache, tmp_path):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        cache.close()
        reopened = CertificationCache(tmp_path)
        assert reopened.lookup(FP, POINT, "removal", ENGINE, 2) is not None
        reopened.close()

    def test_key_facets_isolate_entries(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        assert cache.lookup("c" * 64, POINT, "removal", ENGINE, 2) is None
        assert cache.lookup(FP, "d" * 64, "removal", ENGINE, 2) is None
        assert cache.lookup(FP, POINT, "label-flip:k=2", ENGINE, 2) is None
        assert cache.lookup(FP, POINT, "removal", "depth=2|domain=box", 2) is None


class TestMonotoneDerivation:
    def test_robust_at_larger_budget_answers_smaller(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 3)
        assert hit is not None and not hit.is_exact
        assert hit.stored_budget == 5
        assert hit.result.status is VerificationStatus.ROBUST

    def test_unknown_at_smaller_budget_answers_larger(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.UNKNOWN, 2))
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 7)
        assert hit is not None and not hit.is_exact
        assert hit.result.status is VerificationStatus.UNKNOWN

    def test_no_derivation_in_the_unsound_directions(self, cache):
        # robust at 2 says nothing about 3; unknown at 5 says nothing about 4.
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST, 2))
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.UNKNOWN, 5))
        assert cache.lookup(FP, POINT, "removal", ENGINE, 3) is None
        assert cache.lookup(FP, POINT, "removal", ENGINE, 4) is None

    def test_monotone_flag_disables_derivation(self, cache):
        cache.store(FP, POINT, "weird", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        assert cache.lookup(FP, POINT, "weird", ENGINE, 3, monotone=False) is None


COMPOSITE = "composite:k=3"


class TestPairBudgetDerivation:
    """Composite verdicts derive along (r, f) dominance, never across it."""

    def test_exact_pair_round_trip(self, cache):
        stored = _result(VerificationStatus.ROBUST)
        assert cache.store(FP, POINT, COMPOSITE, ENGINE, (2, 1), stored)
        hit = cache.lookup(FP, POINT, COMPOSITE, ENGINE, (2, 1))
        assert hit is not None and hit.is_exact
        assert hit.stored_budget == (2, 1)
        # The pair key is two-dimensional: (1, 2) is a different cell.
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (1, 2), monotone=False) is None

    def test_robust_pair_answers_dominated_pairs(self, cache):
        cache.store(FP, POINT, COMPOSITE, ENGINE, (2, 2), _result(VerificationStatus.ROBUST))
        for dominated in ((1, 2), (2, 1), (0, 0), (1, 1)):
            hit = cache.lookup(FP, POINT, COMPOSITE, ENGINE, dominated)
            assert hit is not None and not hit.is_exact, dominated
            assert hit.stored_budget == (2, 2)
            assert hit.result.status is VerificationStatus.ROBUST

    def test_unknown_pair_answers_dominating_pairs(self, cache):
        cache.store(FP, POINT, COMPOSITE, ENGINE, (1, 1), _result(VerificationStatus.UNKNOWN))
        for dominating in ((2, 1), (1, 2), (3, 3)):
            hit = cache.lookup(FP, POINT, COMPOSITE, ENGINE, dominating)
            assert hit is not None and not hit.is_exact, dominating
            assert hit.result.status is VerificationStatus.UNKNOWN

    def test_never_derived_across_non_nested_pairs(self, cache):
        # (3, 1) and (1, 3) are incomparable: neither perturbation space
        # contains the other, so neither verdict may answer the other.
        cache.store(FP, POINT, COMPOSITE, ENGINE, (3, 1), _result(VerificationStatus.ROBUST))
        cache.store(FP, "e" * 64, COMPOSITE, ENGINE, (1, 3), _result(VerificationStatus.UNKNOWN))
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (1, 3)) is None
        assert cache.lookup(FP, "e" * 64, COMPOSITE, ENGINE, (3, 1)) is None

    def test_partial_dominance_is_not_dominance(self, cache):
        # Robust at (2, 1): one component larger, one smaller than (1, 2).
        cache.store(FP, POINT, COMPOSITE, ENGINE, (2, 1), _result(VerificationStatus.ROBUST))
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (1, 2)) is None
        # Unknown at (1, 2) says nothing about (2, 1) either.
        other = "f" * 64
        cache.store(FP, other, COMPOSITE, ENGINE, (1, 2), _result(VerificationStatus.UNKNOWN))
        assert cache.lookup(FP, other, COMPOSITE, ENGINE, (2, 1)) is None

    def test_scalar_families_unaffected_by_pair_storage(self, cache):
        # A 1-D budget stores as (n, 0); the scalar monotone rules still hold.
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        hit = cache.lookup(FP, POINT, "removal", ENGINE, 3)
        assert hit is not None and hit.stored_budget == 5


class TestSchemaMigration:
    def test_pre_composite_database_is_rebuilt_with_verdicts_intact(self, tmp_path):
        import json as json_module
        import sqlite3

        # Build a v1 database exactly as PR 2 created it.
        db_path = tmp_path / CertificationCache.DB_NAME
        connection = sqlite3.connect(str(db_path))
        connection.executescript(
            """
            CREATE TABLE verdicts (
                dataset_fp   TEXT    NOT NULL,
                point_digest TEXT    NOT NULL,
                family       TEXT    NOT NULL,
                engine_key   TEXT    NOT NULL,
                budget       INTEGER NOT NULL,
                status       TEXT    NOT NULL,
                payload      TEXT    NOT NULL,
                created_at   REAL    NOT NULL,
                PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget)
            );
            CREATE INDEX idx_verdicts_lookup
                ON verdicts (dataset_fp, point_digest, family, engine_key, status, budget);
            """
        )
        old = _result(VerificationStatus.ROBUST, 4)
        connection.execute(
            "INSERT INTO verdicts VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (FP, POINT, "removal", ENGINE, 4, "robust", json_module.dumps(old.to_dict()), 0.0),
        )
        stale_flip = _result(VerificationStatus.UNKNOWN, 2)
        connection.execute(
            "INSERT INTO verdicts VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (FP, POINT, "label-flip:k=2", ENGINE, 2, "unknown",
             json_module.dumps(stale_flip.to_dict()), 0.0),
        )
        connection.commit()
        connection.close()

        cache = CertificationCache(tmp_path)
        try:
            # The migrated removal row answers exact and monotone queries...
            assert cache.lookup(FP, POINT, "removal", ENGINE, 4).is_exact
            assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is not None
            # ...but the pre-ladder flip verdict is dropped: it was a Box-only
            # UNKNOWN under the same key a ladder engine now resolves to, and
            # keeping it would mask the flip-disjuncts precision forever.
            assert cache.lookup(FP, POINT, "label-flip:k=2", ENGINE, 2) is None
            # The rebuilt table accepts pair budgets at full precision.
            cache.store(FP, POINT, COMPOSITE, ENGINE, (2, 1), _result(VerificationStatus.ROBUST))
            cache.store(FP, POINT, COMPOSITE, ENGINE, (2, 3), _result(VerificationStatus.ROBUST))
            assert cache.stats()["verdicts"] == 3
            assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (2, 2)).stored_budget == (2, 3)
        finally:
            cache.close()


class TestGarbageCollection:
    """Satellite: LRU eviction that prefers derivable verdicts."""

    def test_derivable_verdicts_evicted_before_underivable_ones(self, cache):
        # Point P: robust@5 dominates robust@2 (the @2 row is derivable).
        cache.store(FP, POINT, "removal", ENGINE, 5, _result(VerificationStatus.ROBUST, 5))
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST, 2))
        # Point Q: unknown@1 dominates unknown@4 (the @4 row is derivable).
        other = "e" * 64
        cache.store(FP, other, "removal", ENGINE, 1, _result(VerificationStatus.UNKNOWN, 1))
        cache.store(FP, other, "removal", ENGINE, 4, _result(VerificationStatus.UNKNOWN, 4))
        summary = cache.gc(max_entries=2)
        assert summary["evicted"] == 2
        assert summary["remaining"] == 2
        # The two *underivable* rows survive: they still answer every query
        # the four-row cache answered.
        assert cache.lookup(FP, POINT, "removal", ENGINE, 5).is_exact
        assert cache.lookup(FP, other, "removal", ENGINE, 1).is_exact
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2).stored_budget == 5
        assert cache.lookup(FP, other, "removal", ENGINE, 4).stored_budget == 1
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2, monotone=False) is None
        assert cache.lookup(FP, other, "removal", ENGINE, 4, monotone=False) is None

    def test_lru_breaks_ties_among_underivable_rows(self, cache):
        # Three incomparable verdicts (different points): pure LRU order.
        for index, digest in enumerate(("a" * 63 + "1", "a" * 63 + "2", "a" * 63 + "3")):
            cache.store(FP, digest, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        # Touch the first row so it becomes the most recently used.
        assert cache.lookup(FP, "a" * 63 + "1", "removal", ENGINE, 2) is not None
        cache.commit()
        summary = cache.gc(max_entries=1)
        assert summary["evicted"] == 2
        assert cache.lookup(FP, "a" * 63 + "1", "removal", ENGINE, 2) is not None
        assert cache.lookup(FP, "a" * 63 + "2", "removal", ENGINE, 2) is None
        assert cache.lookup(FP, "a" * 63 + "3", "removal", ENGINE, 2) is None

    def test_max_age_drops_only_stale_rows(self, cache):
        import time as time_module

        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        # Backdate the row, then store a fresh one.
        with cache._lock:
            cache._db.execute(
                "UPDATE verdicts SET last_used = last_used - 1000"
            )
            cache._db.commit()
        cache.store(FP, "e" * 64, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        summary = cache.gc(max_age=500)
        assert summary["evicted"] == 1
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is None
        assert cache.lookup(FP, "e" * 64, "removal", ENGINE, 2) is not None
        del time_module

    def test_max_bytes_shrinks_the_database(self, cache):
        for index in range(64):
            digest = f"{index:064d}"
            cache.store(FP, digest, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        before = cache.gc()  # no bounds: pure measurement
        assert before["evicted"] == 0
        target = before["size_bytes_after"] // 2
        summary = cache.gc(max_bytes=target)
        assert summary["evicted"] > 0
        assert summary["size_bytes_after"] <= max(target, 4 * 4096)  # sqlite min pages
        assert summary["remaining"] == 64 - summary["evicted"]

    def test_pair_budget_dominance_in_eviction_order(self, cache):
        cache.store(FP, POINT, COMPOSITE, ENGINE, (3, 3), _result(VerificationStatus.ROBUST))
        cache.store(FP, POINT, COMPOSITE, ENGINE, (1, 2), _result(VerificationStatus.ROBUST))
        # (4, 1) is incomparable with (3, 3): NOT derivable, must survive.
        cache.store(FP, POINT, COMPOSITE, ENGINE, (4, 1), _result(VerificationStatus.ROBUST))
        summary = cache.gc(max_entries=2)
        assert summary["evicted"] == 1
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (3, 3), monotone=False) is not None
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (4, 1), monotone=False) is not None
        assert cache.lookup(FP, POINT, COMPOSITE, ENGINE, (1, 2), monotone=False) is None

    def test_gc_without_bounds_is_a_noop_report(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        summary = cache.gc()
        assert summary["evicted"] == 0
        assert summary["remaining"] == 1
        assert summary["repaired"] == 0
        assert summary["size_bytes_after"] > 0

    def test_clock_skew_ghost_rows_repaired_not_perpetually_fresh(self, cache):
        """Satellite: a row stamped while the clock was ahead must not become
        immortal.

        A ``last_used`` in the future sorts as the freshest row in the LRU
        order on every pass, so under ``max_entries`` pressure genuinely
        fresh rows get evicted as "oldest" while the ghost survives.  ``gc``
        clamps such stamps to *now* before applying any bound.
        """
        ghost = POINT
        cache.store(FP, ghost, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        # Simulate a backwards clock step: the ghost's stamp is an hour ahead.
        with cache._lock:
            cache._db.execute(
                "UPDATE verdicts SET last_used = last_used + 3600"
            )
            cache._db.commit()

        # Pass 1 — repair only (no bounds).  The skewed stamp is clamped.
        summary = cache.gc()
        assert summary["repaired"] == 1
        assert summary["evicted"] == 0

        # Pass 2 — a row stored *after* the repair is genuinely fresher.
        fresh = "e" * 64
        cache.store(FP, fresh, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        summary = cache.gc(max_entries=1)
        assert summary["evicted"] == 1
        assert summary["repaired"] == 0
        # Without the repair the ghost would have survived here and the
        # fresh row would have been evicted as "oldest".
        assert cache.lookup(FP, fresh, "removal", ENGINE, 2) is not None
        assert cache.lookup(FP, ghost, "removal", ENGINE, 2) is None

    def test_recency_stamp_survives_reopen(self, cache, tmp_path):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is not None
        cache.close()  # flushes buffered recency stamps
        reopened = CertificationCache(tmp_path)
        try:
            row = reopened._db.execute(
                "SELECT last_used, created_at FROM verdicts"
            ).fetchone()
            assert row[0] >= row[1] > 0
        finally:
            reopened.close()

    def test_pre_gc_database_gains_last_used_column(self, tmp_path):
        import json as json_module
        import sqlite3

        # A v2 (pair-budget, no last_used) database as PR 3 created it.
        db_path = tmp_path / CertificationCache.DB_NAME
        connection = sqlite3.connect(str(db_path))
        connection.executescript(
            """
            CREATE TABLE verdicts (
                dataset_fp   TEXT    NOT NULL,
                point_digest TEXT    NOT NULL,
                family       TEXT    NOT NULL,
                engine_key   TEXT    NOT NULL,
                budget       INTEGER NOT NULL,
                budget_f     INTEGER NOT NULL DEFAULT 0,
                status       TEXT    NOT NULL,
                payload      TEXT    NOT NULL,
                created_at   REAL    NOT NULL,
                PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget, budget_f)
            );
            """
        )
        old = _result(VerificationStatus.ROBUST, 4)
        connection.execute(
            "INSERT INTO verdicts VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (FP, POINT, "removal", ENGINE, 4, 0, "robust",
             json_module.dumps(old.to_dict()), 123.0),
        )
        connection.commit()
        connection.close()

        cache = CertificationCache(tmp_path)
        try:
            assert cache.lookup(FP, POINT, "removal", ENGINE, 4).is_exact
            # The migrated row inherited its creation time as recency.
            row = cache._db.execute(
                "SELECT created_at, last_used FROM verdicts WHERE budget=4 AND point_digest=?",
                (POINT,),
            ).fetchone()
            assert row[1] == row[0] == 123.0
            assert cache.gc(max_entries=10)["remaining"] == 1
        finally:
            cache.close()


class TestCachePolicy:
    def test_environmental_outcomes_never_stored(self, cache):
        assert not cache.store(
            FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.TIMEOUT)
        )
        assert not cache.store(
            FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.RESOURCE_EXHAUSTED)
        )
        assert cache.lookup(FP, POINT, "removal", ENGINE, 2) is None

    def test_stats_and_clear(self, cache):
        cache.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST))
        cache.store(FP, "f" * 64, "removal", ENGINE, 2, _result(VerificationStatus.UNKNOWN))
        stats = cache.stats()
        assert stats["verdicts"] == 2
        assert stats["by_status"] == {"robust": 1, "unknown": 1}
        assert stats["datasets"] == 1
        assert cache.clear() == 2
        assert cache.stats()["verdicts"] == 0

    def test_clear_removes_run_journals(self, cache):
        # A cleared cache must not keep serving verdicts through --resume.
        journal = cache.cache_dir / "journal-deadbeef.jsonl"
        journal.write_text('{"index": 0}\n', encoding="utf-8")
        cache.clear()
        assert not journal.exists()

    def test_concurrent_handles_can_interleave_writes(self, tmp_path):
        # Two processes sharing a cache dir must not deadlock each other:
        # chunked commits + WAL keep write transactions short.
        first = CertificationCache(tmp_path)
        second = CertificationCache(tmp_path)
        try:
            first.store(FP, POINT, "removal", ENGINE, 1, _result(VerificationStatus.ROBUST, 1))
            second.store(FP, POINT, "removal", ENGINE, 2, _result(VerificationStatus.ROBUST, 2))
            first.store(FP, POINT, "removal", ENGINE, 3, _result(VerificationStatus.ROBUST, 3))
            assert second.stats()["verdicts"] == 3
            assert first._db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        finally:
            first.close()
            second.close()

    def test_cache_dir_expands_user(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = CertificationCache("~/certcache")
        assert cache.cache_dir == tmp_path / "certcache"
        assert cache.cache_dir.is_dir()
        cache.close()
