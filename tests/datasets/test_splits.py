"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.datasets.splits import train_test_split
from repro.utils.validation import ValidationError


def toy_dataset(size: int = 50, n_classes: int = 3) -> Dataset:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(size, 2))
    y = rng.integers(0, n_classes, size=size)
    y[:n_classes] = np.arange(n_classes)  # ensure every class appears
    return Dataset(X=X, y=y, n_classes=n_classes)


class TestTrainTestSplit:
    def test_sizes(self):
        split = train_test_split(toy_dataset(50), 0.2, rng=0)
        assert len(split.train) == 40
        assert len(split.test) == 10

    def test_partition_is_disjoint_and_complete(self):
        dataset = toy_dataset(40)
        split = train_test_split(dataset, 0.25, rng=1)
        train_rows = {tuple(row) for row in split.train.X}
        test_rows = {tuple(row) for row in split.test.X}
        assert not train_rows & test_rows
        assert len(split.train) + len(split.test) == len(dataset)

    def test_every_class_in_training_set(self):
        dataset = toy_dataset(30, n_classes=5)
        split = train_test_split(dataset, 0.5, rng=2)
        assert set(np.unique(split.train.y)) == set(range(5))

    def test_deterministic_given_seed(self):
        dataset = toy_dataset(30)
        a = train_test_split(dataset, 0.3, rng=7)
        b = train_test_split(dataset, 0.3, rng=7)
        assert np.array_equal(a.train.X, b.train.X)

    def test_zero_fraction_keeps_everything_in_train(self):
        dataset = toy_dataset(20)
        split = train_test_split(dataset, 0.0, rng=0)
        assert len(split.train) == 20
        assert len(split.test) == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(toy_dataset(10), 1.5)

    def test_names_and_describe(self):
        split = train_test_split(toy_dataset(20), 0.2, rng=0)
        assert split.train.name.endswith("-train")
        assert split.test.name.endswith("-test")
        assert "training" in split.describe()
