"""Tests for the toy datasets (Figure 2 and the tiny boolean set)."""

import numpy as np

from repro.core.dataset import FeatureKind
from repro.datasets.toy import BLACK, WHITE, figure2_dataset, tiny_boolean_dataset


class TestFigure2Dataset:
    def test_shape(self):
        dataset = figure2_dataset()
        assert len(dataset) == 13
        assert dataset.n_features == 1
        assert dataset.n_classes == 2
        assert dataset.feature_kinds == (FeatureKind.REAL,)

    def test_left_right_composition(self):
        dataset = figure2_dataset()
        left = dataset.subset_mask(dataset.X[:, 0] <= 10)
        right = dataset.subset_mask(dataset.X[:, 0] > 10)
        assert left.class_counts()[WHITE] == 7
        assert left.class_counts()[BLACK] == 2
        assert right.class_counts()[BLACK] == 4
        assert right.class_counts()[WHITE] == 0

    def test_black_points_are_zero_and_four(self):
        dataset = figure2_dataset()
        left_black_values = dataset.X[(dataset.y == BLACK) & (dataset.X[:, 0] <= 10), 0]
        assert sorted(left_black_values.tolist()) == [0.0, 4.0]

    def test_deterministic(self):
        first = figure2_dataset()
        second = figure2_dataset()
        assert np.array_equal(first.X, second.X)
        assert np.array_equal(first.y, second.y)


class TestTinyBooleanDataset:
    def test_shape_and_kinds(self):
        dataset = tiny_boolean_dataset()
        assert len(dataset) == 8
        assert all(kind is FeatureKind.BOOLEAN for kind in dataset.feature_kinds)

    def test_label_follows_first_feature(self):
        dataset = tiny_boolean_dataset()
        assert np.array_equal(dataset.y, dataset.X[:, 0].astype(np.int64))
