"""Tests for the low-level synthetic data generators."""

import numpy as np
import pytest

from repro.core.dataset import FeatureKind
from repro.datasets.synthetic import (
    class_separation_report,
    make_gaussian_classes,
    make_prototype_patterns,
    scaled_size,
)
from repro.utils.validation import ValidationError


class TestGaussianClasses:
    def test_shapes_and_determinism(self):
        centers = np.array([[0.0, 0.0], [5.0, 5.0]])
        first = make_gaussian_classes(50, centers, 1.0, rng=7)
        second = make_gaussian_classes(50, centers, 1.0, rng=7)
        assert len(first) == 50
        assert first.n_features == 2
        assert np.array_equal(first.X, second.X)
        assert np.array_equal(first.y, second.y)

    def test_all_classes_present(self):
        centers = np.zeros((3, 2))
        dataset = make_gaussian_classes(300, centers, 1.0, rng=1)
        assert set(np.unique(dataset.y)) == {0, 1, 2}

    def test_class_weights_bias_sampling(self):
        centers = np.zeros((2, 1))
        dataset = make_gaussian_classes(
            500, centers, 1.0, rng=2, class_weights=(0.9, 0.1)
        )
        counts = dataset.class_counts()
        assert counts[0] > counts[1] * 3

    def test_per_class_std(self):
        centers = np.array([[0.0], [0.0]])
        dataset = make_gaussian_classes(400, centers, [0.1, 5.0], rng=3)
        tight = dataset.X[dataset.y == 0, 0].std()
        wide = dataset.X[dataset.y == 1, 0].std()
        assert wide > tight * 5

    def test_rejects_bad_centers(self):
        with pytest.raises(ValidationError):
            make_gaussian_classes(10, np.zeros(3), 1.0)

    def test_rejects_bad_std_shape(self):
        with pytest.raises(ValidationError):
            make_gaussian_classes(10, np.zeros((2, 2)), [1.0, 2.0, 3.0])


class TestPrototypePatterns:
    def test_boolean_features(self):
        prototypes = np.array([[0, 0, 1, 1], [1, 1, 0, 0]], dtype=float)
        dataset = make_prototype_patterns(60, prototypes, 0.1, rng=4)
        assert all(kind is FeatureKind.BOOLEAN for kind in dataset.feature_kinds)
        assert np.all(np.isin(dataset.X, (0.0, 1.0)))

    def test_zero_noise_reproduces_prototypes(self):
        prototypes = np.array([[0, 1], [1, 0]], dtype=float)
        dataset = make_prototype_patterns(40, prototypes, 0.0, rng=5)
        for row, label in zip(dataset.X, dataset.y):
            assert np.array_equal(row, prototypes[label])

    def test_rejects_non_binary_prototypes(self):
        with pytest.raises(ValidationError):
            make_prototype_patterns(10, np.array([[0.5, 1.0]]))


class TestHelpers:
    def test_scaled_size_floor(self):
        assert scaled_size(1000, 0.001, minimum=8) == 8
        assert scaled_size(1000, 0.5) == 500

    def test_class_separation_report(self):
        centers = np.array([[0.0], [10.0]])
        dataset = make_gaussian_classes(200, centers, 1.0, rng=6)
        distance, spread = class_separation_report(dataset)
        assert distance > 5 * spread

    def test_separation_single_class(self):
        centers = np.array([[0.0]])
        dataset = make_gaussian_classes(50, centers, 1.0, rng=7)
        distance, _ = class_separation_report(dataset)
        assert distance == 0.0
