"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    dataset_summaries,
    get_spec,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_all_five_benchmarks_registered(self):
        names = list_datasets()
        assert names == [
            "iris",
            "mammography",
            "wdbc",
            "mnist17-binary",
            "mnist17-real",
        ]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_spec("cifar10")
        with pytest.raises(KeyError):
            load_dataset("cifar10")

    def test_load_uses_default_scale(self):
        split = load_dataset("iris", seed=0)
        assert len(split.train) + len(split.test) == 150

    def test_load_with_explicit_scale(self):
        split = load_dataset("mammography", scale=0.1, seed=0)
        assert len(split.train) + len(split.test) == 83

    def test_mnist_defaults_are_reduced(self):
        spec = get_spec("mnist17-binary")
        assert spec.default_scale < 1.0
        assert spec.paper_train_size == 13007

    def test_summaries_have_table1_fields(self):
        rows = dataset_summaries()
        assert len(rows) == 5
        for row in rows:
            assert {"name", "paper_train_size", "n_features", "n_classes"} <= set(row)

    def test_load_is_deterministic(self):
        import numpy as np

        a = load_dataset("wdbc", scale=0.2, seed=5)
        b = load_dataset("wdbc", scale=0.2, seed=5)
        assert np.array_equal(a.train.X, b.train.X)
        assert np.array_equal(a.test.y, b.test.y)
