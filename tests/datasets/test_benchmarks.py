"""Tests for the per-benchmark dataset generators (Table 1 stand-ins)."""

import numpy as np
import pytest

from repro.core.dataset import FeatureKind
from repro.core.learner import DecisionTreeLearner, evaluate_accuracy
from repro.datasets import iris_like, mammography_like, mnist_like, wdbc_like


class TestIrisLike:
    def test_paper_sized_split(self):
        split = iris_like.make_split(seed=0)
        assert len(split.train) + len(split.test) == 150
        assert split.train.n_features == 4
        assert split.train.n_classes == 3

    def test_depth2_accuracy_reasonable(self):
        split = iris_like.make_split(seed=0)
        tree = DecisionTreeLearner(max_depth=2).fit(split.train)
        accuracy = evaluate_accuracy(tree, split.test.X, split.test.y)
        assert accuracy >= 0.8

    def test_scaling(self):
        split = iris_like.make_split(scale=0.4, seed=0)
        assert len(split.train) + len(split.test) == 60

    def test_deterministic_given_seed(self):
        a = iris_like.make_split(seed=3)
        b = iris_like.make_split(seed=3)
        assert np.array_equal(a.train.X, b.train.X)

    def test_different_seeds_differ(self):
        a = iris_like.make_split(seed=3)
        b = iris_like.make_split(seed=4)
        assert not np.array_equal(a.train.X, b.train.X)


class TestMammographyLike:
    def test_paper_sized_split(self):
        split = mammography_like.make_split(seed=0)
        assert len(split.train) + len(split.test) == 830
        assert split.train.n_features == 5
        assert split.train.n_classes == 2

    def test_classes_overlap_substantially(self):
        split = mammography_like.make_split(seed=0)
        tree = DecisionTreeLearner(max_depth=2).fit(split.train)
        accuracy = evaluate_accuracy(tree, split.test.X, split.test.y)
        # The real dataset sits near 80-83%; the stand-in must be imperfect
        # but clearly better than chance.
        assert 0.65 <= accuracy <= 0.97


class TestWdbcLike:
    def test_paper_sized_split(self):
        split = wdbc_like.make_split(seed=0)
        assert len(split.train) + len(split.test) == 569
        assert split.train.n_features == 30

    def test_high_accuracy(self):
        split = wdbc_like.make_split(seed=0)
        tree = DecisionTreeLearner(max_depth=3).fit(split.train)
        assert evaluate_accuracy(tree, split.test.X, split.test.y) >= 0.85


class TestMnistLike:
    def test_binary_variant_has_boolean_pixels(self):
        split = mnist_like.make_mnist17(200, 20, side=8, binary=True, rng=0)
        assert all(kind is FeatureKind.BOOLEAN for kind in split.train.feature_kinds)
        assert np.all(np.isin(split.train.X, (0.0, 1.0)))

    def test_real_variant_has_grayscale_pixels(self):
        split = mnist_like.make_mnist17(200, 20, side=8, binary=False, rng=0)
        assert all(kind is FeatureKind.REAL for kind in split.train.feature_kinds)
        assert split.train.X.max() > 1.0
        assert split.train.X.min() >= 0.0
        assert split.train.X.max() <= 255.0

    def test_feature_count_matches_side(self):
        split = mnist_like.make_mnist17(50, 10, side=10, binary=True, rng=0)
        assert split.train.n_features == 100

    def test_digits_are_learnable(self):
        split = mnist_like.make_mnist17(400, 80, side=10, binary=True, rng=1)
        tree = DecisionTreeLearner(max_depth=3).fit(split.train)
        assert evaluate_accuracy(tree, split.test.X, split.test.y) >= 0.9

    def test_both_classes_present(self):
        split = mnist_like.make_mnist17(200, 20, side=8, binary=True, rng=2)
        assert set(np.unique(split.train.y)) == {0, 1}

    def test_scaled_factories(self):
        binary = mnist_like.make_binary_split(scale=0.01, seed=0, side=8)
        real = mnist_like.make_real_split(scale=0.01, seed=0, side=8)
        assert len(binary.train) == max(64, round(13007 * 0.01))
        assert real.train.n_features == 64

    def test_rejects_bad_sizes(self):
        with pytest.raises(Exception):
            mnist_like.make_mnist17(0, 10, binary=True)
