"""Tests for the Figures 7-11 performance harness."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.perf_figures import (
    FIGURE_FOR_DATASET,
    compute_performance_figure,
    render_performance_figure,
)


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        seed=3,
        depths=(1,),
        n_test_points=2,
        domains=("box", "disjuncts"),
        poisoning_amounts={"mnist17-binary": (1, 4)},
        dataset_scales={"mnist17-binary": 0.02},
        timeout_seconds=20.0,
    )


class TestComputePerformanceFigure:
    def test_every_dataset_has_a_figure_number(self):
        from repro.datasets.registry import list_datasets

        assert set(FIGURE_FOR_DATASET) == set(list_datasets())

    def test_grid_structure(self):
        points = compute_performance_figure("mnist17-binary", tiny_config())
        domains = {point.domain for point in points}
        assert domains == {"box", "disjuncts"}
        for point in points:
            assert point.dataset == "mnist17-binary"
            assert point.depth == 1
            assert point.attempted == 2
            assert 0 <= point.verified <= point.attempted
            assert point.average_seconds >= 0.0
            assert point.average_peak_memory_mb >= 0.0

    def test_incremental_truncation(self):
        config = tiny_config().with_overrides(
            poisoning_amounts={"mnist17-binary": (1, 2, 4)}
        )
        full = compute_performance_figure(
            "mnist17-binary", config, incremental=False
        )
        truncated = compute_performance_figure(
            "mnist17-binary", config, incremental=True
        )
        assert len(truncated) <= len(full)

    def test_render(self):
        points = compute_performance_figure("mnist17-binary", tiny_config())
        text = render_performance_figure(points)
        assert "Figure 7" in text
        assert "avg time (s)" in text

    def test_render_empty(self):
        assert "performance figure" in render_performance_figure([])
