"""Tests for the Table 1 harness."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import compute_table1, render_table1


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        seed=1,
        dataset_scales={"iris": 0.4, "mnist17-binary": 0.01},
    )


class TestComputeTable1:
    def test_rows_have_expected_fields(self):
        rows = compute_table1(tiny_config(), datasets=["iris"], depths=(1, 2))
        assert len(rows) == 1
        row = rows[0]
        assert row.dataset == "iris"
        assert row.n_features == 4
        assert row.n_classes == 3
        assert set(row.accuracies) == {1, 2}
        assert 0.0 <= row.accuracy_at(1) <= 1.0

    def test_accuracy_generally_improves_with_depth(self):
        rows = compute_table1(tiny_config(), datasets=["iris"], depths=(1, 3))
        row = rows[0]
        assert row.accuracy_at(3) >= row.accuracy_at(1) - 0.15

    def test_covers_all_datasets_by_default(self):
        rows = compute_table1(
            ExperimentConfig(
                dataset_scales={
                    "iris": 0.3,
                    "mammography": 0.1,
                    "wdbc": 0.15,
                    "mnist17-binary": 0.01,
                    "mnist17-real": 0.01,
                }
            ),
            depths=(1,),
        )
        assert [row.dataset for row in rows] == [
            "iris",
            "mammography",
            "wdbc",
            "mnist17-binary",
            "mnist17-real",
        ]
        assert all(row.accuracy_at(1) > 0.3 for row in rows)


class TestRenderTable1:
    def test_render_contains_headers_and_rows(self):
        rows = compute_table1(tiny_config(), datasets=["iris"], depths=(1, 2))
        text = render_table1(rows)
        assert "dataset" in text
        assert "acc@d1 (%)" in text
        assert "iris" in text
