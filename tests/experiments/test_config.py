"""Tests for the experiment configuration."""

from repro.experiments.config import (
    DEFAULT_POISONING_AMOUNTS,
    ExperimentConfig,
    paper_scale_config,
    quick_config,
)


class TestExperimentConfig:
    def test_amounts_fall_back_to_paper_axes(self):
        config = ExperimentConfig()
        assert config.amounts_for("iris") == DEFAULT_POISONING_AMOUNTS["iris"]
        assert config.amounts_for("unknown-dataset") == (1, 2, 4, 8)

    def test_scale_default_is_registry(self):
        assert ExperimentConfig().scale_for("iris") is None

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(depths=(3,), n_test_points=2)
        assert config.depths == (3,)
        assert config.n_test_points == 2

    def test_composite_budget_grid_walks_both_axes(self):
        config = ExperimentConfig()
        pairs = config.composite_budgets
        assert all(len(pair) == 2 for pair in pairs)
        assert any(removals == 0 and flips > 0 for removals, flips in pairs)
        assert any(removals > 0 and flips == 0 for removals, flips in pairs)
        assert any(removals > 0 and flips > 0 for removals, flips in pairs)

    def test_quick_config_is_small(self):
        config = quick_config()
        assert config.n_test_points <= 10
        assert all(scale <= 1.0 for scale in config.dataset_scales.values())
        assert config.timeout_seconds is not None

    def test_paper_scale_config_matches_paper_parameters(self):
        config = paper_scale_config()
        assert config.depths == (1, 2, 3, 4)
        assert config.n_test_points == 100
        assert config.timeout_seconds == 3600.0
        assert config.dataset_scales["mnist17-binary"] == 1.0
        assert config.amounts_for("mnist17-binary")[-1] == 512

    def test_default_amounts_cover_all_benchmarks(self):
        from repro.datasets.registry import list_datasets

        assert set(DEFAULT_POISONING_AMOUNTS) == set(list_datasets())
