"""Tests for the shared experiment runner plumbing and artifact persistence."""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import results_directory, save_artifact
from repro.experiments.runner import (
    load_experiment_split,
    make_verifier,
    run_grid_cell,
    select_test_points,
    summarize_results,
)
from repro.verify.robustness import PoisoningVerifier


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        seed=5,
        n_test_points=2,
        dataset_scales={"iris": 0.3},
        timeout_seconds=10.0,
    )


class TestRunner:
    def test_load_split_respects_scale(self):
        split = load_experiment_split("iris", tiny_config())
        assert len(split.train) + len(split.test) == 45

    def test_select_test_points_deterministic(self):
        config = tiny_config()
        split = load_experiment_split("iris", config)
        first = select_test_points(split, config, "iris")
        second = select_test_points(split, config, "iris")
        assert first.shape == (2, 4)
        assert np.array_equal(first, second)

    def test_select_test_points_caps_at_test_size(self):
        config = tiny_config().with_overrides(n_test_points=10_000)
        split = load_experiment_split("iris", config)
        points = select_test_points(split, config, "iris")
        assert points.shape[0] == len(split.test)

    def test_make_verifier_wires_config(self):
        verifier = make_verifier(3, "box", tiny_config())
        assert isinstance(verifier, PoisoningVerifier)
        assert verifier.max_depth == 3
        assert verifier.domain == "box"
        assert verifier.timeout_seconds == 10.0

    def test_run_grid_cell_and_summary(self):
        config = tiny_config()
        split = load_experiment_split("iris", config)
        points = select_test_points(split, config, "iris")
        cell, results = run_grid_cell("iris", split, points, 1, "box", 1, config)
        assert cell.attempted == len(results) == 2
        assert 0 <= cell.verified <= 2
        assert cell.fraction_verified == cell.verified / 2
        resummarized = summarize_results("iris", "box", 1, 1, results)
        assert resummarized.verified == cell.verified

    def test_summarize_empty(self):
        cell = summarize_results("iris", "box", 1, 1, [])
        assert cell.attempted == 0
        assert cell.fraction_verified == 0.0


class TestReporting:
    def test_results_directory_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "artifacts"))
        directory = results_directory()
        assert directory.exists()
        assert directory.name == "artifacts"

    def test_save_artifact(self, tmp_path):
        path = save_artifact("table1", "hello", base=tmp_path)
        assert path.read_text().strip() == "hello"
        assert path.name == "table1.txt"
