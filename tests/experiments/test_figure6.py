"""Tests for the Figure 6 harness."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import compute_figure6, render_figure6


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        seed=2,
        depths=(1,),
        n_test_points=3,
        poisoning_amounts={"iris": (1, 2), "mnist17-binary": (1, 8)},
        dataset_scales={"iris": 0.4, "mnist17-binary": 0.02},
        timeout_seconds=20.0,
    )


class TestComputeFigure6:
    def test_series_structure(self):
        series = compute_figure6(tiny_config(), datasets=["iris"])
        assert len(series) == 1
        line = series[0]
        assert line.dataset == "iris"
        assert line.depth == 1
        assert [n for n, _ in line.points] == [1, 2]
        assert all(0.0 <= fraction <= 1.0 for _, fraction in line.points)
        assert line.attempted == 3

    def test_fractions_monotone_nonincreasing(self):
        series = compute_figure6(tiny_config(), datasets=["mnist17-binary"])
        fractions = [fraction for _, fraction in series[0].points]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))

    def test_mnist_binary_verifies_something_at_small_n(self):
        series = compute_figure6(tiny_config(), datasets=["mnist17-binary"])
        assert series[0].fraction_at(1) > 0.0

    def test_fraction_at_missing_level(self):
        series = compute_figure6(tiny_config(), datasets=["iris"])
        assert series[0].fraction_at(999) is None


class TestRenderFigure6:
    def test_render(self):
        series = compute_figure6(tiny_config(), datasets=["iris"])
        text = render_figure6(series)
        assert "fraction verified" in text
        assert "iris" in text
