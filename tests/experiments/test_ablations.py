"""Tests for the Box-vs-Disjuncts and cprob#-transformer ablations."""

from repro.experiments.ablations import (
    compare_cprob_transformers,
    compare_domains,
    render_cprob_ablation,
    render_domain_ablation,
)
from repro.experiments.config import ExperimentConfig


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        seed=4,
        depths=(1,),
        n_test_points=3,
        poisoning_amounts={"mnist17-binary": (1, 8)},
        dataset_scales={"mnist17-binary": 0.02},
        timeout_seconds=20.0,
    )


class TestDomainAblation:
    def test_disjuncts_certify_at_least_as_many_points(self):
        rows = compare_domains("mnist17-binary", tiny_config())
        assert rows
        for row in rows:
            assert row.disjuncts_verified >= row.box_verified
            assert row.attempted == 3

    def test_render(self):
        rows = compare_domains("mnist17-binary", tiny_config())
        text = render_domain_ablation(rows)
        assert "Box vs Disjuncts" in text
        assert "disjuncts verified" in text


class TestCprobAblation:
    def test_optimal_transformer_is_at_least_as_precise(self):
        rows = compare_cprob_transformers("mnist17-binary", tiny_config())
        assert rows
        for row in rows:
            assert row.optimal_certified >= row.box_transformer_certified
            assert (
                row.optimal_mean_interval_width
                <= row.box_transformer_mean_interval_width + 1e-9
            )

    def test_render(self):
        rows = compare_cprob_transformers("mnist17-binary", tiny_config())
        text = render_cprob_ablation(rows)
        assert "footnote 6" in text
