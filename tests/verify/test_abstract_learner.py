"""Tests for the Box-domain abstract learner DTrace#."""

import pytest

from repro.core.trace_learner import TraceLearner
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from repro.domains.trainingset import AbstractTrainingSet
from repro.utils.timing import TimeBudget, TimeoutExceeded
from repro.verify.abstract_learner import BoxAbstractLearner


class TestZeroPoisoning:
    """With n = 0 the abstraction is exact, so results collapse to DTrace."""

    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("x", [[2.0], [5.0], [12.0], [18.0]])
    def test_intervals_contain_concrete_probabilities(self, depth, x):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 0)
        learner = BoxAbstractLearner(max_depth=depth)
        run = learner.run(trainset, x)
        concrete = TraceLearner(max_depth=depth).run(dataset, x)
        for interval, probability in zip(run.class_intervals, concrete.class_probabilities):
            assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9

    def test_zero_poisoning_certifies(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 0)
        run = BoxAbstractLearner(max_depth=1).run(trainset, [18.0])
        assert run.robust_class == 1
        assert run.is_conclusive


class TestBoxBehaviour:
    def test_right_branch_certified_with_fixed_predicate_pool(self):
        # With the predicate pool fixed to the paper's split, the right branch
        # of Figure 2 stays all black under 1-poisoning and x=18 is certified.
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        from repro.core.predicates import ThresholdPredicate

        learner = BoxAbstractLearner(
            max_depth=1, predicate_pool=[ThresholdPredicate(0, 10.5)]
        )
        run = learner.run(trainset, [18.0])
        assert run.robust_class == 1

    def test_well_separated_data_certified_under_poisoning(self):
        from tests.conftest import well_separated_dataset

        dataset = well_separated_dataset()
        trainset = AbstractTrainingSet.full(dataset, 2)
        run = BoxAbstractLearner(max_depth=1).run(trainset, [0.5])
        assert run.robust_class == 0

    def test_boolean_dataset_certified(self):
        dataset = tiny_boolean_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        run = BoxAbstractLearner(max_depth=1).run(trainset, [1.0, 0.0])
        assert run.robust_class == 1

    def test_excessive_poisoning_is_inconclusive(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 8)
        run = BoxAbstractLearner(max_depth=2).run(trainset, [5.0])
        assert run.robust_class is None
        assert not run.is_conclusive

    def test_exit_count_and_iterations_reported(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        run = BoxAbstractLearner(max_depth=3).run(trainset, [18.0])
        assert run.exit_count >= 1
        assert 1 <= run.iterations <= 3
        assert run.max_disjuncts == 1

    def test_depth_zero_returns_root_statistics(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 0)
        run = BoxAbstractLearner(max_depth=0).run(trainset, [5.0])
        assert run.iterations == 0
        probabilities = dataset.class_probabilities()
        assert run.class_intervals[0].lo == pytest.approx(probabilities[0])

    def test_box_cprob_method_also_sound(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        optimal = BoxAbstractLearner(max_depth=1, cprob_method="optimal").run(trainset, [18.0])
        box = BoxAbstractLearner(max_depth=1, cprob_method="box").run(trainset, [18.0])
        for tight, loose in zip(optimal.class_intervals, box.class_intervals):
            assert loose.lo <= tight.lo + 1e-9
            assert loose.hi >= tight.hi - 1e-9

    def test_timeout_propagates(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 2)
        budget = TimeBudget(1e-9)
        with pytest.raises(TimeoutExceeded):
            BoxAbstractLearner(max_depth=3).run(trainset, [5.0], time_budget=budget)


class TestSoundnessSmall:
    """Theorem 4.11 checked by enumeration on small instances."""

    @pytest.mark.parametrize("n", [1, 2])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_concrete_runs_inside_abstract_intervals(self, n, depth):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.from_indices(dataset, range(10), n)
        learner = BoxAbstractLearner(max_depth=depth)
        concrete_learner = TraceLearner(max_depth=depth)
        for x in ([1.0], [4.0], [8.0], [11.0]):
            run = learner.run(trainset, x)
            for concrete in trainset.concretizations():
                subset = dataset.subset(concrete)
                if len(subset) == 0:
                    continue
                result = concrete_learner.run(subset, x)
                for interval, probability in zip(
                    run.class_intervals, result.class_probabilities
                ):
                    assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9
