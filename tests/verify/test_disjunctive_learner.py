"""Tests for the disjunctive-domain abstract learner (§5.2)."""

import pytest

from repro.core.trace_learner import TraceLearner
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from repro.domains.trainingset import AbstractTrainingSet
from repro.utils.timing import TimeBudget, TimeoutExceeded
from repro.verify.abstract_learner import BoxAbstractLearner
from repro.verify.disjunctive_learner import (
    DisjunctBudgetExceeded,
    DisjunctiveAbstractLearner,
)


class TestBasicBehaviour:
    def test_zero_poisoning_matches_concrete(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 0)
        run = DisjunctiveAbstractLearner(max_depth=2).run(trainset, [12.0])
        concrete = TraceLearner(max_depth=2).run(dataset, [12.0])
        assert run.robust_class == concrete.prediction

    def test_certifies_well_separated_data_with_poisoning(self):
        from tests.conftest import well_separated_dataset

        dataset = well_separated_dataset()
        trainset = AbstractTrainingSet.full(dataset, 2)
        for x, expected in (([0.5], 0), ([11.0], 1)):
            run = DisjunctiveAbstractLearner(max_depth=1).run(trainset, x)
            assert run.robust_class == expected

    def test_requires_agreement_across_exits(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 6)
        run = DisjunctiveAbstractLearner(max_depth=1).run(trainset, [5.0])
        assert run.robust_class is None

    def test_tracks_peak_disjuncts(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 2)
        run = DisjunctiveAbstractLearner(max_depth=2).run(trainset, [5.0])
        assert run.max_disjuncts >= 2
        assert run.exit_count >= 1

    def test_boolean_dataset(self):
        dataset = tiny_boolean_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        run = DisjunctiveAbstractLearner(max_depth=2).run(trainset, [0.0, 1.0])
        assert run.robust_class == 0


class TestPrecisionRelativeToBox:
    @pytest.mark.parametrize("x", [[1.5], [9.0], [13.0]])
    @pytest.mark.parametrize("n", [1, 2])
    def test_disjuncts_at_least_as_precise_as_box(self, x, n):
        """Any point the Box domain certifies, the disjunctive domain certifies."""
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, n)
        for depth in (1, 2):
            box = BoxAbstractLearner(max_depth=depth).run(trainset, x)
            disjuncts = DisjunctiveAbstractLearner(max_depth=depth).run(trainset, x)
            if box.robust_class is not None:
                assert disjuncts.robust_class == box.robust_class

    def test_disjunctive_intervals_no_wider_than_box_at_depth_one(self):
        # At depth 1 each exit disjunct is one of the pieces whose join forms
        # the Box exit state, so the joined disjunctive intervals are
        # contained in the Box intervals.
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        box = BoxAbstractLearner(max_depth=1).run(trainset, [8.0])
        disjuncts = DisjunctiveAbstractLearner(max_depth=1).run(trainset, [8.0])
        for tight, loose in zip(disjuncts.class_intervals, box.class_intervals):
            assert tight.lo >= loose.lo - 1e-9
            assert tight.hi <= loose.hi + 1e-9


class TestResourceLimits:
    def test_disjunct_budget_enforced(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 3)
        learner = DisjunctiveAbstractLearner(max_depth=3, max_disjuncts=2)
        with pytest.raises(DisjunctBudgetExceeded):
            learner.run(trainset, [5.0])

    def test_timeout_enforced(self):
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.full(dataset, 2)
        with pytest.raises(TimeoutExceeded):
            DisjunctiveAbstractLearner(max_depth=3).run(
                trainset, [5.0], time_budget=TimeBudget(1e-9)
            )


class TestSoundnessSmall:
    @pytest.mark.parametrize("n", [1, 2])
    def test_concrete_predictions_never_escape_certification(self, n):
        """If the disjunctive learner certifies, every concretization agrees."""
        dataset = figure2_dataset()
        trainset = AbstractTrainingSet.from_indices(dataset, range(10), n)
        learner = DisjunctiveAbstractLearner(max_depth=2)
        concrete_learner = TraceLearner(max_depth=2)
        for x in ([0.5], [3.0], [9.5]):
            run = learner.run(trainset, x)
            if run.robust_class is None:
                continue
            for concrete in trainset.concretizations():
                subset = dataset.subset(concrete)
                if len(subset) == 0:
                    continue
                assert concrete_learner.predict(subset, x) == run.robust_class
