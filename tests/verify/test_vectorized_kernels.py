"""Property tests pinning the vectorized kernels to their scalar references.

The batch interval kernels of the cold-path core (`_side_score_bounds` in
:mod:`repro.verify.transformers`, `_flip_split_score_bounds` in
:mod:`repro.poisoning.label_flip`) each retain a candidate-at-a-time mirror
written in plain :class:`~repro.domains.interval.Interval` arithmetic.  These
tests drive both through Hypothesis-generated candidate tables and require
bitwise-tolerant agreement, so any future vectorization change that drifts
from the defined transformer semantics fails here before it can weaken a
soundness bound.

The warm-start layer gets the same treatment: a replayed
:class:`~repro.verify.trace.TraceStep` must reproduce the real ``filter#``
kernel exactly at *every* budget (the replay is pure budget arithmetic over
the recorded piece/join structure), and an engine that warm-starts across a
budget ladder must report verdicts identical to fresh cold runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import CertificationEngine
from repro.domains.trainingset import AbstractTrainingSet
from repro.poisoning.label_flip import (
    FlipAbstractTrainingSet,
    _flip_split_score_bounds,
    _flip_split_score_bounds_reference,
)
from repro.poisoning.models import CompositePoisoningModel, RemovalPoisoningModel
from repro.verify.trace import filter_abstract_traced
from repro.verify.transformers import (
    _side_score_bounds,
    _side_score_bounds_reference,
    best_split_abstract,
)
from tests.conftest import random_small_dataset, random_test_point

TOL = 1e-9


@st.composite
def candidate_tables(draw, max_candidates: int = 6, max_classes: int = 3):
    """Random per-candidate (sizes, class_counts) arrays with counts ≤ size."""
    n_candidates = draw(st.integers(min_value=1, max_value=max_candidates))
    n_classes = draw(st.integers(min_value=2, max_value=max_classes))
    sizes = []
    counts = []
    for _ in range(n_candidates):
        row = [
            draw(st.integers(min_value=0, max_value=5)) for _ in range(n_classes)
        ]
        counts.append(row)
        sizes.append(sum(row))
    return np.asarray(sizes, dtype=np.int64), np.asarray(counts, dtype=np.int64)


class TestSideScoreBounds:
    """Vectorized removal-side score kernel vs the Interval-arithmetic mirror."""

    @settings(max_examples=120, deadline=None)
    @given(
        candidate_tables(),
        st.integers(min_value=0, max_value=6),
        st.sampled_from(["optimal", "box"]),
    )
    def test_matches_reference(self, table, budget, method):
        sizes, counts = table
        lower, upper = _side_score_bounds(sizes, counts, budget, method)
        ref_lower, ref_upper = _side_score_bounds_reference(
            sizes, counts, budget, method
        )
        np.testing.assert_allclose(lower, ref_lower, atol=TOL)
        np.testing.assert_allclose(upper, ref_upper, atol=TOL)

    @settings(max_examples=60, deadline=None)
    @given(candidate_tables(), st.integers(min_value=0, max_value=6))
    def test_bounds_are_ordered(self, table, budget):
        sizes, counts = table
        lower, upper = _side_score_bounds(sizes, counts, budget, "optimal")
        assert np.all(lower <= upper + TOL)


class TestFlipSplitScoreBounds:
    """Batched flip-allocation kernel vs the allocation-at-a-time mirror."""

    @settings(max_examples=80, deadline=None)
    @given(
        candidate_tables(),
        candidate_tables(),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    )
    def test_matches_reference(self, left, right, removals, flips):
        left_sizes, left_counts = left
        right_sizes, right_counts = right
        # Both sides of a split have the same candidate axis; trim to the
        # shorter of the two draws.
        n = min(left_sizes.shape[0], right_sizes.shape[0])
        k = min(left_counts.shape[1], right_counts.shape[1])
        args = (
            left_sizes[:n],
            left_counts[:n, :k],
            right_sizes[:n],
            right_counts[:n, :k],
            removals,
            flips,
        )
        lower, upper = _flip_split_score_bounds(*args)
        ref_lower, ref_upper = _flip_split_score_bounds_reference(*args)
        np.testing.assert_allclose(lower, ref_lower, atol=TOL)
        np.testing.assert_allclose(upper, ref_upper, atol=TOL)


def _removal_state(dataset, budget):
    return AbstractTrainingSet.from_indices(
        dataset, np.arange(len(dataset)), budget
    )


def _flip_state(dataset, removals, flips):
    return FlipAbstractTrainingSet(
        dataset, np.arange(len(dataset)), removals, flips
    )


class TestTraceReplayMatchesFilter:
    """A recorded TraceStep replays ``filter#`` exactly at every other budget.

    The replay never re-runs the split/join kernels — it is pure budget
    arithmetic over the recorded piece structure — so agreement here is the
    soundness argument for warm-started probes.
    """

    @pytest.mark.parametrize("seed", range(12))
    def test_removal_replay_all_budgets(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng)
        x = random_test_point(rng, dataset)
        state = _removal_state(dataset, int(rng.integers(0, 4)))
        predicates = best_split_abstract(state, method="optimal")
        predicates = predicates.without_null()
        if not predicates.has_concrete_choices:
            pytest.skip("bestSplit# returned only ⋄ for this draw")
        _, step = filter_abstract_traced(state, predicates, x)
        for budget in range(0, 7):
            probe = _removal_state(dataset, budget)
            assert step.matches(probe, predicates.predicates)
            replayed = step.apply(probe)
            expected, _ = filter_abstract_traced(probe, predicates, x)
            if expected is None:
                assert replayed is None
            else:
                assert replayed is not None
                np.testing.assert_array_equal(replayed.indices, expected.indices)
                assert replayed.n == expected.n

    @pytest.mark.parametrize("seed", range(12, 24))
    def test_flip_replay_all_budget_pairs(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng)
        x = random_test_point(rng, dataset)
        state = _flip_state(dataset, int(rng.integers(0, 3)), int(rng.integers(0, 3)))
        predicates = best_split_abstract(state, method="optimal")
        predicates = predicates.without_null()
        if not predicates.has_concrete_choices:
            pytest.skip("bestSplit# returned only ⋄ for this draw")
        _, step = filter_abstract_traced(state, predicates, x)
        for removals in range(0, 4):
            for flips in range(0, 4):
                probe = _flip_state(dataset, removals, flips)
                assert step.matches(probe, predicates.predicates)
                replayed = step.apply(probe)
                expected, _ = filter_abstract_traced(probe, predicates, x)
                if expected is None:
                    assert replayed is None
                else:
                    assert replayed is not None
                    np.testing.assert_array_equal(
                        replayed.indices, expected.indices
                    )
                    assert replayed.removals == expected.removals
                    assert replayed.flips == expected.flips


def _verdict(result):
    return (
        result.status,
        result.certified_class,
        tuple((i.lo, i.hi) for i in result.class_intervals),
    )


class TestWarmStartVerdictIdentity:
    """Warm-started staircase probes report identical verdicts to cold runs.

    One engine walks the whole ladder (its trace cache warm-starts every probe
    after the first); the oracle certifies each budget on a fresh engine with
    an empty trace cache.  Status, certified class, and the class intervals
    must agree exactly — warm-starting is an optimization, never a semantic
    change.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_removal_budget_ladder(self, seed):
        rng = np.random.default_rng(100 + seed)
        dataset = random_small_dataset(rng)
        x = random_test_point(rng, dataset)
        warm_engine = CertificationEngine(max_depth=2, domain="either")
        for budget in range(0, 6):
            model = RemovalPoisoningModel(budget)
            warm = warm_engine.certify_point(dataset, x, model)
            cold = CertificationEngine(max_depth=2, domain="either").certify_point(
                dataset, x, model
            )
            assert _verdict(warm) == _verdict(cold), f"budget={budget}"

    @pytest.mark.parametrize("seed", range(4))
    def test_composite_staircase(self, seed):
        rng = np.random.default_rng(200 + seed)
        dataset = random_small_dataset(rng)
        x = random_test_point(rng, dataset)
        warm_engine = CertificationEngine(max_depth=2, domain="either")
        for removals in range(0, 3):
            for flips in range(0, 3):
                model = CompositePoisoningModel(removals, flips)
                warm = warm_engine.certify_point(dataset, x, model)
                cold = CertificationEngine(
                    max_depth=2, domain="either"
                ).certify_point(dataset, x, model)
                assert _verdict(warm) == _verdict(cold), f"(r,f)=({removals},{flips})"
