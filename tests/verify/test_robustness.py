"""Tests for the PoisoningVerifier certification driver."""

import numpy as np
import pytest

from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from repro.verify.robustness import (
    PoisoningVerifier,
    VerificationStatus,
)
from tests.conftest import well_separated_dataset


class TestConfiguration:
    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            PoisoningVerifier(domain="magic")

    def test_rejects_negative_budget(self):
        verifier = PoisoningVerifier(max_depth=1)
        with pytest.raises(ValueError):
            verifier.verify(figure2_dataset(), [5.0], -1)


class TestVerification:
    def test_zero_poisoning_always_robust(self):
        verifier = PoisoningVerifier(max_depth=2, domain="box")
        result = verifier.verify(figure2_dataset(), [5.0], 0)
        assert result.status is VerificationStatus.ROBUST
        assert result.certified_class == result.predicted_class == 0

    def test_certified_class_matches_concrete_prediction(self):
        verifier = PoisoningVerifier(max_depth=1, domain="either")
        result = verifier.verify(well_separated_dataset(), [0.5], 2)
        assert result.status is VerificationStatus.ROBUST
        assert result.certified_class == result.predicted_class == 0

    def test_unknown_when_budget_overwhelms(self):
        verifier = PoisoningVerifier(max_depth=1, domain="either")
        result = verifier.verify(figure2_dataset(), [5.0], 8)
        assert result.status is VerificationStatus.UNKNOWN
        assert result.certified_class is None
        assert "dominating" in result.message

    def test_either_falls_back_to_disjuncts(self):
        dataset = tiny_boolean_dataset()
        verifier = PoisoningVerifier(max_depth=2, domain="either")
        result = verifier.verify(dataset, [1.0, 1.0], 1)
        assert result.domain in ("box", "disjuncts")
        if result.is_certified:
            assert result.certified_class == result.predicted_class

    def test_result_metadata(self):
        verifier = PoisoningVerifier(max_depth=1, domain="box")
        result = verifier.verify(figure2_dataset(), [5.0], 2)
        assert result.poisoning_amount == 2
        assert result.elapsed_seconds >= 0.0
        assert result.peak_memory_bytes >= 0
        assert result.log10_num_datasets == pytest.approx(np.log10(92), abs=1e-6)
        assert len(result.class_intervals) == 2
        assert "n=2" in result.describe()

    def test_resource_exhaustion_reported(self):
        verifier = PoisoningVerifier(max_depth=3, domain="disjuncts", max_disjuncts=2)
        result = verifier.verify(figure2_dataset(), [5.0], 3)
        assert result.status is VerificationStatus.RESOURCE_EXHAUSTED
        assert not result.is_certified

    def test_timeout_reported(self):
        verifier = PoisoningVerifier(
            max_depth=4, domain="disjuncts", timeout_seconds=1e-9
        )
        result = verifier.verify(figure2_dataset(), [5.0], 2)
        assert result.status is VerificationStatus.TIMEOUT

    def test_verify_batch_and_fraction(self):
        dataset = well_separated_dataset()
        verifier = PoisoningVerifier(max_depth=1, domain="box")
        X_test = np.array([[0.5], [11.0], [1.0]])
        results = verifier.verify_batch(dataset, X_test, 1)
        assert len(results) == 3
        fraction = verifier.certified_fraction(dataset, X_test, 1)
        assert 0.0 <= fraction <= 1.0
        assert fraction == pytest.approx(
            sum(r.is_certified for r in results) / 3.0
        )

    def test_certified_fraction_empty(self):
        verifier = PoisoningVerifier(max_depth=1)
        assert verifier.certified_fraction(figure2_dataset(), np.empty((0, 1)), 1) == 0.0


class TestResultSerialization:
    def test_to_dict_roundtrips_through_json(self):
        import json

        verifier = PoisoningVerifier(max_depth=1, domain="box")
        result = verifier.verify(figure2_dataset(), [5.0], 1)
        payload = result.to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["status"] == result.status.value
        assert decoded["poisoning_amount"] == 1
        assert len(decoded["class_intervals"]) == 2
        assert decoded["predicted_class"] == result.predicted_class


class TestStatusHelpers:
    def test_is_certified_flag(self):
        assert VerificationStatus.ROBUST.is_certified
        assert not VerificationStatus.UNKNOWN.is_certified
        assert not VerificationStatus.TIMEOUT.is_certified
        assert not VerificationStatus.RESOURCE_EXHAUSTED.is_certified
