"""Tests for the naïve enumeration baseline."""

import pytest

from repro.datasets.toy import figure2_dataset
from repro.utils.timing import TimeBudget, TimeoutExceeded
from repro.verify.enumeration import (
    count_poisoned_datasets,
    enumerate_removal_sets,
    verify_by_enumeration,
)
from tests.conftest import well_separated_dataset


class TestEnumerationHelpers:
    def test_enumerate_removal_sets_counts(self):
        removals = list(enumerate_removal_sets(5, 2))
        assert len(removals) == 1 + 5 + 10
        assert removals[0] == ()

    def test_count_formula(self):
        assert count_poisoned_datasets(13, 2) == 92
        assert count_poisoned_datasets(4, 10) == 2**4
        assert count_poisoned_datasets(10, 0) == 1


class TestVerifyByEnumeration:
    def test_robust_case(self):
        result = verify_by_enumeration(figure2_dataset(), [5.0], 2, max_depth=1)
        assert result.robust
        assert result.baseline_prediction == 0
        assert result.counterexample_removals is None
        assert not result.has_counterexample
        assert result.predictions_seen == (0,)

    def test_non_robust_case_finds_counterexample(self):
        # Removing enough white elements flips the left-branch majority.
        dataset = figure2_dataset()
        result = verify_by_enumeration(dataset, [5.0], 6, max_depth=1)
        assert not result.robust
        assert result.has_counterexample
        assert result.counterexample_prediction is not None
        assert result.counterexample_prediction != result.baseline_prediction
        assert len(result.counterexample_removals) <= 6

    def test_counterexample_is_minimal_under_early_stop(self):
        dataset = figure2_dataset()
        result = verify_by_enumeration(dataset, [5.0], 6, max_depth=1)
        # Enumeration visits removal sets in increasing size, so the reported
        # counterexample uses the minimum number of removals that works.
        smaller = verify_by_enumeration(
            dataset, [5.0], len(result.counterexample_removals) - 1, max_depth=1
        )
        assert smaller.robust

    def test_exhaustive_mode_collects_all_predictions(self):
        dataset = figure2_dataset()
        result = verify_by_enumeration(
            dataset, [5.0], 6, max_depth=1, stop_at_first_counterexample=False
        )
        assert set(result.predictions_seen) == {0, 1}

    def test_zero_budget_checks_single_dataset(self):
        result = verify_by_enumeration(well_separated_dataset(4), [0.5], 0, max_depth=1)
        assert result.robust
        assert result.datasets_checked == 1

    def test_time_budget_enforced(self):
        with pytest.raises(TimeoutExceeded):
            verify_by_enumeration(
                figure2_dataset(),
                [5.0],
                6,
                max_depth=2,
                time_budget=TimeBudget(1e-9),
            )
