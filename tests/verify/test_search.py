"""Tests for the poisoning-amount search protocol (§6.1)."""

import numpy as np
import pytest

from repro.verify.robustness import PoisoningVerifier
from repro.verify.search import max_certified_poisoning, robustness_sweep
from tests.conftest import well_separated_dataset
from repro.datasets.toy import figure2_dataset


@pytest.fixture
def verifier():
    return PoisoningVerifier(max_depth=1, domain="either")


class TestMaxCertifiedPoisoning:
    def test_well_separated_point_reaches_positive_n(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=16)
        assert search.max_certified_n >= 1
        assert search.ever_certified
        # The reported maximum must indeed be certified, and doubling past it
        # must have failed (or hit the cap).
        assert search.attempts[search.max_certified_n] is True

    def test_uncertifiable_point_returns_zero(self, verifier):
        dataset = figure2_dataset()
        search = max_certified_poisoning(verifier, dataset, [5.0], max_n=8)
        assert search.max_certified_n >= 0
        if search.max_certified_n == 0:
            assert not search.ever_certified

    def test_attempts_are_cached(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=8)
        assert set(search.results) == set(search.attempts)

    def test_respects_max_n_cap(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=2)
        assert search.max_certified_n <= 2

    def test_binary_search_is_consistent(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=32)
        best = search.max_certified_n
        for n, certified in search.attempts.items():
            if certified:
                assert n <= best
            else:
                assert n > best


class TestRobustnessSweep:
    def test_fractions_are_monotone_nonincreasing(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5], [1.0], [10.5], [11.5]])
        records = robustness_sweep(verifier, dataset, test_points, [1, 2, 4, 8, 16])
        fractions = [record.fraction_certified for record in records]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] > 0.0

    def test_incremental_mode_stops_after_total_failure(self, verifier):
        dataset = figure2_dataset()
        test_points = np.array([[5.0]])
        records = robustness_sweep(verifier, dataset, test_points, [1, 2, 4, 8])
        # Once no point is certified the sweep stops early.
        assert len(records) <= 4
        if records and records[-1].certified == 0:
            assert records[-1].attempted >= 1

    def test_non_incremental_mode_attempts_every_level(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5], [11.0]])
        records = robustness_sweep(
            verifier, dataset, test_points, [1, 2], incremental=False
        )
        assert [record.attempted for record in records] == [2, 2]

    def test_records_collect_statistics(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5]])
        records = robustness_sweep(
            verifier, dataset, test_points, [1], keep_results=True
        )
        record = records[0]
        assert record.poisoning_amount == 1
        assert record.average_seconds >= 0.0
        assert record.average_peak_memory_bytes >= 0.0
        assert record.timeouts == 0
        assert len(record.results) == 1
