"""Tests for the poisoning-amount search protocol (§6.1)."""

import numpy as np
import pytest

from repro.api import CertificationEngine
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
)
from repro.utils.validation import ValidationError
from repro.verify.result import VerificationResult, VerificationStatus
from repro.verify.robustness import PoisoningVerifier
from repro.verify.search import max_certified_poisoning, robustness_sweep
from tests.conftest import well_separated_dataset
from repro.datasets.toy import figure2_dataset


@pytest.fixture
def verifier():
    return PoisoningVerifier(max_depth=1, domain="either")


def _stub_result(certified: bool, n: int) -> VerificationResult:
    return VerificationResult(
        status=VerificationStatus.ROBUST if certified else VerificationStatus.UNKNOWN,
        poisoning_amount=n,
        predicted_class=0,
        certified_class=0 if certified else None,
        class_intervals=(),
        domain="box",
        elapsed_seconds=0.0,
        peak_memory_bytes=0,
        exit_count=0,
        max_disjuncts=0,
        log10_num_datasets=0.0,
    )


class ThresholdEngine:
    """Fake engine certifying exactly the budgets ``n <= threshold``.

    Lets the search-protocol tests pin down probe sequences without paying
    for (or depending on the precision of) the real abstract learners.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.probed = []

    def certify_point(self, dataset, x, model):
        n = model.nominal_amount(len(dataset))
        self.probed.append(n)
        return _stub_result(n <= self.threshold, n)


class TestMaxCertifiedPoisoning:
    def test_well_separated_point_reaches_positive_n(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=16)
        assert search.max_certified_n >= 1
        assert search.ever_certified
        # The reported maximum must indeed be certified, and doubling past it
        # must have failed (or hit the cap).
        assert search.attempts[search.max_certified_n] is True

    def test_uncertifiable_point_returns_zero(self, verifier):
        dataset = figure2_dataset()
        search = max_certified_poisoning(verifier, dataset, [5.0], max_n=8)
        assert search.max_certified_n >= 0
        if search.max_certified_n == 0:
            assert not search.ever_certified

    def test_attempts_are_cached(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=8)
        assert set(search.results) == set(search.attempts)

    def test_respects_max_n_cap(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=2)
        assert search.max_certified_n <= 2

    def test_binary_search_is_consistent(self, verifier):
        dataset = well_separated_dataset()
        search = max_certified_poisoning(verifier, dataset, [0.5], max_n=32)
        best = search.max_certified_n
        for n, certified in search.attempts.items():
            if certified:
                assert n <= best
            else:
                assert n > best


class TestDoublingOvershootClamp:
    """The doubling phase must decide max_n itself, not stop at the last power.

    Before the fix, doubling 1→2→4→8 with ``max_n = 10`` exited the loop at
    16 > 10 and returned 8 without ever attempting 9 or 10.
    """

    def test_gap_between_last_double_and_cap_is_searched(self):
        dataset = well_separated_dataset()
        engine = ThresholdEngine(threshold=9)
        search = max_certified_poisoning(engine, dataset, [0.0], max_n=10)
        assert search.max_certified_n == 9
        # Doubling reached 8, then the clamped attempt at 10 failed and the
        # binary search decided 9.
        assert 10 in search.attempts and not search.attempts[10]
        assert 9 in search.attempts and search.attempts[9]

    def test_cap_itself_certified_after_overshoot(self):
        dataset = well_separated_dataset()
        engine = ThresholdEngine(threshold=1_000)
        search = max_certified_poisoning(engine, dataset, [0.0], max_n=10)
        assert search.max_certified_n == 10
        assert engine.probed == [1, 2, 4, 8, 10]

    def test_power_of_two_cap_needs_no_extra_probe(self):
        dataset = well_separated_dataset()
        engine = ThresholdEngine(threshold=1_000)
        search = max_certified_poisoning(engine, dataset, [0.0], max_n=16)
        assert search.max_certified_n == 16
        assert engine.probed == [1, 2, 4, 8, 16]

    def test_every_gap_position_is_found_exactly(self):
        dataset = well_separated_dataset()
        for threshold in range(0, 14):
            engine = ThresholdEngine(threshold=threshold)
            search = max_certified_poisoning(engine, dataset, [0.0], max_n=13)
            assert search.max_certified_n == min(threshold, 13), threshold


class TestModelGenericSearch:
    def test_label_flip_family_is_searchable(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        search = max_certified_poisoning(
            engine, dataset, [0.5], max_n=8, model=LabelFlipModel(0)
        )
        # Every probe certified against the flip family, not Δn.
        assert all(
            result.poisoning_flips == n for n, result in search.results.items()
        )
        assert search.max_certified_n >= 0

    def test_flip_probes_run_on_the_flip_domain(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        search = max_certified_poisoning(
            engine, dataset, [0.5], max_n=16, model=LabelFlipModel(0)
        )
        assert search.results
        assert all(
            result.domain.startswith("flip-") for result in search.results.values()
        )

    def test_fractional_template_sweeps_removal_counts(self):
        dataset = well_separated_dataset()
        engine = ThresholdEngine(threshold=3)
        search = max_certified_poisoning(
            engine, dataset, [0.0], max_n=8, model=FractionalRemovalModel(0.25)
        )
        assert search.max_certified_n == 3

    def test_composite_template_is_rejected_for_scalar_search(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        with pytest.raises(ValidationError, match="pareto_frontier"):
            max_certified_poisoning(
                engine, dataset, [0.5], model=CompositePoisoningModel(1, 1)
            )

    def test_non_model_template_is_rejected(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        with pytest.raises(ValidationError, match="PerturbationModel"):
            max_certified_poisoning(engine, dataset, [0.5], model=3)  # type: ignore[arg-type]


class TestRobustnessSweep:
    def test_fractions_are_monotone_nonincreasing(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5], [1.0], [10.5], [11.5]])
        records = robustness_sweep(verifier, dataset, test_points, [1, 2, 4, 8, 16])
        fractions = [record.fraction_certified for record in records]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] > 0.0

    def test_incremental_mode_stops_after_total_failure(self, verifier):
        dataset = figure2_dataset()
        test_points = np.array([[5.0]])
        records = robustness_sweep(verifier, dataset, test_points, [1, 2, 4, 8])
        # Once no point is certified the sweep stops early.
        assert len(records) <= 4
        if records and records[-1].certified == 0:
            assert records[-1].attempted >= 1

    def test_non_incremental_mode_attempts_every_level(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5], [11.0]])
        records = robustness_sweep(
            verifier, dataset, test_points, [1, 2], incremental=False
        )
        assert [record.attempted for record in records] == [2, 2]

    def test_records_collect_statistics(self, verifier):
        dataset = well_separated_dataset()
        test_points = np.array([[0.5]])
        records = robustness_sweep(
            verifier, dataset, test_points, [1], keep_results=True
        )
        record = records[0]
        assert record.poisoning_amount == 1
        assert record.average_seconds >= 0.0
        assert record.average_peak_memory_bytes >= 0.0
        assert record.timeouts == 0
        assert len(record.results) == 1


class TestRobustnessSweepEdgeCases:
    def test_duplicate_and_unsorted_amounts_collapse(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        records = robustness_sweep(
            engine,
            dataset,
            np.array([[0.5], [11.0]]),
            [4, 1, 1, 2, 4],
            incremental=False,
        )
        assert [record.poisoning_amount for record in records] == [1, 2, 4]
        # No level was certified twice: every record attempted the full batch.
        assert all(record.attempted == 2 for record in records)

    def test_sweep_is_generic_over_the_flip_family(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        records = robustness_sweep(
            engine,
            dataset,
            np.array([[0.5]]),
            [1, 2],
            model=LabelFlipModel(0),
            keep_results=True,
            incremental=False,
        )
        for record in records:
            assert all(
                result.domain.startswith("flip-") for result in record.results
            )
            assert all(
                result.poisoning_flips == record.poisoning_amount
                for result in record.results
            )

    def test_empty_test_points_produce_no_phantom_records(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        records = robustness_sweep(
            engine, dataset, np.empty((0, 1)), [1, 2, 4]
        )
        assert records == []

    def test_incremental_break_emits_no_records_for_skipped_levels(self):
        dataset = well_separated_dataset()

        class _NeverCertifies(ThresholdEngine):
            def certify_batch(self, dataset, points, model, *, n_jobs=1):
                from repro.api import CertificationReport

                n = model.nominal_amount(len(dataset))
                return CertificationReport(
                    results=[_stub_result(False, n) for _ in points]
                )

        engine = _NeverCertifies(threshold=0)
        records = robustness_sweep(
            engine, dataset, np.array([[0.5], [11.0]]), [1, 2, 4, 8]
        )
        # Every point fails at level 1; the incremental sweep records that
        # level and stops — no phantom rows for 2/4/8.
        assert [record.poisoning_amount for record in records] == [1]
        assert records[0].attempted == 2
        assert records[0].certified == 0

    def test_timeout_rows_counted_and_dropped_from_active(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(
            max_depth=1, domain="box", timeout_seconds=1e-9
        )
        records = robustness_sweep(
            engine, dataset, np.array([[0.5], [11.0]]), [1, 2, 4]
        )
        # Every attempt times out: one record, all points counted as
        # timeouts, none certified, and the incremental sweep stops there.
        assert len(records) == 1
        record = records[0]
        assert record.timeouts == 2
        assert record.certified == 0
        assert record.fraction_certified == 0.0
