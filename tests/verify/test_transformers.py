"""Unit and soundness tests for the abstract transformers of §4.4–4.6."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.predicates import SymbolicThresholdPredicate, ThresholdPredicate
from repro.core.splitter import best_split
from repro.core.impurity import gini_impurity
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from repro.domains.predicate_set import AbstractPredicateSet
from repro.domains.trainingset import AbstractTrainingSet
from repro.verify.transformers import (
    best_split_abstract,
    cprob_box,
    cprob_intervals,
    cprob_optimal,
    entropy_is_definitely_zero,
    filter_abstract,
    gini_interval,
    pure_restriction,
    score_interval,
    size_interval,
)


@pytest.fixture
def figure2():
    return figure2_dataset()


def left_branch(dataset: Dataset, n: int) -> AbstractTrainingSet:
    indices = [i for i, value in enumerate(dataset.X[:, 0]) if value <= 10]
    return AbstractTrainingSet.from_indices(dataset, indices, n)


class TestSizeInterval:
    def test_bounds(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 3)
        assert size_interval(trainset) .lo == 10.0
        assert size_interval(trainset).hi == 13.0


class TestCprobTransformers:
    def test_box_matches_example_4_6(self, figure2):
        intervals = cprob_box(left_branch(figure2, 2))
        assert intervals[0].lo == pytest.approx(5 / 9)
        assert intervals[0].hi == pytest.approx(1.0)
        assert intervals[1].lo == pytest.approx(0.0)
        assert intervals[1].hi == pytest.approx(2 / 7)

    def test_optimal_matches_footnote_6(self, figure2):
        intervals = cprob_optimal(left_branch(figure2, 2))
        assert intervals[0].lo == pytest.approx(5 / 7)
        assert intervals[0].hi == pytest.approx(1.0)

    def test_optimal_is_subset_of_box(self, figure2):
        for n in (0, 1, 2, 5, 9):
            trainset = left_branch(figure2, n)
            for tight, loose in zip(cprob_optimal(trainset), cprob_box(trainset)):
                assert tight.lo >= loose.lo - 1e-12
                assert tight.hi <= loose.hi + 1e-12

    def test_full_budget_corner_case(self, figure2):
        trainset = AbstractTrainingSet.from_indices(figure2, [0, 1], 2)
        for method in ("box", "optimal"):
            intervals = cprob_intervals(trainset, method)
            assert all(i.lo == 0.0 and i.hi == 1.0 for i in intervals)

    def test_zero_budget_is_exact(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 0)
        expected = figure2.class_probabilities()
        for method in ("box", "optimal"):
            intervals = cprob_intervals(trainset, method)
            for interval, value in zip(intervals, expected):
                assert interval.lo == pytest.approx(value)
                assert interval.hi == pytest.approx(value)

    def test_unknown_method_rejected(self, figure2):
        with pytest.raises(ValueError):
            cprob_intervals(AbstractTrainingSet.full(figure2, 1), "nope")

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_soundness_against_enumeration(self, figure2, n):
        """Proposition 4.5: every concretization's cprob is inside the intervals."""
        trainset = AbstractTrainingSet.from_indices(figure2, range(8), n)
        box = cprob_box(trainset)
        optimal = cprob_optimal(trainset)
        for concrete in trainset.concretizations():
            labels = figure2.y[concrete]
            if labels.size == 0:
                continue
            counts = np.bincount(labels, minlength=2)
            probabilities = counts / counts.sum()
            for k in range(2):
                assert box[k].lo - 1e-9 <= probabilities[k] <= box[k].hi + 1e-9
                assert optimal[k].lo - 1e-9 <= probabilities[k] <= optimal[k].hi + 1e-9


class TestGiniAndScoreIntervals:
    def test_gini_zero_budget_is_exact(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 0)
        interval = gini_interval(trainset)
        assert interval.lo == pytest.approx(gini_impurity(figure2.class_counts()))
        assert interval.hi == pytest.approx(gini_impurity(figure2.class_counts()))

    def test_gini_contains_all_concrete_values(self, figure2):
        trainset = AbstractTrainingSet.from_indices(figure2, range(9), 2)
        interval = gini_interval(trainset)
        for concrete in trainset.concretizations():
            labels = figure2.y[concrete]
            if labels.size == 0:
                continue
            value = gini_impurity(np.bincount(labels, minlength=2))
            assert interval.lo - 1e-9 <= value <= interval.hi + 1e-9

    def test_score_interval_contains_concrete_scores(self, figure2):
        trainset = AbstractTrainingSet.from_indices(figure2, range(10), 2)
        predicate = ThresholdPredicate(0, 4.5)
        interval = score_interval(trainset, predicate)
        for concrete in trainset.concretizations():
            subset = figure2.subset(concrete)
            if len(subset) == 0:
                continue
            mask = predicate.evaluate_matrix(subset.X)
            left = np.bincount(subset.y[mask], minlength=2)
            right = np.bincount(subset.y[~mask], minlength=2)
            score = left.sum() * gini_impurity(left) + right.sum() * gini_impurity(right)
            assert interval.lo - 1e-9 <= score <= interval.hi + 1e-9

    def test_entropy_definitely_zero(self, figure2):
        pure = AbstractTrainingSet.from_indices(figure2, [11, 12, 13 - 1], 1)
        assert entropy_is_definitely_zero(pure)
        mixed = AbstractTrainingSet.full(figure2, 1)
        assert not entropy_is_definitely_zero(mixed)


class TestPureRestriction:
    def test_infeasible_returns_none(self, figure2):
        assert pure_restriction(AbstractTrainingSet.full(figure2, 2)) is None

    def test_feasible_single_class(self, figure2):
        trainset = left_branch(figure2, 2)
        restricted = pure_restriction(trainset)
        assert restricted is not None
        assert restricted.size == 7  # only the white elements remain


class TestFilterAbstract:
    def test_example_4_8(self, figure2):
        # filter#(⟨T, 2⟩, {x <= 10}, x=4) = ⟨T↓x<=10, 2⟩.
        trainset = AbstractTrainingSet.full(figure2, 2)
        predicates = AbstractPredicateSet.of([ThresholdPredicate(0, 10.5)])
        filtered = filter_abstract(trainset, predicates, [4.0])
        assert filtered.size == 9
        assert filtered.n == 2

    def test_example_5_3_join_loss(self, figure2):
        # Example 5.3: joining the two sides of {x <= 3, x <= 4} for x = 4
        # recovers (almost) the original set with a much larger budget.
        indices = [i for i, value in enumerate(figure2.X[:, 0]) if value <= 10]
        trainset = AbstractTrainingSet.from_indices(figure2, indices, 1)
        predicates = AbstractPredicateSet.of(
            [ThresholdPredicate(0, 3.5), ThresholdPredicate(0, 4.5)]
        )
        filtered = filter_abstract(trainset, predicates, [4.0])
        assert filtered.size == 9
        assert filtered.n >= 5

    def test_bottom_when_no_predicates(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 1)
        assert filter_abstract(trainset, AbstractPredicateSet.of(()), [4.0]) is None

    def test_symbolic_maybe_joins_both_sides(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 1)
        predicates = AbstractPredicateSet.of([SymbolicThresholdPredicate(0, 4.0, 7.0)])
        filtered = filter_abstract(trainset, predicates, [5.0])
        # Both polarities are possible, so the result covers the whole set.
        assert filtered.size == 13

    def test_soundness_against_concrete_filter(self, figure2):
        trainset = AbstractTrainingSet.from_indices(figure2, range(9), 2)
        predicates = AbstractPredicateSet.of(
            [ThresholdPredicate(0, 2.5), ThresholdPredicate(0, 4.5)]
        )
        x = [1.0]
        filtered = filter_abstract(trainset, predicates, x)
        for concrete in trainset.concretizations():
            for predicate in predicates:
                values = figure2.X[concrete, 0]
                branch = predicate.evaluate(x)
                mask = values <= predicate.threshold if branch else values > predicate.threshold
                result = np.asarray(concrete)[mask]
                assert filtered.contains_concrete(result)


class TestBestSplitAbstract:
    def test_zero_budget_matches_concrete(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 0)
        abstract = best_split_abstract(trainset)
        concrete = best_split(figure2)
        assert not abstract.includes_null
        covering = [
            p
            for p in abstract
            if isinstance(p, SymbolicThresholdPredicate)
            and p.contains_threshold(concrete.predicate.threshold)
        ]
        assert covering, "the concrete best split must be covered"

    def test_boolean_features_return_concrete_predicates(self):
        dataset = tiny_boolean_dataset()
        trainset = AbstractTrainingSet.full(dataset, 1)
        abstract = best_split_abstract(trainset)
        assert all(isinstance(p, ThresholdPredicate) for p in abstract)
        assert ThresholdPredicate(0, 0.5) in abstract

    def test_small_budget_keeps_good_predicate_and_drops_terrible_one(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 1)
        abstract = best_split_abstract(trainset)
        features = [
            (p.low, p.high) for p in abstract if isinstance(p, SymbolicThresholdPredicate)
        ]
        assert (10.0, 11.0) in features  # the paper's best split survives
        assert (0.0, 1.0) not in features  # a uniformly bad split is pruned

    def test_constant_dataset_returns_null(self, figure2):
        trainset = AbstractTrainingSet.from_indices(figure2, [0], 0)
        abstract = best_split_abstract(trainset)
        assert abstract.includes_null
        assert not abstract.has_concrete_choices

    def test_large_budget_includes_null(self):
        # When the budget can empty one side of every split, Φ∀ = ∅ and the
        # null predicate must be included.
        X = np.array([[0.0], [1.0]])
        dataset = Dataset(X=X, y=np.array([0, 1]), n_classes=2)
        trainset = AbstractTrainingSet.full(dataset, 1)
        abstract = best_split_abstract(trainset)
        assert abstract.includes_null
        assert abstract.has_concrete_choices

    def test_predicate_pool_mode(self, figure2):
        trainset = AbstractTrainingSet.full(figure2, 1)
        pool = [ThresholdPredicate(0, 10.5), ThresholdPredicate(0, 0.5)]
        abstract = best_split_abstract(trainset, predicate_pool=pool)
        assert ThresholdPredicate(0, 10.5) in abstract

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_soundness_lemma_4_10(self, figure2, n):
        """Every concretization's concrete best split is covered abstractly."""
        trainset = AbstractTrainingSet.from_indices(figure2, range(9), n)
        abstract = best_split_abstract(trainset)
        for concrete in trainset.concretizations():
            subset = figure2.subset(concrete)
            if len(subset) == 0:
                continue
            concrete_choice = best_split(subset)
            if concrete_choice is None:
                assert abstract.includes_null
                continue
            threshold = concrete_choice.predicate.threshold
            covered = any(
                (
                    isinstance(p, SymbolicThresholdPredicate)
                    and p.contains_threshold(threshold)
                )
                or (isinstance(p, ThresholdPredicate) and p.threshold == threshold)
                for p in abstract
            )
            assert covered, f"best split {threshold} not covered at n={n}"
