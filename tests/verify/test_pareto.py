"""Tests for the composite (r, f) Pareto-frontier search.

The acceptance bar: staircase descent must return exactly the maximal
certified pairs that brute-force grid certification finds, while probing only
O(frontier · log grid) cells — and, through a runtime, re-deriving the whole
frontier from the verdict cache without any learner invocation.
"""

import itertools

import numpy as np
import pytest

from repro.api import CertificationEngine
from repro.datasets.registry import load_dataset
from repro.poisoning.models import CompositePoisoningModel, LabelFlipModel
from repro.runtime import CertificationRuntime
from repro.utils.validation import ValidationError
from repro.verify.search import (
    ParetoFrontierResult,
    pareto_frontier,
    pareto_sweep,
)
from tests.conftest import well_separated_dataset


def brute_force_frontier(engine, dataset, x, max_remove, max_flip):
    """Maximal certified pairs by certifying every cell of the budget grid."""
    region = {
        (r, f)
        for r, f in itertools.product(range(max_remove + 1), range(max_flip + 1))
        if engine.certify_point(
            dataset, x, CompositePoisoningModel(r, f)
        ).is_certified
    }
    return sorted(
        pair
        for pair in region
        if not any(
            other != pair and other[0] >= pair[0] and other[1] >= pair[1]
            for other in region
        )
    )


@pytest.fixture(scope="module")
def box_engine():
    return CertificationEngine(max_depth=1, domain="box")


class TestFrontierMatchesBruteForce:
    def test_well_separated_grid(self, box_engine):
        dataset = well_separated_dataset()
        for x in ([0.5], [11.0]):
            expected = brute_force_frontier(box_engine, dataset, x, 8, 8)
            outcome = box_engine.pareto_frontier(
                dataset, x, max_remove=8, max_flip=8
            )
            assert sorted(outcome.frontier) == expected
            # The staircase must beat the 81-cell grid by a wide margin.
            assert outcome.probes < 81

    def test_small_iris_grid(self, box_engine):
        split = load_dataset("iris", scale=0.3, seed=0)
        for index in range(3):
            x = split.test.X[index]
            expected = brute_force_frontier(box_engine, split.train, x, 2, 2)
            outcome = box_engine.pareto_frontier(
                split.train, x, max_remove=2, max_flip=2
            )
            assert sorted(outcome.frontier) == expected, index

    def test_uncertifiable_point_yields_empty_frontier(self, box_engine):
        # A contradictory one-row-per-class dataset at (0, 0) still certifies
        # trivially, so force emptiness with an impossible fake: a point the
        # Box domain cannot decide even unpoisoned.  The simplest such case
        # is a dataset whose two classes are interleaved at the same value.
        from repro.core.dataset import Dataset

        dataset = Dataset(
            X=np.array([[0.0], [0.0], [0.0], [0.0]]),
            y=np.array([0, 1, 0, 1]),
            n_classes=2,
        )
        outcome = box_engine.pareto_frontier(dataset, [0.0], max_remove=2, max_flip=2)
        assert outcome.frontier == ()
        assert not outcome.ever_certified


class TestFrontierShape:
    def test_pairs_are_mutually_non_dominating(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=8, max_flip=8)
        for a, b in itertools.combinations(outcome.frontier, 2):
            assert not (a[0] >= b[0] and a[1] >= b[1])
            assert not (b[0] >= a[0] and b[1] >= a[1])

    def test_staircase_order(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=8, max_flip=8)
        removals = [r for r, _ in outcome.frontier]
        flips = [f for _, f in outcome.frontier]
        assert removals == sorted(removals)
        assert flips == sorted(flips, reverse=True)

    def test_dominates_covers_exactly_the_certified_region(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=8, max_flip=8)
        expected_region = {
            (r, f)
            for r, f in itertools.product(range(9), range(9))
            if box_engine.certify_point(
                dataset, [0.5], CompositePoisoningModel(r, f)
            ).is_certified
        }
        for r, f in itertools.product(range(9), range(9)):
            assert outcome.dominates(r, f) == ((r, f) in expected_region), (r, f)

    def test_to_dict_round_trip_shape(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=4, max_flip=4)
        payload = outcome.to_dict()
        assert payload["frontier"] == [[r, f] for r, f in outcome.frontier]
        assert payload["probes"] == outcome.probes
        assert payload["attempted_pairs"] == len(outcome.attempts)

    def test_negative_caps_rejected(self, box_engine):
        dataset = well_separated_dataset()
        with pytest.raises(ValidationError, match="non-negative"):
            pareto_frontier(box_engine, dataset, [0.5], max_remove=-1)

    def test_scalar_template_rejected_for_pair_search(self, box_engine):
        dataset = well_separated_dataset()
        with pytest.raises(ValidationError, match="budget pair"):
            pareto_frontier(box_engine, dataset, [0.5], model=LabelFlipModel(1))


class TestLocalDominanceMemo:
    def test_derived_attempts_do_not_probe(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=8, max_flip=8)
        # Re-query every decided pair plus its dominated/dominating
        # neighbours through the recorded results: the memo logic must agree
        # with monotonicity everywhere.
        for (r, f), certified in outcome.attempts.items():
            if certified:
                assert outcome.dominates(r, f)

    def test_probes_never_exceed_attempts(self, box_engine):
        dataset = well_separated_dataset()
        outcome = box_engine.pareto_frontier(dataset, [0.5], max_remove=8, max_flip=8)
        assert outcome.probes <= len(outcome.attempts)
        assert len(outcome.results) == outcome.probes


class TestParetoSweep:
    def test_serial_sweep_matches_per_point_frontiers(self, box_engine):
        dataset = well_separated_dataset()
        points = np.array([[0.5], [11.0], [3.0]])
        outcomes = pareto_sweep(
            box_engine, dataset, points, max_remove=4, max_flip=4
        )
        assert len(outcomes) == 3
        for row, outcome in zip(points, outcomes):
            solo = pareto_frontier(
                box_engine, dataset, row, max_remove=4, max_flip=4
            )
            assert outcome.frontier == solo.frontier

    def test_parallel_sweep_matches_serial(self, box_engine):
        dataset = well_separated_dataset()
        points = np.array([[0.5], [11.0], [3.0], [7.0]])
        serial = pareto_sweep(box_engine, dataset, points, max_remove=4, max_flip=4)
        import warnings

        with warnings.catch_warnings():
            # Pool-less hosts fall back to serial with a RuntimeWarning; the
            # results must be identical either way.
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = pareto_sweep(
                box_engine, dataset, points, max_remove=4, max_flip=4, n_jobs=2
            )
        assert [o.frontier for o in parallel] == [o.frontier for o in serial]
        assert all(isinstance(o, ParetoFrontierResult) for o in parallel)

    def test_empty_points(self, box_engine):
        dataset = well_separated_dataset()
        assert pareto_sweep(box_engine, dataset, np.empty((0, 1))) == []


class TestRuntimeParetoFrontier:
    def test_warm_rerun_answers_from_pair_dominance_cache(self, tmp_path):
        dataset = well_separated_dataset()
        runtime = CertificationRuntime(tmp_path / "cache")
        engine = CertificationEngine(max_depth=1, domain="box", runtime=runtime)
        points = np.array([[0.5], [11.0]])
        cold = runtime.pareto_sweep(
            engine, dataset, points, max_remove=6, max_flip=6
        )
        assert sum(o.learner_invocations for o in cold) > 0
        warm = runtime.pareto_sweep(
            engine, dataset, points, max_remove=6, max_flip=6
        )
        assert [o.frontier for o in warm] == [o.frontier for o in cold]
        assert sum(o.learner_invocations for o in warm) == 0

    def test_scalar_sweep_seeds_the_frontier(self, tmp_path):
        # Max-certified removal and flip searches populate the 1-D axes of
        # the pair lattice... but under *different* cache families, so the
        # composite frontier may only reuse verdicts of its own family.  The
        # important invariant: mixing searches never corrupts the frontier.
        dataset = well_separated_dataset()
        runtime = CertificationRuntime(tmp_path / "cache")
        engine = CertificationEngine(max_depth=1, domain="box", runtime=runtime)
        runtime.max_certified(engine, dataset, [0.5], max_budget=6)
        runtime.max_certified(
            engine, dataset, [0.5], max_budget=6, model=LabelFlipModel(0)
        )
        outcome = runtime.pareto_frontier(
            engine, dataset, [0.5], max_remove=6, max_flip=6
        )
        plain = CertificationEngine(max_depth=1, domain="box").pareto_frontier(
            dataset, [0.5], max_remove=6, max_flip=6
        )
        assert outcome.frontier == plain.frontier

    def test_flip_family_budget_search_through_cache(self, tmp_path):
        dataset = well_separated_dataset()
        runtime = CertificationRuntime(tmp_path / "cache")
        engine = CertificationEngine(max_depth=1, domain="box", runtime=runtime)
        first = runtime.max_certified(
            engine, dataset, [0.5], max_budget=8, model=LabelFlipModel(0)
        )
        assert first.learner_invocations > 0
        again = runtime.max_certified(
            engine, dataset, [0.5], max_budget=8, model=LabelFlipModel(0)
        )
        assert again.max_certified_n == first.max_certified_n
        assert again.learner_invocations == 0

    def test_engine_entry_point_routes_through_runtime(self, tmp_path):
        dataset = well_separated_dataset()
        runtime = CertificationRuntime(tmp_path / "cache")
        engine = CertificationEngine(max_depth=1, domain="box", runtime=runtime)
        outcome = engine.pareto_frontier(dataset, [0.5], max_remove=4, max_flip=4)
        # Every probe flowed through the runtime's cache layer.
        assert runtime.stats.learner_invocations >= outcome.probes
        again = engine.pareto_frontier(dataset, [0.5], max_remove=4, max_flip=4)
        assert again.frontier == outcome.frontier
