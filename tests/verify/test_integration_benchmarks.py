"""Integration tests: the full verification pipeline on every benchmark dataset.

These exercise dataset generation → trace learning → abstract verification in
one pass per registered benchmark, checking the cross-cutting invariants that
hold regardless of whether any particular point is certified:

* the reported concrete prediction matches ``DTrace`` on the unpoisoned set;
* the abstract class intervals contain the unpoisoned class probabilities
  (the unpoisoned set is itself a member of ``Δn(T)``);
* a certified result's class equals the concrete prediction.
"""

import numpy as np
import pytest

from repro.core.trace_learner import TraceLearner
from repro.datasets.registry import list_datasets, load_dataset
from repro.verify.robustness import PoisoningVerifier, VerificationStatus

TINY_SCALES = {
    "iris": 0.3,
    "mammography": 0.15,
    "wdbc": 0.2,
    "mnist17-binary": 0.01,
    "mnist17-real": 0.01,
}


@pytest.mark.parametrize("dataset_name", list_datasets())
@pytest.mark.parametrize("depth", [1, 2])
def test_pipeline_invariants_per_dataset(dataset_name, depth):
    split = load_dataset(dataset_name, scale=TINY_SCALES[dataset_name], seed=9)
    verifier = PoisoningVerifier(
        max_depth=depth, domain="either", timeout_seconds=30.0, max_disjuncts=4096
    )
    trace_learner = TraceLearner(max_depth=depth)
    for x in split.test.X[:3]:
        result = verifier.verify(split.train, x, 1)
        assert result.status in list(VerificationStatus)
        concrete = trace_learner.run(split.train, x)
        assert result.predicted_class == concrete.prediction
        if result.class_intervals:
            assert len(result.class_intervals) == split.train.n_classes
            for interval, probability in zip(
                result.class_intervals, concrete.class_probabilities
            ):
                assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9
        if result.is_certified:
            assert result.certified_class == concrete.prediction


@pytest.mark.parametrize("dataset_name", ["mnist17-binary", "wdbc"])
def test_large_separable_datasets_certify_at_small_budget(dataset_name):
    """The well-separated benchmarks certify at least one point at n = 1."""
    split = load_dataset(dataset_name, scale=0.2, seed=3)
    verifier = PoisoningVerifier(max_depth=1, domain="either", timeout_seconds=30.0)
    results = [verifier.verify(split.train, x, 1) for x in split.test.X[:5]]
    assert any(result.is_certified for result in results)


def test_verification_is_deterministic():
    split = load_dataset("iris", scale=0.3, seed=5)
    verifier = PoisoningVerifier(max_depth=2, domain="either", timeout_seconds=30.0)
    x = split.test.X[0]
    first = verifier.verify(split.train, x, 2)
    second = verifier.verify(split.train, x, 2)
    assert first.status == second.status
    assert first.certified_class == second.certified_class
    assert np.allclose(
        [interval.lo for interval in first.class_intervals],
        [interval.lo for interval in second.class_intervals],
    )
