"""End-to-end soundness property tests: Antidote versus exhaustive enumeration.

These are the most important tests in the suite.  On randomly generated small
datasets (where ``Δn(T)`` can be enumerated exhaustively) they check the
headline guarantee of the paper: whenever the abstract verifier reports
*robust*, retraining on every poisoned training set really does preserve the
classification (Theorem 4.11 / Corollary 4.12) — for both abstract domains,
both ``cprob#`` transformers, boolean and real features, and several depths.
"""

import numpy as np
import pytest

from repro.core.trace_learner import TraceLearner
from repro.domains.trainingset import AbstractTrainingSet
from repro.poisoning.attacks import greedy_removal_attack, random_removal_attack
from repro.verify.abstract_learner import BoxAbstractLearner
from repro.verify.disjunctive_learner import DisjunctiveAbstractLearner
from repro.verify.enumeration import verify_by_enumeration
from repro.verify.robustness import PoisoningVerifier
from tests.conftest import random_small_dataset, random_test_point


def _scenario(seed: int):
    rng = np.random.default_rng(seed)
    dataset = random_small_dataset(rng)
    x = random_test_point(rng, dataset)
    n = int(rng.integers(1, 3))
    depth = int(rng.integers(1, 4))
    return rng, dataset, x, n, depth


class TestCertificationImpliesRobustness:
    @pytest.mark.parametrize("seed", range(25))
    def test_either_domain_never_certifies_a_non_robust_point(self, seed):
        _, dataset, x, n, depth = _scenario(seed)
        verifier = PoisoningVerifier(max_depth=depth, domain="either")
        result = verifier.verify(dataset, x, n)
        if result.is_certified:
            oracle = verify_by_enumeration(dataset, x, n, max_depth=depth)
            assert oracle.robust, (
                f"seed={seed}: certified but enumeration found counterexample "
                f"{oracle.counterexample_removals}"
            )
            assert result.certified_class == oracle.baseline_prediction

    @pytest.mark.parametrize("seed", range(25, 40))
    @pytest.mark.parametrize("cprob_method", ["optimal", "box"])
    def test_box_learner_intervals_contain_all_concrete_runs(self, seed, cprob_method):
        """Theorem 4.11: every concretization's final probabilities are covered."""
        _, dataset, x, n, depth = _scenario(seed)
        trainset = AbstractTrainingSet.full(dataset, n)
        learner = BoxAbstractLearner(max_depth=depth, cprob_method=cprob_method)
        run = learner.run(trainset, x)
        concrete_learner = TraceLearner(max_depth=depth)
        for concrete in trainset.concretizations():
            subset = dataset.subset(concrete)
            if len(subset) == 0:
                continue
            result = concrete_learner.run(subset, x)
            for interval, probability in zip(
                run.class_intervals, result.class_probabilities
            ):
                assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9

    @pytest.mark.parametrize("seed", range(40, 55))
    def test_disjunctive_certification_matches_every_concrete_prediction(self, seed):
        _, dataset, x, n, depth = _scenario(seed)
        trainset = AbstractTrainingSet.full(dataset, n)
        learner = DisjunctiveAbstractLearner(max_depth=depth, max_disjuncts=50_000)
        run = learner.run(trainset, x)
        if run.robust_class is None:
            return
        concrete_learner = TraceLearner(max_depth=depth)
        for concrete in trainset.concretizations():
            subset = dataset.subset(concrete)
            if len(subset) == 0:
                continue
            assert concrete_learner.predict(subset, x) == run.robust_class


class TestAttackVerifierConsistency:
    @pytest.mark.parametrize("seed", range(55, 70))
    def test_successful_attack_refutes_certification(self, seed):
        """A concrete attack is a proof of non-robustness; soundness forbids
        the verifier from certifying the same configuration."""
        rng, dataset, x, n, depth = _scenario(seed)
        attack = greedy_removal_attack(dataset, x, n, max_depth=depth, rng=rng)
        if not attack.success:
            attack = random_removal_attack(
                dataset, x, n, trials=30, max_depth=depth, rng=rng
            )
        if not attack.success:
            return
        verifier = PoisoningVerifier(max_depth=depth, domain="either")
        result = verifier.verify(dataset, x, n)
        assert not result.is_certified

    @pytest.mark.parametrize("seed", range(70, 80))
    def test_attack_result_is_replayable(self, seed):
        rng, dataset, x, n, depth = _scenario(seed)
        attack = greedy_removal_attack(dataset, x, n, max_depth=depth, rng=rng)
        if not attack.success:
            return
        learner = TraceLearner(max_depth=depth)
        poisoned = dataset.remove(attack.removed_indices)
        assert learner.predict(poisoned, x) == attack.final_prediction
        assert attack.final_prediction != attack.original_prediction
        assert len(attack.removed_indices) <= n
