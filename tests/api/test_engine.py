"""Tests for the unified CertificationEngine: dispatch, reuse, and budgets."""

import numpy as np
import pytest

from repro.api import CertificationEngine, CertificationRequest, as_perturbation_model
from repro.datasets.synthetic import make_gaussian_classes
from repro.datasets.toy import figure2_dataset
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)
from repro.verify.result import VerificationResult, VerificationStatus
from tests.conftest import well_separated_dataset


def three_class_dataset():
    """A well-separated 3-class dataset (2-D gaussian blobs)."""
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [4.0, 8.0]])
    return make_gaussian_classes(90, centers, 0.5, rng=0)


class TestConfiguration:
    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            CertificationEngine(domain="magic")

    def test_rejects_negative_budget(self):
        engine = CertificationEngine(max_depth=1)
        with pytest.raises(ValueError):
            engine.certify_point(figure2_dataset(), [5.0], -1)

    def test_rejects_non_model_threat(self):
        with pytest.raises(ValueError):
            as_perturbation_model("three")
        with pytest.raises(ValueError):
            as_perturbation_model(True)

    def test_learners_constructed_once(self):
        engine = CertificationEngine(max_depth=1, domain="either")
        box_before = engine._box_learner
        disjunctive_before = engine._disjunctive_learner
        engine.certify_point(figure2_dataset(), [5.0], 1)
        engine.certify_point(figure2_dataset(), [5.0], 2)
        assert engine._box_learner is box_before
        assert engine._disjunctive_learner is disjunctive_before


class TestRequest:
    def test_single_point_normalized_to_matrix(self):
        request = CertificationRequest.single(figure2_dataset(), [5.0], 2)
        assert request.points.shape == (1, 1)
        assert request.n_points == 1
        assert isinstance(request.model, RemovalPoisoningModel)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CertificationRequest(figure2_dataset(), np.zeros((2, 3)), 1)

    def test_budget_resolves_against_training_size(self):
        dataset = figure2_dataset()
        request = CertificationRequest(dataset, [[5.0]], FractionalRemovalModel(0.25))
        assert request.budget == int(0.25 * len(dataset))

    def test_caller_array_not_frozen(self):
        """The request copies its points; the caller's array stays writable."""
        X = np.array([[5.0], [6.0]])
        request = CertificationRequest(figure2_dataset(), X, 1)
        X[0, 0] = 99.0  # must not raise, and must not leak into the request
        assert request.points[0, 0] == 5.0


class TestThreatModelDispatch:
    """All three threat models certify through the single verify(request) call."""

    def test_removal_model(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        report = engine.verify(
            CertificationRequest(well_separated_dataset(), [[0.5]], RemovalPoisoningModel(2))
        )
        (result,) = report.results
        assert result.status is VerificationStatus.ROBUST
        assert result.domain == "box"
        assert result.poisoning_amount == 2

    def test_fractional_model_resolves_budget(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        fraction = FractionalRemovalModel(0.05)
        report = engine.verify(CertificationRequest(dataset, [[0.5]], fraction))
        (result,) = report.results
        assert result.poisoning_amount == fraction.resolve_budget(len(dataset))
        assert result.status is VerificationStatus.ROBUST

    def test_fractional_matches_equivalent_removal(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="either")
        x = [[0.5]]
        fractional = engine.verify(
            CertificationRequest(dataset, x, FractionalRemovalModel(0.1))
        ).results[0]
        explicit = engine.verify(
            CertificationRequest(dataset, x, RemovalPoisoningModel(len(dataset) // 10))
        ).results[0]
        assert fractional.status == explicit.status
        assert fractional.class_intervals == explicit.class_intervals

    def test_label_flip_model(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        report = engine.verify(
            CertificationRequest(well_separated_dataset(), [[0.5]], LabelFlipModel(2))
        )
        (result,) = report.results
        assert result.domain == "flip-box"
        assert result.status in (VerificationStatus.ROBUST, VerificationStatus.UNKNOWN)
        assert result.poisoning_amount == 2

    def test_label_flip_either_walks_the_domain_ladder(self):
        """domain="either" escalates flips to the disjunctive domain too."""
        engine = CertificationEngine(max_depth=1, domain="either")
        result = engine.certify_point(well_separated_dataset(), [0.5], LabelFlipModel(2))
        assert result.domain in ("flip-box", "flip-disjuncts")
        if result.domain == "flip-disjuncts":
            # The ladder only reaches the second rung when Box was
            # inconclusive, so a disjunctive domain label on a certified
            # result is itself evidence of the precision gap.
            box_only = CertificationEngine(max_depth=1, domain="box").certify_point(
                well_separated_dataset(), [0.5], LabelFlipModel(2)
            )
            assert not box_only.is_certified

    def test_label_flip_matches_extension_verifier(self):
        from repro.poisoning.label_flip import LabelFlipVerifier

        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=2, domain="box")
        unified = engine.certify_point(dataset, [0.5], LabelFlipModel(3))
        extension = LabelFlipVerifier(max_depth=2).verify(dataset, [0.5], flips=3)
        assert unified.is_certified == extension.robust
        assert unified.certified_class == extension.certified_class
        assert unified.class_intervals == extension.class_intervals

    def test_oversized_budget_reports_requested_amount(self):
        """Legacy parity: n > |T| is clamped for the abstraction but reported as given."""
        dataset = figure2_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(dataset, [5.0], 10_000)
        assert result.poisoning_amount == 10_000

    def test_int_budget_coerces_to_removal_model(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        by_int = engine.certify_point(well_separated_dataset(), [0.5], 2)
        by_model = engine.certify_point(
            well_separated_dataset(), [0.5], RemovalPoisoningModel(2)
        )
        assert by_int.status == by_model.status
        assert by_int.class_intervals == by_model.class_intervals


class TestCompositeDispatch:
    """The combined removal+flip model through the single verify() entry point."""

    def test_composite_end_to_end_on_three_classes(self):
        dataset = three_class_dataset()
        points = np.array([[0.1, 0.1], [8.1, 0.1], [4.1, 8.1]])
        engine = CertificationEngine(max_depth=2, domain="either")
        report = engine.verify(
            CertificationRequest(dataset, points, CompositePoisoningModel(0, 1))
        )
        assert report.total == 3
        assert report.certified_count >= 1
        for result in report.results:
            assert result.domain in ("flip-box", "flip-disjuncts")
            assert result.poisoning_amount == 1
            assert len(result.class_intervals) == 3

    def test_composite_disjuncts_strictly_beat_box(self):
        """The acceptance bar: flip certification gains from the disjunctive domain."""
        dataset = three_class_dataset()
        points = np.array([[0.1, 0.1], [8.1, 0.1], [4.1, 8.1]])
        model = CompositePoisoningModel(1, 1)
        box = CertificationEngine(max_depth=2, domain="box").verify(
            CertificationRequest(dataset, points, model)
        )
        ladder = CertificationEngine(max_depth=2, domain="either").verify(
            CertificationRequest(dataset, points, model)
        )
        assert ladder.certified_count > box.certified_count

    def test_composite_amount_is_total_contamination(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(
            well_separated_dataset(), [0.5], CompositePoisoningModel(2, 1)
        )
        assert result.poisoning_amount == 3

    def test_composite_zero_flip_matches_removal_semantics(self):
        """Δ_{r,0} = Δr: the flip path must not certify more than removal."""
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="either")
        for budget in (1, 3):
            removal = engine.certify_point(dataset, [0.5], RemovalPoisoningModel(budget))
            composite = engine.certify_point(
                dataset, [0.5], CompositePoisoningModel(budget, 0)
            )
            assert removal.is_certified == composite.is_certified

    def test_predicate_pool_rejected_for_flip_families(self):
        from repro.core.predicates import ThresholdPredicate

        engine = CertificationEngine(
            max_depth=1, predicate_pool=[ThresholdPredicate(0, 5.0)]
        )
        with pytest.raises(ValueError, match="predicate pools"):
            engine.certify_point(
                well_separated_dataset(), [0.5], CompositePoisoningModel(1, 1)
            )


class TestClassCountResolution:
    """Satellite bugfix: n_classes comes from the dataset, not a silent default."""

    def test_default_flip_model_counts_dataset_alternatives(self):
        dataset = three_class_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(dataset, [0.1, 0.1], LabelFlipModel(2))
        explicit = LabelFlipModel(2, n_classes=3)
        assert result.log10_num_datasets == pytest.approx(
            explicit.log10_num_neighbors(len(dataset))
        )
        # The former behavior (hard-wired k=2) undercounted the space.
        binary = LabelFlipModel(2, n_classes=2)
        assert result.log10_num_datasets > binary.log10_num_neighbors(len(dataset))

    def test_request_rejects_contradicting_declaration(self):
        dataset = three_class_dataset()
        with pytest.raises(ValueError, match="n_classes"):
            CertificationRequest(dataset, [[0.1, 0.1]], LabelFlipModel(1, n_classes=2))
        with pytest.raises(ValueError, match="n_classes"):
            CertificationRequest(
                dataset, [[0.1, 0.1]], CompositePoisoningModel(1, 1, n_classes=2)
            )

    def test_matching_declaration_accepted(self):
        dataset = three_class_dataset()
        request = CertificationRequest(
            dataset, [[0.1, 0.1]], LabelFlipModel(1, n_classes=3)
        )
        assert request.model.n_classes == 3


class TestFlipResultShape:
    """Satellite bugfix: flip rows are shape-identical to removal rows."""

    def test_flip_timeout_matches_removal_timeout_shape(self):
        engine = CertificationEngine(max_depth=2, domain="box", timeout_seconds=1e-9)
        flip = engine.certify_point(well_separated_dataset(), [0.5], LabelFlipModel(2))
        removal = engine.certify_point(
            well_separated_dataset(), [0.5], RemovalPoisoningModel(2)
        )
        assert flip.status is VerificationStatus.TIMEOUT
        assert removal.status is VerificationStatus.TIMEOUT
        assert (flip.exit_count, flip.max_disjuncts) == (
            removal.exit_count,
            removal.max_disjuncts,
        ) == (0, 0)
        assert flip.class_intervals == ()

    def test_successful_flip_reports_real_exit_counters(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(
            well_separated_dataset(), [0.5], LabelFlipModel(1)
        )
        assert result.exit_count >= 1
        assert result.max_disjuncts >= 1


class TestPlanCacheLRU:
    """Satellite bugfix: the plan cache is LRU, not FIFO."""

    def test_hot_plan_survives_interleaved_traffic(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        hot_model = RemovalPoisoningModel(1)
        hot_plan = engine._plan_for(dataset, hot_model)
        # Fill the cache to one below capacity with other models...
        for n in range(2, 9):
            engine._plan_for(dataset, RemovalPoisoningModel(n))
        assert len(engine._plan_cache) == 8
        # ...touch the hot plan (a hit must refresh recency)...
        assert engine._plan_for(dataset, hot_model) is hot_plan
        # ...and overflow: the evictee must be the stalest entry (n=2), not
        # the hot one the old FIFO would have dropped.
        engine._plan_for(dataset, RemovalPoisoningModel(9))
        assert engine._plan_for(dataset, hot_model) is hot_plan
        cached_models = {model for _, model in engine._plan_cache}
        assert RemovalPoisoningModel(2) not in cached_models


class TestParityWithLegacyVerifier:
    def test_matches_poisoning_verifier_on_figure2(self):
        from repro.verify.robustness import PoisoningVerifier

        dataset = figure2_dataset()
        engine = CertificationEngine(max_depth=2, domain="either")
        with pytest.deprecated_call():
            verifier = PoisoningVerifier(max_depth=2, domain="either")
        for n in (0, 1, 2, 8):
            modern = engine.certify_point(dataset, [5.0], n)
            legacy = verifier.verify(dataset, [5.0], n)
            assert modern.status == legacy.status
            assert modern.certified_class == legacy.certified_class
            assert modern.class_intervals == legacy.class_intervals


class TestResourceHandling:
    def test_timeout_reported(self):
        engine = CertificationEngine(
            max_depth=4, domain="disjuncts", timeout_seconds=1e-9
        )
        result = engine.certify_point(figure2_dataset(), [5.0], 2)
        assert result.status is VerificationStatus.TIMEOUT

    def test_resource_exhaustion_reported(self):
        engine = CertificationEngine(max_depth=3, domain="disjuncts", max_disjuncts=2)
        result = engine.certify_point(figure2_dataset(), [5.0], 3)
        assert result.status is VerificationStatus.RESOURCE_EXHAUSTED

    def test_memory_and_time_measured(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(figure2_dataset(), [5.0], 2)
        assert result.elapsed_seconds >= 0.0
        assert result.peak_memory_bytes >= 0
        assert isinstance(result, VerificationResult)


class TestEmptyBatch:
    def test_empty_request_yields_empty_report_with_none_fraction(self):
        """Regression: empty batches must not read as 'nothing certified'."""
        engine = CertificationEngine(max_depth=1)
        report = engine.certify_batch(figure2_dataset(), np.empty((0, 1)), 1)
        assert report.total == 0
        assert report.certified_count == 0
        assert report.certified_fraction is None
        assert report.status_counts["robust"] == 0
