"""Tests for the unified CertificationEngine: dispatch, reuse, and budgets."""

import numpy as np
import pytest

from repro.api import CertificationEngine, CertificationRequest, as_perturbation_model
from repro.datasets.toy import figure2_dataset
from repro.poisoning.models import (
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)
from repro.verify.result import VerificationResult, VerificationStatus
from tests.conftest import well_separated_dataset


class TestConfiguration:
    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            CertificationEngine(domain="magic")

    def test_rejects_negative_budget(self):
        engine = CertificationEngine(max_depth=1)
        with pytest.raises(ValueError):
            engine.certify_point(figure2_dataset(), [5.0], -1)

    def test_rejects_non_model_threat(self):
        with pytest.raises(ValueError):
            as_perturbation_model("three")
        with pytest.raises(ValueError):
            as_perturbation_model(True)

    def test_learners_constructed_once(self):
        engine = CertificationEngine(max_depth=1, domain="either")
        box_before = engine._box_learner
        disjunctive_before = engine._disjunctive_learner
        engine.certify_point(figure2_dataset(), [5.0], 1)
        engine.certify_point(figure2_dataset(), [5.0], 2)
        assert engine._box_learner is box_before
        assert engine._disjunctive_learner is disjunctive_before


class TestRequest:
    def test_single_point_normalized_to_matrix(self):
        request = CertificationRequest.single(figure2_dataset(), [5.0], 2)
        assert request.points.shape == (1, 1)
        assert request.n_points == 1
        assert isinstance(request.model, RemovalPoisoningModel)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CertificationRequest(figure2_dataset(), np.zeros((2, 3)), 1)

    def test_budget_resolves_against_training_size(self):
        dataset = figure2_dataset()
        request = CertificationRequest(dataset, [[5.0]], FractionalRemovalModel(0.25))
        assert request.budget == int(0.25 * len(dataset))

    def test_caller_array_not_frozen(self):
        """The request copies its points; the caller's array stays writable."""
        X = np.array([[5.0], [6.0]])
        request = CertificationRequest(figure2_dataset(), X, 1)
        X[0, 0] = 99.0  # must not raise, and must not leak into the request
        assert request.points[0, 0] == 5.0


class TestThreatModelDispatch:
    """All three threat models certify through the single verify(request) call."""

    def test_removal_model(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        report = engine.verify(
            CertificationRequest(well_separated_dataset(), [[0.5]], RemovalPoisoningModel(2))
        )
        (result,) = report.results
        assert result.status is VerificationStatus.ROBUST
        assert result.domain == "box"
        assert result.poisoning_amount == 2

    def test_fractional_model_resolves_budget(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        fraction = FractionalRemovalModel(0.05)
        report = engine.verify(CertificationRequest(dataset, [[0.5]], fraction))
        (result,) = report.results
        assert result.poisoning_amount == fraction.resolve_budget(len(dataset))
        assert result.status is VerificationStatus.ROBUST

    def test_fractional_matches_equivalent_removal(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="either")
        x = [[0.5]]
        fractional = engine.verify(
            CertificationRequest(dataset, x, FractionalRemovalModel(0.1))
        ).results[0]
        explicit = engine.verify(
            CertificationRequest(dataset, x, RemovalPoisoningModel(len(dataset) // 10))
        ).results[0]
        assert fractional.status == explicit.status
        assert fractional.class_intervals == explicit.class_intervals

    def test_label_flip_model(self):
        engine = CertificationEngine(max_depth=1)
        report = engine.verify(
            CertificationRequest(well_separated_dataset(), [[0.5]], LabelFlipModel(2))
        )
        (result,) = report.results
        assert result.domain == "flip-box"
        assert result.status in (VerificationStatus.ROBUST, VerificationStatus.UNKNOWN)
        assert result.poisoning_amount == 2

    def test_label_flip_matches_extension_verifier(self):
        from repro.poisoning.label_flip import LabelFlipVerifier

        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=2)
        unified = engine.certify_point(dataset, [0.5], LabelFlipModel(3))
        extension = LabelFlipVerifier(max_depth=2).verify(dataset, [0.5], flips=3)
        assert unified.is_certified == extension.robust
        assert unified.certified_class == extension.certified_class
        assert unified.class_intervals == extension.class_intervals

    def test_oversized_budget_reports_requested_amount(self):
        """Legacy parity: n > |T| is clamped for the abstraction but reported as given."""
        dataset = figure2_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(dataset, [5.0], 10_000)
        assert result.poisoning_amount == 10_000

    def test_int_budget_coerces_to_removal_model(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        by_int = engine.certify_point(well_separated_dataset(), [0.5], 2)
        by_model = engine.certify_point(
            well_separated_dataset(), [0.5], RemovalPoisoningModel(2)
        )
        assert by_int.status == by_model.status
        assert by_int.class_intervals == by_model.class_intervals


class TestParityWithLegacyVerifier:
    def test_matches_poisoning_verifier_on_figure2(self):
        from repro.verify.robustness import PoisoningVerifier

        dataset = figure2_dataset()
        engine = CertificationEngine(max_depth=2, domain="either")
        with pytest.deprecated_call():
            verifier = PoisoningVerifier(max_depth=2, domain="either")
        for n in (0, 1, 2, 8):
            modern = engine.certify_point(dataset, [5.0], n)
            legacy = verifier.verify(dataset, [5.0], n)
            assert modern.status == legacy.status
            assert modern.certified_class == legacy.certified_class
            assert modern.class_intervals == legacy.class_intervals


class TestResourceHandling:
    def test_timeout_reported(self):
        engine = CertificationEngine(
            max_depth=4, domain="disjuncts", timeout_seconds=1e-9
        )
        result = engine.certify_point(figure2_dataset(), [5.0], 2)
        assert result.status is VerificationStatus.TIMEOUT

    def test_resource_exhaustion_reported(self):
        engine = CertificationEngine(max_depth=3, domain="disjuncts", max_disjuncts=2)
        result = engine.certify_point(figure2_dataset(), [5.0], 3)
        assert result.status is VerificationStatus.RESOURCE_EXHAUSTED

    def test_memory_and_time_measured(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        result = engine.certify_point(figure2_dataset(), [5.0], 2)
        assert result.elapsed_seconds >= 0.0
        assert result.peak_memory_bytes >= 0
        assert isinstance(result, VerificationResult)


class TestEmptyBatch:
    def test_empty_request_yields_empty_report_with_none_fraction(self):
        """Regression: empty batches must not read as 'nothing certified'."""
        engine = CertificationEngine(max_depth=1)
        report = engine.certify_batch(figure2_dataset(), np.empty((0, 1)), 1)
        assert report.total == 0
        assert report.certified_count == 0
        assert report.certified_fraction is None
        assert report.status_counts["robust"] == 0
