"""Tests for the deprecated PoisoningVerifier shim over the engine."""

import warnings

import numpy as np
import pytest

from repro.api import CertificationEngine
from repro.datasets.toy import figure2_dataset
from repro.verify.robustness import PoisoningVerifier
from repro.verify.search import max_certified_poisoning, robustness_sweep
from tests.conftest import well_separated_dataset


def _quiet_verifier(**kwargs) -> PoisoningVerifier:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return PoisoningVerifier(**kwargs)


class TestDeprecation:
    def test_construction_warns(self):
        with pytest.deprecated_call():
            PoisoningVerifier(max_depth=1)

    def test_shim_exposes_engine(self):
        verifier = _quiet_verifier(max_depth=1, domain="box", timeout_seconds=5.0)
        assert isinstance(verifier.engine, CertificationEngine)
        assert verifier.engine.max_depth == 1
        assert verifier.engine.domain == "box"
        assert verifier.engine.timeout_seconds == 5.0


class TestDelegation:
    def test_verify_matches_engine(self):
        dataset = figure2_dataset()
        verifier = _quiet_verifier(max_depth=2, domain="either")
        legacy = verifier.verify(dataset, [5.0], 2)
        modern = verifier.engine.certify_point(dataset, [5.0], 2)
        assert legacy.status == modern.status
        assert legacy.class_intervals == modern.class_intervals

    def test_verify_batch_order(self):
        dataset = well_separated_dataset()
        verifier = _quiet_verifier(max_depth=1, domain="box")
        X = np.array([[0.5], [11.0], [1.0]])
        results = verifier.verify_batch(dataset, X, 1)
        assert len(results) == 3
        assert results[0].predicted_class == 0
        assert results[1].predicted_class == 1

    def test_negative_budget_still_value_error(self):
        verifier = _quiet_verifier(max_depth=1)
        with pytest.raises(ValueError):
            verifier.verify(figure2_dataset(), [5.0], -1)
        with pytest.raises(ValueError):
            verifier.verify_batch(figure2_dataset(), np.array([[5.0]]), -2)

    def test_certified_fraction_legacy_empty_behavior(self):
        """The shim keeps the documented legacy 0.0; the engine reports None."""
        verifier = _quiet_verifier(max_depth=1)
        dataset = figure2_dataset()
        empty = np.empty((0, 1))
        assert verifier.certified_fraction(dataset, empty, 1) == 0.0
        assert verifier.engine.certify_batch(dataset, empty, 1).certified_fraction is None


class TestSearchAcceptsBoth:
    def test_search_with_engine_and_shim_agree(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        shim = _quiet_verifier(max_depth=1, domain="box")
        by_engine = max_certified_poisoning(engine, dataset, [0.5], max_n=8)
        by_shim = max_certified_poisoning(shim, dataset, [0.5], max_n=8)
        assert by_engine.max_certified_n == by_shim.max_certified_n
        assert by_engine.attempts == by_shim.attempts

    def test_sweep_with_engine(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        records = robustness_sweep(
            engine, dataset, np.array([[0.5], [11.0]]), amounts=(1, 2)
        )
        assert records
        assert records[0].attempted == 2
        assert 0.0 <= records[0].fraction_certified <= 1.0
