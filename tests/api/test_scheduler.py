"""Tests for the async submission API and cross-batch in-flight coalescing."""

import threading

import numpy as np
import pytest

from repro.api import BatchSubmission, CertificationEngine, CertificationRequest
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from repro.verify.result import VerificationResult
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0], [5.0]])


def _engine(tmp_path=None) -> CertificationEngine:
    runtime = None
    if tmp_path is not None:
        runtime = CertificationRuntime(tmp_path / "cache")
    return CertificationEngine(max_depth=1, domain="box", runtime=runtime)


class TestSubmit:
    def test_submit_returns_futures_and_gather_matches_verify(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        submission = engine.submit(request)
        assert isinstance(submission, BatchSubmission)
        assert len(submission.futures) == 3
        results = submission.gather(timeout=60)
        assert all(isinstance(r, VerificationResult) for r in results)
        reference = engine.verify(request)
        assert [r.status for r in results] == [r.status for r in reference.results]

    def test_submission_report_matches_synchronous_report(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        report = engine.submit(request).report(timeout=60)
        reference = engine.verify(request)
        assert report.total == reference.total
        assert report.certified_count == reference.certified_count
        assert report.model_description == reference.model_description
        assert report.dataset_name == reference.dataset_name

    def test_gather_of_multiple_submissions(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        submissions = [engine.submit(request) for _ in range(3)]
        batches = engine.scheduler.gather(submissions, timeout=60)
        assert len(batches) == 3
        statuses = [[r.status for r in batch] for batch in batches]
        assert statuses[0] == statuses[1] == statuses[2]

    def test_submission_report_carries_runtime_stats(self, tmp_path):
        engine = _engine(tmp_path)
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        cold = engine.submit(request).report(timeout=60)
        assert cold.runtime_stats is not None
        assert cold.runtime_stats["learner_invocations"] == 3
        warm = engine.submit(request).report(timeout=60)
        assert warm.runtime_stats["learner_invocations"] == 0

    def test_truncated_submission_resolves_every_future(self, tmp_path):
        from repro.api.scheduler import InflightAbandoned

        runtime = CertificationRuntime(tmp_path / "cache", max_new_points=2)
        engine = CertificationEngine(max_depth=1, domain="box", runtime=runtime)
        dataset = well_separated_dataset()
        request = CertificationRequest(
            dataset,
            np.array([[0.5], [11.0], [5.0], [0.8], [10.4]]),
            RemovalPoisoningModel(1),
        )
        submission = engine.submit(request)
        # The first two points resolve; the truncated remainder must fail
        # promptly instead of stranding gather() forever.
        assert submission.futures[0].result(timeout=60) is not None
        assert submission.futures[1].result(timeout=60) is not None
        for future in submission.futures[2:]:
            with pytest.raises(InflightAbandoned, match="truncation"):
                future.result(timeout=60)

    def test_submission_failure_resolves_every_future(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        engine._stream_rows = explode
        submission = engine.submit(request)
        for future in submission.futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=60)


class TestCrossBatchDedup:
    """Satellite: overlapping batches from threads cost one learner
    invocation per *distinct* point."""

    def test_concurrent_overlapping_batches_share_learner_work(self, tmp_path):
        engine = _engine(tmp_path)
        dataset = well_separated_dataset()
        batch_a = CertificationRequest(
            dataset, np.array([[0.5], [11.0], [5.0], [0.8]]), RemovalPoisoningModel(1)
        )
        batch_b = CertificationRequest(
            dataset, np.array([[5.0], [0.8], [10.4], [0.5]]), RemovalPoisoningModel(1)
        )
        distinct = len({tuple(row) for row in np.vstack([batch_a.points, batch_b.points])})
        results = {}
        errors = []

        def run(name, request):
            try:
                results[name] = list(engine.certify_stream(request))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=("a", batch_a)),
            threading.Thread(target=run, args=("b", batch_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results["a"]) == 4 and len(results["b"]) == 4
        # Whether the batches overlapped in flight (coalesced) or in time
        # (cache hits), each distinct point ran the learner exactly once.
        assert engine.runtime.stats.learner_invocations == distinct
        # The shared points agree across the two batches.
        by_point_a = dict(zip(map(tuple, batch_a.points), results["a"]))
        by_point_b = dict(zip(map(tuple, batch_b.points), results["b"]))
        for point in set(by_point_a) & set(by_point_b):
            assert by_point_a[point].status == by_point_b[point].status

    def test_inflight_lease_observed_deterministically(self):
        """Force genuine in-flight overlap with a gated learner."""
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler = engine.scheduler

        release = threading.Event()
        started = threading.Event()
        original = CertificationEngine._certify_one
        calls = []

        def gated(self, ds, x, model, plan):
            calls.append(tuple(np.asarray(x)))
            started.set()
            assert release.wait(timeout=60), "gate never released"
            return original(self, ds, x, model, plan)

        engine._certify_one = gated.__get__(engine)
        first = scheduler.submit(request)
        assert started.wait(timeout=60)
        # The first batch is mid-computation: every one of its keys is
        # registered, so a second identical submission must lease all three.
        coalesced_before = scheduler.stats.coalesced
        second = scheduler.submit(request)
        # Wait until the second submission has registered its (leased) keys.
        deadline = threading.Event()
        for _ in range(600):
            if scheduler.stats.coalesced >= coalesced_before + 3:
                break
            deadline.wait(0.05)
        assert scheduler.stats.coalesced == coalesced_before + 3
        release.set()
        results_first = first.gather(timeout=120)
        results_second = second.gather(timeout=120)
        assert [r.status for r in results_first] == [r.status for r in results_second]
        # Exactly one learner invocation per distinct point, despite two
        # identical in-flight batches.
        assert len(calls) == 3
        assert scheduler.inflight_count == 0

    def test_fully_leased_batch_does_not_inherit_previous_stats(self, tmp_path):
        """A batch whose points are all leased must not report the thread's
        previous batch counters as its own runtime_stats."""
        engine = _engine(tmp_path)
        dataset = well_separated_dataset()
        cold_request = CertificationRequest(
            dataset, np.array([[0.9], [10.7]]), RemovalPoisoningModel(1)
        )
        # Seed this thread's last_batch_stats with a cold batch.
        cold = engine.verify(cold_request)
        assert cold.runtime_stats["learner_invocations"] == 2

        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        release = threading.Event()
        started = threading.Event()
        original = CertificationEngine._certify_one

        def gated(self, ds, x, model, plan):
            started.set()
            assert release.wait(timeout=60)
            return original(self, ds, x, model, plan)

        engine._certify_one = gated.__get__(engine)
        owner = engine.submit(request)
        assert started.wait(timeout=60)
        # This thread's verify leases every point from the gated submission;
        # a timer opens the gate shortly after the wait begins.
        timer = threading.Timer(0.2, release.set)
        timer.start()
        report = engine.verify(request)
        timer.join()
        assert [r.status for r in report.results] == [
            r.status for r in owner.gather(timeout=120)
        ]
        # Fully leased: no runtime_stats rather than the cold batch's.
        assert report.runtime_stats is None

    def test_lease_survives_owner_failure(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler = engine.scheduler

        release = threading.Event()
        started = threading.Event()

        def exploding_stream(*args, **kwargs):
            started.set()
            assert release.wait(timeout=60)
            raise RuntimeError("owner died")
            yield  # pragma: no cover - makes this a generator

        engine._stream_rows = exploding_stream
        doomed = scheduler.submit(request)
        assert started.wait(timeout=60)
        follower = scheduler.submit(request)
        release.set()
        with pytest.raises(RuntimeError, match="owner died"):
            doomed.gather(timeout=120)
        # Restore the real compute path; leased failures fall back locally.
        del engine._stream_rows
        results = follower.gather(timeout=120)
        assert len(results) == 3
        assert all(isinstance(r, VerificationResult) for r in results)


class TestSchedulerTelemetry:
    """Satellite: coalescing and lease fallbacks move the telemetry counters."""

    def test_coalesced_lease_increments_counters(self):
        from repro.telemetry import metrics
        from repro.telemetry.metrics import series_value

        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler = engine.scheduler

        release = threading.Event()
        started = threading.Event()
        original = CertificationEngine._certify_one

        def gated(self, ds, x, model, plan):
            started.set()
            assert release.wait(timeout=60)
            return original(self, ds, x, model, plan)

        engine._certify_one = gated.__get__(engine)
        before = metrics.get_registry().snapshot()
        first = scheduler.submit(request)
        assert started.wait(timeout=60)
        second = scheduler.submit(request)
        for _ in range(600):
            if scheduler.stats.coalesced >= 3:
                break
            threading.Event().wait(0.05)
        release.set()
        first.gather(timeout=120)
        second.gather(timeout=120)
        after = metrics.get_registry().snapshot()

        def delta(name, **labels):
            return series_value(after, name, **labels) - series_value(
                before, name, **labels
            )

        assert delta("scheduler_batches_total") == 2
        assert delta("scheduler_submitted_total") == 6
        assert delta("scheduler_coalesced_total") == 3
        # The three leases were satisfied by the owner: waits were recorded,
        # no fallback was needed.
        assert delta("scheduler_lease_wait_seconds") == 3
        assert delta("scheduler_lease_fallback_total") == 0

    def test_owner_failure_fallback_counts_and_stamps_a_span(self):
        from repro.telemetry import metrics, tracing
        from repro.telemetry.metrics import series_value

        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler = engine.scheduler

        release = threading.Event()
        started = threading.Event()

        def exploding_stream(*args, **kwargs):
            started.set()
            assert release.wait(timeout=60)
            raise RuntimeError("owner died")
            yield  # pragma: no cover - makes this a generator

        engine._stream_rows = exploding_stream
        tracing.clear_completed()
        tracing.enable_spans(True)
        before = metrics.get_registry().snapshot()
        try:
            doomed = scheduler.submit(request)
            assert started.wait(timeout=60)
            follower = scheduler.submit(request)
            release.set()
            with pytest.raises(RuntimeError, match="owner died"):
                doomed.gather(timeout=120)
            del engine._stream_rows
            results = follower.gather(timeout=120)
        finally:
            tracing.enable_spans(False)
        after = metrics.get_registry().snapshot()
        assert len(results) == 3

        def delta(name, **labels):
            return series_value(after, name, **labels) - series_value(
                before, name, **labels
            )

        # Every leased point fell back to a local certification.
        assert delta("scheduler_lease_fallback_total") == 3
        assert delta("scheduler_lease_wait_seconds") == 3
        # The fallbacks ran on scheduler threads; their spans are observable
        # through the completed-roots ring.
        assert tracing.find_span("scheduler.lease_fallback") is not None


class TestSchedulerBookkeeping:
    def test_inflight_table_empties_after_stream(self):
        engine = _engine()
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        list(engine.certify_stream(request))
        assert engine.scheduler.inflight_count == 0
        stats = engine.scheduler.stats.snapshot()
        assert stats["batches"] == 1
        assert stats["submitted"] == 3
        assert stats["coalesced"] == 0

    def test_coalesced_counts_into_runtime_deduplicated(self, tmp_path):
        engine = _engine(tmp_path)
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler = engine.scheduler

        release = threading.Event()
        started = threading.Event()
        original = CertificationEngine._certify_one

        def gated(self, ds, x, model, plan):
            started.set()
            assert release.wait(timeout=60)
            return original(self, ds, x, model, plan)

        engine._certify_one = gated.__get__(engine)
        first = scheduler.submit(request)
        assert started.wait(timeout=60)
        second = scheduler.submit(request)
        for _ in range(600):
            if scheduler.stats.coalesced >= 3:
                break
            threading.Event().wait(0.05)
        release.set()
        first.gather(timeout=120)
        second.gather(timeout=120)
        assert engine.runtime.stats.deduplicated >= 3

    def test_engine_pickles_without_scheduler_state(self):
        import pickle

        engine = _engine()
        _ = engine.scheduler  # materialize threads/locks
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._scheduler is None
        # The clone is fully functional (fresh locks, fresh plan cache).
        dataset = well_separated_dataset()
        result = clone.certify_point(dataset, [0.5], RemovalPoisoningModel(1))
        assert isinstance(result, VerificationResult)

    def test_close_is_idempotent(self):
        engine = _engine()
        scheduler = engine.scheduler
        dataset = well_separated_dataset()
        request = CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        scheduler.submit(request).gather(timeout=60)
        scheduler.close()
        scheduler.close()
