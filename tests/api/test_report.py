"""Tests for CertificationReport aggregation and serialization."""

import csv
import io
import json

import numpy as np
import pytest

from repro.api import CertificationEngine, CertificationReport, CertificationRequest
from repro.domains.interval import Interval
from repro.poisoning.models import RemovalPoisoningModel
from repro.verify.result import VerificationResult, VerificationStatus
from tests.conftest import well_separated_dataset


def _result(
    status: VerificationStatus = VerificationStatus.ROBUST,
    elapsed: float = 0.5,
    certified: int = 0,
) -> VerificationResult:
    return VerificationResult(
        status=status,
        poisoning_amount=2,
        predicted_class=0,
        certified_class=certified if status is VerificationStatus.ROBUST else None,
        class_intervals=(Interval(0.6, 1.0), Interval(0.0, 0.4)),
        domain="box",
        elapsed_seconds=elapsed,
        peak_memory_bytes=1024,
        exit_count=1,
        max_disjuncts=1,
        log10_num_datasets=3.5,
        message="",
    )


def _engine_report() -> CertificationReport:
    engine = CertificationEngine(max_depth=1, domain="box")
    return engine.verify(
        CertificationRequest(
            well_separated_dataset(),
            np.array([[0.5], [11.0], [5.0]]),
            RemovalPoisoningModel(1),
        )
    )


class TestAggregation:
    def test_counts_and_fraction(self):
        report = CertificationReport(
            results=[
                _result(VerificationStatus.ROBUST),
                _result(VerificationStatus.UNKNOWN),
                _result(VerificationStatus.TIMEOUT),
                _result(VerificationStatus.ROBUST),
            ]
        )
        assert report.total == 4
        assert report.certified_count == 2
        assert report.certified_fraction == pytest.approx(0.5)
        counts = report.status_counts
        assert counts == {
            "robust": 2,
            "unknown": 1,
            "timeout": 1,
            "resource_exhausted": 0,
        }

    def test_empty_report_distinguishes_nothing_to_certify(self):
        """Regression for the legacy 0.0-on-empty conflation."""
        report = CertificationReport()
        assert report.total == 0
        assert report.certified_fraction is None
        assert "no test points" in report.describe()
        # ...while an all-failed report really is 0.0.
        failed = CertificationReport(results=[_result(VerificationStatus.UNKNOWN)])
        assert failed.certified_fraction == 0.0

    def test_timing_percentiles(self):
        report = CertificationReport(
            results=[_result(elapsed=seconds) for seconds in (0.1, 0.2, 0.3, 0.4, 0.5)]
        )
        assert report.mean_seconds == pytest.approx(0.3)
        assert report.elapsed_percentile(0.5) == pytest.approx(0.3)
        assert report.timing_summary["p90_seconds"] == pytest.approx(0.46)
        assert report.timing_summary["max_seconds"] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.elapsed_percentile(1.5)

    def test_iteration_and_len(self):
        report = CertificationReport(results=[_result(), _result()])
        assert len(report) == 2
        assert all(isinstance(r, VerificationResult) for r in report)


class TestSerialization:
    def test_dict_round_trip(self):
        report = _engine_report()
        restored = CertificationReport.from_dict(report.to_dict())
        assert restored.total == report.total
        assert restored.certified_count == report.certified_count
        assert [r.status for r in restored.results] == [r.status for r in report.results]
        assert [r.class_intervals for r in restored.results] == [
            r.class_intervals for r in report.results
        ]

    def test_json_round_trip(self):
        report = _engine_report()
        text = report.to_json(indent=2)
        decoded = json.loads(text)
        assert decoded["total"] == report.total
        restored = CertificationReport.from_json(text)
        assert restored.model_description == report.model_description
        assert restored.dataset_name == report.dataset_name
        assert [r.to_dict() for r in restored.results] == [
            r.to_dict() for r in report.results
        ]

    def test_csv_export(self):
        report = _engine_report()
        rows = list(csv.DictReader(io.StringIO(report.to_csv())))
        assert len(rows) == report.total
        assert rows[0]["index"] == "0"
        assert rows[0]["status"] in {s.value for s in VerificationStatus}
        # The intervals cell is itself valid JSON.
        intervals = json.loads(rows[0]["class_intervals"])
        assert len(intervals) == 2

    def test_render_mentions_key_metrics(self):
        report = _engine_report()
        rendered = report.render()
        assert "certified fraction" in rendered
        assert "p90 time (s)" in rendered
        empty = CertificationReport().render()
        assert "n/a (empty)" in empty
