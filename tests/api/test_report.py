"""Tests for CertificationReport aggregation and serialization."""

import csv
import io
import json

import numpy as np
import pytest

from repro.api import (
    SCHEMA_VERSION,
    CertificationEngine,
    CertificationReport,
    CertificationRequest,
)
from repro.domains.interval import Interval
from repro.poisoning.models import RemovalPoisoningModel
from repro.verify.result import VerificationResult, VerificationStatus
from tests.conftest import well_separated_dataset


def _result(
    status: VerificationStatus = VerificationStatus.ROBUST,
    elapsed: float = 0.5,
    certified: int = 0,
) -> VerificationResult:
    return VerificationResult(
        status=status,
        poisoning_amount=2,
        predicted_class=0,
        certified_class=certified if status is VerificationStatus.ROBUST else None,
        class_intervals=(Interval(0.6, 1.0), Interval(0.0, 0.4)),
        domain="box",
        elapsed_seconds=elapsed,
        peak_memory_bytes=1024,
        exit_count=1,
        max_disjuncts=1,
        log10_num_datasets=3.5,
        message="",
    )


def _engine_report() -> CertificationReport:
    engine = CertificationEngine(max_depth=1, domain="box")
    return engine.verify(
        CertificationRequest(
            well_separated_dataset(),
            np.array([[0.5], [11.0], [5.0]]),
            RemovalPoisoningModel(1),
        )
    )


class TestAggregation:
    def test_counts_and_fraction(self):
        report = CertificationReport(
            results=[
                _result(VerificationStatus.ROBUST),
                _result(VerificationStatus.UNKNOWN),
                _result(VerificationStatus.TIMEOUT),
                _result(VerificationStatus.ROBUST),
            ]
        )
        assert report.total == 4
        assert report.certified_count == 2
        assert report.certified_fraction == pytest.approx(0.5)
        counts = report.status_counts
        assert counts == {
            "robust": 2,
            "unknown": 1,
            "timeout": 1,
            "resource_exhausted": 0,
        }

    def test_empty_report_distinguishes_nothing_to_certify(self):
        """Regression for the legacy 0.0-on-empty conflation."""
        report = CertificationReport()
        assert report.total == 0
        assert report.certified_fraction is None
        assert "no test points" in report.describe()
        # ...while an all-failed report really is 0.0.
        failed = CertificationReport(results=[_result(VerificationStatus.UNKNOWN)])
        assert failed.certified_fraction == 0.0

    def test_timing_percentiles(self):
        report = CertificationReport(
            results=[_result(elapsed=seconds) for seconds in (0.1, 0.2, 0.3, 0.4, 0.5)]
        )
        assert report.mean_seconds == pytest.approx(0.3)
        assert report.elapsed_percentile(0.5) == pytest.approx(0.3)
        assert report.timing_summary["p90_seconds"] == pytest.approx(0.46)
        assert report.timing_summary["max_seconds"] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.elapsed_percentile(1.5)

    def test_iteration_and_len(self):
        report = CertificationReport(results=[_result(), _result()])
        assert len(report) == 2
        assert all(isinstance(r, VerificationResult) for r in report)


class TestSerialization:
    def test_dict_round_trip(self):
        report = _engine_report()
        restored = CertificationReport.from_dict(report.to_dict())
        assert restored.total == report.total
        assert restored.certified_count == report.certified_count
        assert [r.status for r in restored.results] == [r.status for r in report.results]
        assert [r.class_intervals for r in restored.results] == [
            r.class_intervals for r in report.results
        ]

    def test_json_round_trip(self):
        report = _engine_report()
        text = report.to_json(indent=2)
        decoded = json.loads(text)
        assert decoded["total"] == report.total
        restored = CertificationReport.from_json(text)
        assert restored.model_description == report.model_description
        assert restored.dataset_name == report.dataset_name
        assert [r.to_dict() for r in restored.results] == [
            r.to_dict() for r in report.results
        ]

    def test_csv_export(self):
        report = _engine_report()
        rows = list(csv.DictReader(io.StringIO(report.to_csv())))
        assert len(rows) == report.total
        assert rows[0]["index"] == "0"
        assert rows[0]["status"] in {s.value for s in VerificationStatus}
        # The intervals cell is itself valid JSON.
        intervals = json.loads(rows[0]["class_intervals"])
        assert len(intervals) == 2

    def test_render_mentions_key_metrics(self):
        report = _engine_report()
        rendered = report.render()
        assert "certified fraction" in rendered
        assert "p90 time (s)" in rendered
        empty = CertificationReport().render()
        assert "n/a (empty)" in empty


class TestSchemaVersioning:
    """Satellite: the report wire form is explicitly versioned."""

    def test_to_dict_stamps_the_current_version(self):
        payload = _engine_report().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_versioned_payload_round_trips(self):
        report = _engine_report()
        restored = CertificationReport.from_json(report.to_json())
        assert restored.to_dict()["schema_version"] == SCHEMA_VERSION
        assert [r.to_dict() for r in restored.results] == [
            r.to_dict() for r in report.results
        ]

    def test_pre_versioning_payload_still_decodes(self):
        """A PR-1..4 era export (no schema_version key) is implicitly v1."""
        report = _engine_report()
        old_fixture = report.to_dict()
        del old_fixture["schema_version"]
        restored = CertificationReport.from_dict(old_fixture)
        assert restored.total == report.total
        assert [r.status for r in restored.results] == [
            r.status for r in report.results
        ]

    def test_explicit_version_one_accepted(self):
        payload = _engine_report().to_dict()
        payload["schema_version"] = 1
        assert CertificationReport.from_dict(payload).total == 3

    def test_future_version_rejected(self):
        payload = _engine_report().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="upgrade the reader"):
            CertificationReport.from_dict(payload)


class TestCompositePairExport:
    """Satellite fix: composite results must export the full (r, f) pair."""

    @staticmethod
    def _composite_report() -> CertificationReport:
        from repro.poisoning.models import CompositePoisoningModel

        engine = CertificationEngine(max_depth=1, domain="box")
        return engine.verify(
            CertificationRequest(
                well_separated_dataset(),
                np.array([[0.5], [11.0]]),
                CompositePoisoningModel(2, 1),
            )
        )

    def test_csv_emits_the_budget_pair(self):
        report = self._composite_report()
        rows = list(csv.DictReader(io.StringIO(report.to_csv())))
        assert rows, "composite batch produced no rows"
        for row in rows:
            assert row["poisoning_amount"] == "3"  # r + f (nominal total)
            assert row["poisoning_flips"] == "1"  # the pair is recoverable

    def test_pair_round_trips_through_dict_and_json(self):
        report = self._composite_report()
        restored = CertificationReport.from_json(report.to_json())
        assert [r.poisoning_flips for r in restored.results] == [
            r.poisoning_flips for r in report.results
        ]
        assert all(r.poisoning_flips == 1 for r in restored.results)
        assert all(r.poisoning_amount == 3 for r in restored.results)

    def test_removal_rows_report_zero_flips(self):
        report = _engine_report()
        rows = list(csv.DictReader(io.StringIO(report.to_csv())))
        assert all(row["poisoning_flips"] == "0" for row in rows)

    def test_pre_pair_payloads_default_to_zero_flips(self):
        payload = _result().to_dict()
        del payload["poisoning_flips"]  # an export from before the pair fix
        restored = VerificationResult.from_dict(payload)
        assert restored.poisoning_flips == 0


class TestFrontierExport:
    @staticmethod
    def _frontier_report() -> CertificationReport:
        engine = CertificationEngine(max_depth=1, domain="box")
        outcomes = engine.pareto_sweep(
            well_separated_dataset(),
            np.array([[0.5], [11.0]]),
            max_remove=4,
            max_flip=4,
        )
        return CertificationReport(
            results=[],
            model_description="composite (r, f) Pareto frontier",
            dataset_name="well-separated",
            frontiers=[outcome.to_dict() for outcome in outcomes],
        )

    def test_frontiers_round_trip_through_json(self):
        report = self._frontier_report()
        restored = CertificationReport.from_json(report.to_json(indent=2))
        assert restored.frontiers == report.frontiers

    def test_frontier_csv_rows(self):
        report = self._frontier_report()
        rows = list(csv.DictReader(io.StringIO(report.frontier_csv())))
        assert rows
        assert set(rows[0]) == {"index", "n_remove", "n_flip", "probes"}
        by_index = {}
        for row in rows:
            by_index.setdefault(row["index"], []).append(
                (row["n_remove"], row["n_flip"])
            )
        assert set(by_index) == {"0", "1"}

    def test_frontier_csv_blank_row_for_uncertified_point(self):
        report = CertificationReport(
            frontiers=[{"frontier": [], "probes": 1}]
        )
        rows = list(csv.DictReader(io.StringIO(report.frontier_csv())))
        assert rows == [
            {"index": "0", "n_remove": "", "n_flip": "", "probes": "1"}
        ]

    def test_frontier_csv_requires_frontiers(self):
        with pytest.raises(ValueError, match="no Pareto frontiers"):
            CertificationReport().frontier_csv()
