"""Tests for the serial-fallback path when the process pool is unusable.

Sandboxed hosts can forbid fork/spawn entirely (the pool constructor raises
``OSError``) or kill workers mid-batch (``map`` raises ``BrokenExecutor``
after yielding some results).  Either way ``certify_stream`` must warn,
fall back to in-process certification, and still deliver every result in
input order.
"""

from concurrent.futures import BrokenExecutor

import numpy as np
import pytest

import repro.api.engine as engine_module
from repro.api import CertificationEngine, CertificationRequest
from repro.poisoning.models import RemovalPoisoningModel
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0], [0.8], [10.2]])
EXPECTED_CLASSES = [0, 1, 0, 1]


def _request():
    return CertificationRequest(
        well_separated_dataset(), POINTS, RemovalPoisoningModel(1)
    )


class _UnspawnablePool:
    """A pool whose workers cannot be created at all."""

    def __init__(self, *args, **kwargs):
        raise OSError("fork forbidden by sandbox")


class _MidwayBrokenPool:
    """A pool that certifies one row and then loses its workers.

    The initializer runs in-process (exactly what a fork-started worker
    would execute), so the single yielded result is a genuine certification.
    """

    def __init__(self, *args, initializer=None, initargs=(), **kwargs):
        if initializer is not None:
            initializer(*initargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, rows):
        rows = list(rows)

        def results():
            yield fn(rows[0])
            raise BrokenExecutor("worker process died")

        return results()


@pytest.fixture
def engine():
    return CertificationEngine(max_depth=1, domain="box")


class TestSerialFallback:
    def test_unspawnable_pool_falls_back_to_serial(self, engine, monkeypatch):
        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", _UnspawnablePool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = list(engine.certify_stream(_request(), n_jobs=2))
        assert len(results) == len(POINTS)
        assert [r.predicted_class for r in results] == EXPECTED_CLASSES

    def test_midway_broken_pool_completes_remaining_rows(self, engine, monkeypatch):
        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", _MidwayBrokenPool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = list(engine.certify_stream(_request(), n_jobs=2))
        # One result arrived before the executor broke; the fallback must
        # resume *after* it, not re-certify or drop it.
        assert len(results) == len(POINTS)
        assert [r.predicted_class for r in results] == EXPECTED_CLASSES

    def test_fallback_matches_serial_verdicts(self, engine, monkeypatch):
        serial = [r.status for r in engine.certify_stream(_request(), n_jobs=1)]
        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", _MidwayBrokenPool)
        with pytest.warns(RuntimeWarning):
            broken = [r.status for r in engine.certify_stream(_request(), n_jobs=2)]
        assert broken == serial

    def test_fallback_inside_runtime_path(self, engine, monkeypatch, tmp_path):
        from repro.runtime import CertificationRuntime

        engine.runtime = CertificationRuntime(tmp_path / "cache")
        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", _UnspawnablePool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            report = engine.verify(_request(), n_jobs=2)
        assert [r.predicted_class for r in report.results] == EXPECTED_CLASSES
        assert report.runtime_stats["learner_invocations"] == len(POINTS)
