"""Tests for parallel batch certification and order-preserving streaming."""

import numpy as np

from repro.api import CertificationEngine, CertificationRequest
from repro.datasets.registry import load_dataset
from repro.poisoning.models import LabelFlipModel, RemovalPoisoningModel
from tests.conftest import well_separated_dataset


def _iris_request(count: int = 8, n: int = 2) -> CertificationRequest:
    split = load_dataset("iris", scale=0.5, seed=3)
    reps = -(-count // len(split.test))
    points = np.tile(split.test.X, (reps, 1))[:count]
    return CertificationRequest(split.train, points, RemovalPoisoningModel(n))


class TestParallelParity:
    def test_n_jobs_matches_serial_statuses(self):
        engine = CertificationEngine(max_depth=1, domain="either", timeout_seconds=30.0)
        request = _iris_request()
        serial = engine.verify(request, n_jobs=1)
        parallel = engine.verify(request, n_jobs=2)
        assert [r.status for r in serial.results] == [r.status for r in parallel.results]
        assert [r.certified_class for r in serial.results] == [
            r.certified_class for r in parallel.results
        ]
        assert [r.class_intervals for r in serial.results] == [
            r.class_intervals for r in parallel.results
        ]

    def test_parallel_label_flip_dispatch(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1)
        request = CertificationRequest(
            dataset, np.array([[0.5], [11.0], [1.0], [10.5]]), LabelFlipModel(1)
        )
        serial = engine.verify(request)
        parallel = engine.verify(request, n_jobs=2)
        assert [r.status for r in serial.results] == [r.status for r in parallel.results]
        assert all(
            r.domain in ("flip-box", "flip-disjuncts") for r in parallel.results
        )

    def test_parallel_report_preserves_input_order(self):
        """Each result's prediction must match its own point, not another's."""
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        points = np.array([[0.5], [11.0], [0.8], [10.2], [1.2], [11.5]])
        report = engine.verify(
            CertificationRequest(dataset, points, RemovalPoisoningModel(1)), n_jobs=2
        )
        expected = [0, 1, 0, 1, 0, 1]
        assert [r.predicted_class for r in report.results] == expected


class TestStreaming:
    def test_stream_yields_in_order_serial(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        request = _iris_request(count=5, n=1)
        streamed = list(engine.certify_stream(request))
        batch = engine.verify(request)
        assert len(streamed) == 5
        assert [r.status for r in streamed] == [r.status for r in batch.results]

    def test_stream_yields_in_order_parallel(self):
        dataset = well_separated_dataset()
        engine = CertificationEngine(max_depth=1, domain="box")
        points = np.array([[0.5], [11.0], [0.8], [10.2]])
        request = CertificationRequest(dataset, points, RemovalPoisoningModel(1))
        streamed = list(engine.certify_stream(request, n_jobs=2))
        assert [r.predicted_class for r in streamed] == [0, 1, 0, 1]

    def test_stream_is_lazy(self):
        """The first result must be available before the whole batch finishes."""
        engine = CertificationEngine(max_depth=1, domain="box")
        request = _iris_request(count=4, n=1)
        iterator = engine.certify_stream(request)
        first = next(iterator)
        assert first.status is not None
        remaining = list(iterator)
        assert len(remaining) == 3

    def test_empty_request_streams_nothing(self):
        engine = CertificationEngine(max_depth=1)
        request = CertificationRequest(
            well_separated_dataset(), np.empty((0, 1)), RemovalPoisoningModel(1)
        )
        assert list(engine.certify_stream(request, n_jobs=4)) == []
