"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "cifar10"])

    def test_parses_verify_options(self):
        args = build_parser().parse_args(
            ["verify", "iris", "--n", "3", "--depth", "2", "--domain", "box"]
        )
        assert args.dataset == "iris"
        assert args.n == 3
        assert args.domain == "box"


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "mnist17-binary" in output
        assert "wdbc" in output

    def test_verify_command_runs(self, capsys):
        code = main(
            [
                "verify",
                "iris",
                "--n",
                "1",
                "--depth",
                "1",
                "--scale",
                "0.3",
                "--seed",
                "1",
                "--timeout",
                "20",
            ]
        )
        assert code in (0, 1)  # 0 = certified, 1 = inconclusive
        output = capsys.readouterr().out
        assert "test point #0" in output

    def test_verify_command_bad_point(self, capsys):
        code = main(
            ["verify", "iris", "--point", "100000", "--scale", "0.3", "--depth", "1"]
        )
        assert code == 2

    def test_table1_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table1", "--quick", "--save", "cli_table1"]) == 0
        output = capsys.readouterr().out
        assert "acc@d1 (%)" in output
        assert (tmp_path / "cli_table1.txt").exists()

    def test_figure_command_quick(self, capsys):
        assert main(["figure", "iris", "--quick"]) == 0
        assert "Figure 8" in capsys.readouterr().out
