"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "cifar10"])

    def test_parses_verify_options(self):
        args = build_parser().parse_args(
            ["verify", "iris", "--n", "3", "--depth", "2", "--domain", "box"]
        )
        assert args.dataset == "iris"
        assert args.n == 3
        assert args.domain == "box"

    def test_parses_composite_options(self):
        args = build_parser().parse_args(
            ["certify", "iris", "--model", "composite", "--n-remove", "2", "--n-flip", "3"]
        )
        assert args.model == "composite"
        assert args.n_remove == 2
        assert args.n_flip == 3


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "mnist17-binary" in output
        assert "wdbc" in output

    def test_verify_command_runs(self, capsys):
        code = main(
            [
                "verify",
                "iris",
                "--n",
                "1",
                "--depth",
                "1",
                "--scale",
                "0.3",
                "--seed",
                "1",
                "--timeout",
                "20",
            ]
        )
        assert code in (0, 1)  # 0 = certified, 1 = inconclusive
        output = capsys.readouterr().out
        assert "test point #0" in output

    def test_verify_command_bad_point(self, capsys):
        code = main(
            ["verify", "iris", "--point", "100000", "--scale", "0.3", "--depth", "1"]
        )
        assert code == 2

    def test_table1_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table1", "--quick", "--save", "cli_table1"]) == 0
        output = capsys.readouterr().out
        assert "acc@d1 (%)" in output
        assert (tmp_path / "cli_table1.txt").exists()

    def test_figure_command_quick(self, capsys):
        assert main(["figure", "iris", "--quick"]) == 0
        assert "Figure 8" in capsys.readouterr().out


class TestCertifyComposite:
    def test_composite_model_certifies_through_cli(self, capsys, tmp_path):
        code = main(
            [
                "certify", "iris", "--model", "composite",
                "--n-remove", "1", "--n-flip", "1",
                "--points", "2", "--depth", "1", "--scale", "0.3",
                "--json", str(tmp_path / "composite.json"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "removal of up to 1 training elements and flipping of up to 1" in output
        import json

        payload = json.loads((tmp_path / "composite.json").read_text())
        assert payload["total"] == 2
        assert all(r["domain"].startswith("flip-") for r in payload["results"])
        assert all(r["poisoning_amount"] == 2 for r in payload["results"])


class TestCertifyCache:
    CERTIFY = [
        "certify", "iris", "--model", "removal", "--n", "2", "--points", "4",
        "--depth", "1", "--scale", "0.3", "--quiet",
    ]

    def test_warm_cache_rerun_reports_zero_invocations(self, capsys, tmp_path):
        cache_args = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.CERTIFY + cache_args) == 0
        capsys.readouterr()
        assert main(self.CERTIFY + cache_args) == 0
        output = capsys.readouterr().out
        assert "learner invocations        | 0" in output
        assert "100.0% served" in output

    def test_interrupt_and_resume_round_trip(self, capsys, tmp_path):
        cache_args = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.CERTIFY + cache_args + ["--max-new-points", "1"]) == 3
        err = capsys.readouterr().err
        assert "rerun with --resume" in err
        assert main(self.CERTIFY + cache_args + ["--resume"]) == 0
        assert "journal-restored" in capsys.readouterr().out

    @staticmethod
    def _metric(output, name):
        for line in output.splitlines():
            cells = [cell.strip() for cell in line.split("|")]
            if cells[0] == name:
                return cells[1]
        raise AssertionError(f"metric {name!r} not found in:\n{output}")

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.CERTIFY + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert self._metric(capsys.readouterr().out, "verdicts") == "4"
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 4 cached verdict(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert self._metric(capsys.readouterr().out, "verdicts") == "0"

    def test_cache_subcommand_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def test_cache_stats_rejects_missing_directory(self, capsys, tmp_path):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path / "typo")])
        assert code == 2
        assert "no certification cache" in capsys.readouterr().err
        assert not (tmp_path / "typo").exists()

    def test_resume_flags_require_cache_dir(self, capsys):
        assert main(self.CERTIFY + ["--resume"]) == 2
        assert "require --cache-dir" in capsys.readouterr().err
        assert main(self.CERTIFY + ["--max-new-points", "1"]) == 2
        assert "require --cache-dir" in capsys.readouterr().err


class TestCacheGC:
    CERTIFY = TestCertifyCache.CERTIFY

    def test_gc_requires_a_bound(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.CERTIFY + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 2
        assert "at least one bound" in capsys.readouterr().err

    def test_gc_evicts_and_reports(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.CERTIFY + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir, "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 3 verdict(s)" in out
        assert "1 remaining" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert TestCertifyCache._metric(capsys.readouterr().out, "verdicts") == "1"

    def test_gc_age_and_byte_bounds(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.CERTIFY + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # Freshly used verdicts survive a generous age bound...
        assert main(["cache", "gc", "--cache-dir", cache_dir, "--max-age", "3600"]) == 0
        assert "evicted 0 verdict(s)" in capsys.readouterr().out
        # ...but an impossible byte bound empties the cache entirely.
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "0"]) == 0
        assert "0 remaining" in capsys.readouterr().out


class TestServeAndConnect:
    def test_serve_parser_options(self):
        args = build_parser().parse_args(
            ["serve", "/tmp/x.sock", "--cache-dir", "/tmp/c", "--max-engines", "3"]
        )
        assert args.socket == "/tmp/x.sock"
        assert args.cache_dir == "/tmp/c"
        assert args.max_engines == 3

    def test_connect_rejects_local_cache_flags(self, capsys):
        code = main(
            ["certify", "iris", "--points", "1", "--depth", "1", "--scale", "0.3",
             "--connect", "/tmp/nope.sock", "--cache-dir", "/tmp/c"]
        )
        assert code == 2
        assert "server owns the runtime" in capsys.readouterr().err

    def test_sweep_connect_rejects_cache_dir(self, capsys):
        code = main(
            ["sweep", "iris", "--points", "1", "--depth", "1", "--scale", "0.3",
             "--connect", "/tmp/nope.sock", "--cache-dir", "/tmp/c"]
        )
        assert code == 2
        assert "--connect is incompatible" in capsys.readouterr().err

    def test_certify_and_sweep_against_a_live_daemon(self, capsys, tmp_path):
        from repro.service import CertificationServer, wait_for_server

        server = CertificationServer(tmp_path / "s", cache_dir=tmp_path / "cache")
        base = ["--points", "2", "--depth", "1", "--scale", "0.3", "--quiet"]
        with server:
            wait_for_server(server.socket_path, timeout=30)
            connect = ["--connect", str(server.socket_path)]
            assert main(["certify", "iris", "--model", "removal", "--n", "2",
                         *base, *connect]) == 0
            capsys.readouterr()
            # The warm rerun answers from the server's cache.
            assert main(["certify", "iris", "--model", "removal", "--n", "2",
                         *base, *connect,
                         "--json", str(tmp_path / "warm.json")]) == 0
            output = capsys.readouterr().out
            assert "learner invocations        | 0" in output
            import json as json_module

            warm = json_module.loads((tmp_path / "warm.json").read_text())
            assert warm["runtime_stats"]["learner_invocations"] == 0
            # A scalar sweep through the same daemon.
            assert main(["sweep", "iris", "--model", "removal", "--max-n", "2",
                         *base, *connect]) == 0
            sweep_out = capsys.readouterr().out
            assert "largest max budget" in sweep_out
            assert "learner invocations" in sweep_out


class TestSweepCommand:
    SWEEP = ["sweep", "iris", "--depth", "1", "--scale", "0.3", "--timeout", "20"]

    def test_parses_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "iris", "--model", "composite", "--frontier",
             "--max-remove", "2", "--max-flip", "3"]
        )
        assert args.frontier
        assert args.max_remove == 2
        assert args.max_flip == 3

    def test_scalar_sweep_runs_and_exports(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(
            self.SWEEP
            + ["--max-n", "4", "--points", "2",
               "--json", str(json_path), "--csv", str(csv_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "max certified budget" in output
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert payload["family"] == "removal"
        assert len(payload["outcomes"]) == 2
        assert all("max_certified_n" in row for row in payload["outcomes"])
        assert all("trace_reuse_fraction" in row for row in payload["outcomes"])
        header = csv_path.read_text().splitlines()[0]
        assert header == "index,max_certified_n,attempts,trace_steps,trace_reused"

    def test_label_flip_family_sweep(self, capsys):
        code = main(self.SWEEP + ["--model", "label-flip", "--max-n", "2", "--points", "1"])
        assert code == 0
        assert "label-flip" in capsys.readouterr().out

    def test_frontier_requires_composite(self, capsys):
        assert main(self.SWEEP + ["--frontier"]) == 2
        assert "--model composite" in capsys.readouterr().err

    def test_composite_requires_frontier(self, capsys):
        assert main(self.SWEEP + ["--model", "composite"]) == 2
        assert "--frontier" in capsys.readouterr().err

    def test_frontier_sweep_with_warm_cache(self, capsys, tmp_path):
        import json as json_module

        cache = tmp_path / "cache"
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        csv_path = tmp_path / "frontier.csv"
        frontier_args = self.SWEEP + [
            "--model", "composite", "--frontier",
            "--max-remove", "1", "--max-flip", "1", "--points", "2",
            "--cache-dir", str(cache),
        ]
        assert main(frontier_args + ["--json", str(cold_path), "--csv", str(csv_path)]) == 0
        assert "frontier" in capsys.readouterr().out
        assert main(frontier_args + ["--json", str(warm_path), "--quiet"]) == 0
        cold = json_module.loads(cold_path.read_text())
        warm = json_module.loads(warm_path.read_text())
        assert cold["runtime_stats"]["learner_invocations"] > 0
        # The warm rerun re-derives every frontier from the pair-dominance
        # cache: identical frontiers, zero learner invocations.
        assert warm["runtime_stats"]["learner_invocations"] == 0
        assert [f["frontier"] for f in warm["frontiers"]] == [
            f["frontier"] for f in cold["frontiers"]
        ]
        header = csv_path.read_text().splitlines()[0]
        assert header == "index,n_remove,n_flip,probes"


class TestObservabilityCommands:
    """`repro top`, `repro trace`, `--log-json`, and request-id minting."""

    def test_top_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.connect is None
        assert args.interval == 2.0
        assert args.iterations == 0

    def test_top_renders_one_local_frame(self, capsys):
        assert main(["top", "--iterations", "1", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out

    def test_trace_misses_locally_with_a_hint(self, capsys):
        assert main(["trace", "0123456789abcdef"]) == 2
        err = capsys.readouterr().err
        assert "0123456789abcdef" in err
        assert "--connect" in err

    def test_log_json_emits_correlated_events_and_prints_the_id(
        self, capsys, tmp_path
    ):
        import json as json_module

        from repro.telemetry import events

        log = tmp_path / "events.jsonl"
        events._reset_for_tests()
        try:
            code = main(
                ["verify", "iris", "--point", "0", "--n", "1", "--depth", "1",
                 "--scale", "0.3", "--log-json", str(log)]
            )
        finally:
            events.configure(None)
            events._reset_for_tests()
        assert code in (0, 1)  # 0 = certified, 1 = inconclusive
        err = capsys.readouterr().err
        assert "[request id " in err
        rid = err.split("[request id ")[1].split("]")[0]
        records = [
            json_module.loads(line) for line in log.read_text().splitlines()
        ]
        assert {r["event"] for r in records} >= {"cli.command", "cli.exit"}
        assert {r.get("rid") for r in records} == {rid}

    def test_top_and_trace_against_a_live_daemon(self, capsys, tmp_path):
        from repro.service import CertificationServer, wait_for_server
        from repro.telemetry import events, tracing

        server = CertificationServer(tmp_path / "s", cache_dir=tmp_path / "cache")
        tracing.enable_spans(True)
        try:
            with server:
                wait_for_server(server.socket_path, timeout=30)
                connect = ["--connect", str(server.socket_path)]
                log = tmp_path / "events.jsonl"
                assert main(
                    ["certify", "iris", "--model", "removal", "--n", "1",
                     "--points", "1", "--depth", "1", "--scale", "0.3",
                     "--quiet", "--log-json", str(log), *connect]
                ) == 0
                err = capsys.readouterr().err
                rid = err.split("[request id ")[1].split("]")[0]

                assert main(["top", "--iterations", "1", "--no-clear", *connect]) == 0
                top_out = capsys.readouterr().out
                assert "certify" in top_out

                assert main(["trace", rid, *connect]) == 0
                trace_out = capsys.readouterr().out
                assert "server.certify" in trace_out

                assert main(["trace", "ffffffffffffffff", *connect]) == 2
                assert "ffffffffffffffff" in capsys.readouterr().err
        finally:
            tracing.enable_spans(False)
            events.configure(None)
            events._reset_for_tests()
