"""Tests for the label-flip / combined poisoning extension."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.predicates import ThresholdPredicate
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from repro.domains.interval import dominating_component
from repro.poisoning.label_flip import (
    FlipAbstractTrainingSet,
    LabelFlipVerifier,
    _flip_side_score_bounds,
    _flip_split_score_bounds,
    enumerate_composite_poisonings,
    enumerate_label_flips,
    flip_best_split_abstract,
    flip_filter_abstract,
    verify_composite_by_enumeration,
    verify_flips_by_enumeration,
)
from repro.verify.disjunctive_learner import DisjunctiveAbstractLearner
from tests.conftest import random_small_dataset, random_test_point, well_separated_dataset


class TestFlipAbstractTrainingSet:
    def test_budgets_clamped(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet(dataset, np.array([0, 1]), 5, 7)
        assert trainset.removals == 2 and trainset.flips == 2

    def test_split_down_keeps_budgets(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet.full(dataset, 1, 2)
        left = trainset.split_down(ThresholdPredicate(0, 10.5), True)
        assert left.size == 9
        assert left.removals == 1 and left.flips == 2

    def test_join_combines_budgets(self):
        dataset = figure2_dataset()
        a = FlipAbstractTrainingSet(dataset, np.array([0, 1, 2]), 1, 1)
        b = FlipAbstractTrainingSet(dataset, np.array([1, 2, 3]), 0, 2)
        joined = a.join(b)
        assert joined.size == 4
        assert joined.removals >= 1
        assert joined.flips == 2

    def test_probability_intervals_pure_flip(self):
        # 4 black elements, one flip allowed: black probability in [3/4, 1].
        dataset = figure2_dataset()
        right = FlipAbstractTrainingSet(dataset, np.array([9, 10, 11, 12]), 0, 1)
        intervals = right.class_probability_intervals()
        assert intervals[1].lo == pytest.approx(0.75)
        assert intervals[1].hi == pytest.approx(1.0)

    def test_probability_intervals_sound_against_enumeration(self):
        rng = np.random.default_rng(0)
        dataset = random_small_dataset(rng, n_samples=7)
        trainset = FlipAbstractTrainingSet.full(dataset, 0, 2)
        intervals = trainset.class_probability_intervals()
        for poisoned in enumerate_label_flips(dataset, 2):
            probabilities = poisoned.class_probabilities()
            for interval, probability in zip(intervals, probabilities):
                assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9

    def test_pure_feasibility(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet.full(dataset, 0, 2)
        assert not trainset.pure_is_feasible()
        small = FlipAbstractTrainingSet(dataset, np.array([0, 1, 2]), 0, 1)
        assert small.pure_is_feasible()
        assert small.pure_exit_intervals() is not None

    def test_entropy_definitely_zero(self):
        dataset = figure2_dataset()
        pure = FlipAbstractTrainingSet(dataset, np.array([11, 12]), 0, 0)
        assert pure.entropy_definitely_zero()
        noisy = FlipAbstractTrainingSet(dataset, np.array([11, 12]), 0, 1)
        assert not noisy.entropy_definitely_zero()


class TestFlipTransformers:
    def test_best_split_zero_budget_matches_concrete(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet.full(dataset, 0, 0)
        predicates, includes_null = flip_best_split_abstract(trainset)
        assert not includes_null
        assert any(
            getattr(p, "low", None) == 10.0 and getattr(p, "high", None) == 11.0
            for p in predicates
        )

    def test_best_split_null_when_constant(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet(dataset, np.array([3]), 0, 1)
        predicates, includes_null = flip_best_split_abstract(trainset)
        assert includes_null and not predicates

    def test_filter_returns_side_containing_point(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet.full(dataset, 0, 1)
        filtered = flip_filter_abstract(trainset, [ThresholdPredicate(0, 10.5)], [4.0])
        assert filtered is not None
        assert filtered.size == 9

    def test_filter_bottom_without_predicates(self):
        dataset = figure2_dataset()
        trainset = FlipAbstractTrainingSet.full(dataset, 0, 1)
        assert flip_filter_abstract(trainset, [], [4.0]) is None


class TestLabelFlipVerifier:
    def test_zero_budget_certifies(self):
        verifier = LabelFlipVerifier(max_depth=1)
        result = verifier.verify(figure2_dataset(), [18.0], flips=0)
        assert result.robust
        assert result.certified_class == result.predicted_class == 1

    def test_well_separated_data_certified_against_flips(self):
        verifier = LabelFlipVerifier(max_depth=1)
        result = verifier.verify(well_separated_dataset(50), [0.5], flips=2)
        assert result.robust
        assert result.certified_class == 0

    def test_combined_budget_certified(self):
        verifier = LabelFlipVerifier(max_depth=1)
        result = verifier.verify(
            well_separated_dataset(50), [11.0], flips=1, removals=1
        )
        assert result.robust
        assert result.certified_class == 1

    def test_excessive_flips_not_certified(self):
        verifier = LabelFlipVerifier(max_depth=1)
        result = verifier.verify(tiny_boolean_dataset(), [1.0, 0.0], flips=4)
        assert not result.robust

    @pytest.mark.parametrize("seed", range(10))
    def test_soundness_against_flip_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng, n_samples=int(rng.integers(6, 9)))
        x = random_test_point(rng, dataset)
        flips = int(rng.integers(1, 3))
        depth = int(rng.integers(1, 3))
        verifier = LabelFlipVerifier(max_depth=depth)
        result = verifier.verify(dataset, x, flips=flips)
        if result.robust:
            assert verify_flips_by_enumeration(dataset, x, flips, max_depth=depth)


class TestFlipProtocolMethods:
    """The methods the generic learners dispatch on (transformer protocol)."""

    def test_abstract_best_split_wraps_predicate_set(self):
        from repro.domains.predicate_set import AbstractPredicateSet

        trainset = FlipAbstractTrainingSet.full(figure2_dataset(), 0, 0)
        predicates = trainset.abstract_best_split()
        assert isinstance(predicates, AbstractPredicateSet)
        raw, includes_null = flip_best_split_abstract(trainset)
        assert list(predicates) == raw
        assert predicates.includes_null == includes_null

    def test_abstract_best_split_rejects_predicate_pools(self):
        trainset = FlipAbstractTrainingSet.full(figure2_dataset(), 0, 1)
        with pytest.raises(ValueError, match="predicate pools"):
            trainset.abstract_best_split(predicate_pool=[ThresholdPredicate(0, 1.0)])

    def test_box_cprob_contains_optimal(self):
        trainset = FlipAbstractTrainingSet.full(figure2_dataset(), 1, 2)
        optimal = trainset.class_probability_intervals("optimal")
        box = trainset.class_probability_intervals("box")
        for tight, loose in zip(optimal, box):
            assert loose.lo <= tight.lo + 1e-9
            assert loose.hi >= tight.hi - 1e-9

    def test_box_cprob_sound_against_enumeration(self):
        rng = np.random.default_rng(1)
        dataset = random_small_dataset(rng, n_samples=6)
        trainset = FlipAbstractTrainingSet.full(dataset, 1, 1)
        intervals = trainset.class_probability_intervals("box")
        for poisoned in enumerate_composite_poisonings(dataset, 1, 1):
            if len(poisoned) == 0:
                continue
            for interval, probability in zip(intervals, poisoned.class_probabilities()):
                assert interval.lo - 1e-9 <= probability <= interval.hi + 1e-9

    def test_unknown_cprob_method_rejected(self):
        trainset = FlipAbstractTrainingSet.full(figure2_dataset(), 0, 1)
        with pytest.raises(ValueError, match="cprob"):
            trainset.class_probability_intervals("magic")


class TestDisjunctiveFlipSoundness:
    """The disjunctive learner on ⟨T, r, f⟩ must stay sound w.r.t. enumeration."""

    @pytest.mark.parametrize("seed", range(8))
    def test_flip_certificates_hold_under_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng, n_samples=int(rng.integers(6, 9)))
        x = random_test_point(rng, dataset)
        flips = int(rng.integers(1, 3))
        depth = int(rng.integers(1, 3))
        learner = DisjunctiveAbstractLearner(max_depth=depth, max_disjuncts=100_000)
        run = learner.run(FlipAbstractTrainingSet.full(dataset, 0, flips), x)
        if run.robust_class is not None:
            assert verify_flips_by_enumeration(dataset, x, flips, max_depth=depth)

    @pytest.mark.parametrize("seed", range(6))
    def test_composite_certificates_hold_under_enumeration(self, seed):
        rng = np.random.default_rng(100 + seed)
        dataset = random_small_dataset(rng, n_samples=int(rng.integers(5, 8)))
        x = random_test_point(rng, dataset)
        depth = int(rng.integers(1, 3))
        learner = DisjunctiveAbstractLearner(max_depth=depth, max_disjuncts=100_000)
        run = learner.run(FlipAbstractTrainingSet.full(dataset, 1, 1), x)
        if run.robust_class is not None:
            assert verify_composite_by_enumeration(dataset, x, 1, 1, max_depth=depth)

    def test_disjuncts_no_less_precise_than_box_on_flips(self):
        """Box and disjuncts agree on the old motivating-gap instance.

        Before the allocation-aware ``bestSplit#`` flip bound, Box was
        inconclusive here (the per-side bound granted the full flip budget to
        both sides of every split, double-counting each flip) and only the
        disjunctive domain certified the point.  The tightened bound closes
        that gap: Box now certifies it outright, and the disjunctive domain
        can only be at least as precise.
        """
        dataset = well_separated_dataset()
        verifier = LabelFlipVerifier(max_depth=1)
        box = verifier.run_abstract(FlipAbstractTrainingSet.full(dataset, 0, 2), [0.5])
        disjunctive = DisjunctiveAbstractLearner(max_depth=1).run(
            FlipAbstractTrainingSet.full(dataset, 0, 2), [0.5]
        )
        assert dominating_component(box.class_intervals) == 0
        assert disjunctive.robust_class == 0
        # The certificates are genuine, not artifacts: two flips really
        # cannot move this point (margin is 20+ elements wide).
        assert verify_flips_by_enumeration(dataset, [0.5], 2, max_depth=1)


class TestCompositeEnumeration:
    def test_counts_match_model_formula(self):
        from repro.poisoning.models import CompositePoisoningModel

        dataset = Dataset(
            X=np.zeros((3, 1)), y=np.array([0, 1, 2]), n_classes=3
        )
        enumerated = sum(1 for _ in enumerate_composite_poisonings(dataset, 1, 1))
        model = CompositePoisoningModel(1, 1, n_classes=3)
        assert enumerated == model.num_neighbors(3)

    def test_degenerate_budgets_recover_the_pure_oracles(self):
        dataset = tiny_boolean_dataset()
        flips_only = [d.y.tolist() for d in enumerate_composite_poisonings(dataset, 0, 1)]
        plain = [d.y.tolist() for d in enumerate_label_flips(dataset, 1)]
        assert flips_only == plain

    def test_oracle_detects_composite_fragility(self):
        # One removal plus one flip is strictly stronger than either alone.
        dataset = figure2_dataset()
        assert verify_composite_by_enumeration(dataset, [18.0], 0, 0, max_depth=1)
        assert not verify_composite_by_enumeration(dataset, [5.0], 2, 2, max_depth=1)


class TestFlipEnumeration:
    def test_enumeration_counts_binary(self):
        dataset = tiny_boolean_dataset()
        flipped = list(enumerate_label_flips(dataset, 1))
        # 1 unchanged + 8 single flips (binary labels -> one alternative each).
        assert len(flipped) == 9

    def test_enumeration_multiclass(self):
        X = np.zeros((3, 1))
        dataset = Dataset(X=X, y=np.array([0, 1, 2]), n_classes=3)
        flipped = list(enumerate_label_flips(dataset, 1))
        assert len(flipped) == 1 + 3 * 2

    def test_enumeration_oracle_detects_fragile_point(self):
        # Flipping both black points of the left branch of Figure 2 cannot be
        # necessary: a single flip near the decision boundary already changes
        # some prediction when enough flips are allowed.
        dataset = figure2_dataset()
        assert verify_flips_by_enumeration(dataset, [18.0], 0, max_depth=1)
        assert not verify_flips_by_enumeration(dataset, [5.0], 4, max_depth=1)


class TestAllocationAwareSplitBounds:
    """Property tests for the flip-allocation fix of ``bestSplit#``.

    The old per-side bound granted the full flip budget to both sides of a
    split at once, double-counting every flip; the fix bounds over the
    allocations ``f_l + f_r ≤ f``.  The new bound must (a) never be looser
    than the old one and (b) still contain every concrete split score of
    ``Δ_{r,f}(T)`` — and certificates built on it must survive the
    enumeration oracle.
    """

    @staticmethod
    def _split_tables(dataset):
        from repro.core.splitter import feature_split_table

        for feature in range(dataset.n_features):
            table = feature_split_table(
                dataset.X, dataset.y, feature, dataset.n_classes
            )
            if table.n_candidates:
                yield feature, table

    @pytest.mark.parametrize("seed", range(10))
    def test_never_looser_than_the_old_per_side_bound(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng, n_samples=int(rng.integers(6, 12)))
        removals = int(rng.integers(0, 3))
        flips = int(rng.integers(0, 4))
        for _, table in self._split_tables(dataset):
            new_lower, new_upper = _flip_split_score_bounds(
                table.left_sizes,
                table.left_class_counts,
                table.right_sizes,
                table.right_class_counts,
                removals,
                flips,
            )
            old_left = _flip_side_score_bounds(
                table.left_sizes, table.left_class_counts, removals, flips
            )
            old_right = _flip_side_score_bounds(
                table.right_sizes, table.right_class_counts, removals, flips
            )
            assert np.all(new_lower >= old_left[0] + old_right[0] - 1e-12)
            assert np.all(new_upper <= old_left[1] + old_right[1] + 1e-12)

    def test_strictly_tighter_somewhere(self):
        # The fix must actually bite: on the motivating instance the upper
        # bound shrinks strictly once flips cannot be double-counted.
        dataset = well_separated_dataset()
        improved = False
        for _, table in self._split_tables(dataset):
            new_lower, new_upper = _flip_split_score_bounds(
                table.left_sizes,
                table.left_class_counts,
                table.right_sizes,
                table.right_class_counts,
                0,
                2,
            )
            old_left = _flip_side_score_bounds(
                table.left_sizes, table.left_class_counts, 0, 2
            )
            old_right = _flip_side_score_bounds(
                table.right_sizes, table.right_class_counts, 0, 2
            )
            if np.any(new_upper < old_left[1] + old_right[1] - 1e-12) or np.any(
                new_lower > old_left[0] + old_right[0] + 1e-12
            ):
                improved = True
        assert improved

    @staticmethod
    def _concrete_split_score(poisoned, feature, threshold):
        values = poisoned.X[:, feature]
        score = 0.0
        for labels in (
            poisoned.y[values <= threshold],
            poisoned.y[values > threshold],
        ):
            if labels.size == 0:
                continue
            counts = np.bincount(labels, minlength=poisoned.n_classes)
            probabilities = counts / labels.size
            score += labels.size * (1.0 - float(np.sum(probabilities**2)))
        return score

    @pytest.mark.parametrize("seed", range(8))
    def test_bounds_contain_every_concrete_split_score(self, seed):
        # Boolean features keep candidate thresholds stable under poisoning
        # (X never changes), so every Δ_{r,f} variant's score at a candidate
        # must land inside the abstract bound for that candidate.
        rng = np.random.default_rng(50 + seed)
        dataset = random_small_dataset(
            rng, n_samples=int(rng.integers(5, 8)), boolean=True
        )
        removals, flips = 1, 1
        poisonings = list(enumerate_composite_poisonings(dataset, removals, flips))
        for feature, table in self._split_tables(dataset):
            lower, upper = _flip_split_score_bounds(
                table.left_sizes,
                table.left_class_counts,
                table.right_sizes,
                table.right_class_counts,
                removals,
                flips,
            )
            for position in range(table.n_candidates):
                threshold = float(table.thresholds[position])
                for poisoned in poisonings:
                    score = self._concrete_split_score(poisoned, feature, threshold)
                    assert lower[position] - 1e-9 <= score <= upper[position] + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_box_composite_certificates_hold_under_enumeration(self, seed):
        # End-to-end soundness of the tightened bestSplit# through the Box
        # learner: anything it certifies against Δ_{1,1} must survive
        # exhaustive retraining.
        from repro.verify.abstract_learner import BoxAbstractLearner

        rng = np.random.default_rng(200 + seed)
        dataset = random_small_dataset(rng, n_samples=int(rng.integers(5, 8)))
        x = random_test_point(rng, dataset)
        depth = int(rng.integers(1, 3))
        learner = BoxAbstractLearner(max_depth=depth)
        run = learner.run(FlipAbstractTrainingSet.full(dataset, 1, 1), x)
        if run.robust_class is not None:
            assert verify_composite_by_enumeration(dataset, x, 1, 1, max_depth=depth)
