"""Tests for the poisoning threat models."""

import math

import pytest

from repro.poisoning.models import (
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)


class TestRemovalPoisoningModel:
    def test_neighborhood_count_matches_paper_formula(self):
        # §2: 92 datasets for |T| = 13 and n = 2.
        model = RemovalPoisoningModel(2)
        assert model.num_neighbors(13) == 92

    def test_budget_clamped_to_training_size(self):
        assert RemovalPoisoningModel(10).resolve_budget(4) == 4

    def test_log10_matches_paper_magnitudes(self):
        # §4.1: for MNIST-1-7 (|T| = 13007) and n = 50, |Δn(T)| ≈ 10^141.
        model = RemovalPoisoningModel(50)
        assert model.log10_num_neighbors(13007) == pytest.approx(141, abs=1.5)

    def test_headline_example_magnitude(self):
        # §2 / §6.2: n = 192 gives ~10^432 and n = 64 gives ~10^174 datasets.
        assert RemovalPoisoningModel(192).log10_num_neighbors(13007) == pytest.approx(
            432, abs=3
        )
        assert RemovalPoisoningModel(64).log10_num_neighbors(13007) == pytest.approx(
            174, abs=2
        )

    def test_zero_budget(self):
        model = RemovalPoisoningModel(0)
        assert model.num_neighbors(100) == 1
        assert model.log10_num_neighbors(100) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(Exception):
            RemovalPoisoningModel(-1)

    def test_describe(self):
        assert "up to 5" in RemovalPoisoningModel(5).describe()


class TestFractionalRemovalModel:
    def test_budget_resolution(self):
        model = FractionalRemovalModel(0.01)
        assert model.resolve_budget(13007) == 130

    def test_counts_match_equivalent_removal_model(self):
        fractional = FractionalRemovalModel(0.1)
        fixed = RemovalPoisoningModel(fractional.resolve_budget(50))
        assert fractional.num_neighbors(50) == fixed.num_neighbors(50)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(Exception):
            FractionalRemovalModel(1.5)

    def test_describe_mentions_percentage(self):
        assert "%" in FractionalRemovalModel(0.05).describe()


class TestLabelFlipModel:
    def test_binary_counts(self):
        model = LabelFlipModel(2, n_classes=2)
        expected = 1 + math.comb(5, 1) + math.comb(5, 2)
        assert model.num_neighbors(5) == expected

    def test_multiclass_counts_scale_with_alternatives(self):
        binary = LabelFlipModel(1, n_classes=2)
        ternary = LabelFlipModel(1, n_classes=3)
        assert ternary.num_neighbors(5) > binary.num_neighbors(5)

    def test_describe(self):
        assert "flip" in LabelFlipModel(3).describe()
