"""Tests for the poisoning threat models."""

import math

import pytest

from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
    resolve_model_classes,
)


class TestRemovalPoisoningModel:
    def test_neighborhood_count_matches_paper_formula(self):
        # §2: 92 datasets for |T| = 13 and n = 2.
        model = RemovalPoisoningModel(2)
        assert model.num_neighbors(13) == 92

    def test_budget_clamped_to_training_size(self):
        assert RemovalPoisoningModel(10).resolve_budget(4) == 4

    def test_log10_matches_paper_magnitudes(self):
        # §4.1: for MNIST-1-7 (|T| = 13007) and n = 50, |Δn(T)| ≈ 10^141.
        model = RemovalPoisoningModel(50)
        assert model.log10_num_neighbors(13007) == pytest.approx(141, abs=1.5)

    def test_headline_example_magnitude(self):
        # §2 / §6.2: n = 192 gives ~10^432 and n = 64 gives ~10^174 datasets.
        assert RemovalPoisoningModel(192).log10_num_neighbors(13007) == pytest.approx(
            432, abs=3
        )
        assert RemovalPoisoningModel(64).log10_num_neighbors(13007) == pytest.approx(
            174, abs=2
        )

    def test_zero_budget(self):
        model = RemovalPoisoningModel(0)
        assert model.num_neighbors(100) == 1
        assert model.log10_num_neighbors(100) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(Exception):
            RemovalPoisoningModel(-1)

    def test_describe(self):
        assert "up to 5" in RemovalPoisoningModel(5).describe()


class TestFractionalRemovalModel:
    def test_budget_resolution(self):
        model = FractionalRemovalModel(0.01)
        assert model.resolve_budget(13007) == 130

    def test_counts_match_equivalent_removal_model(self):
        fractional = FractionalRemovalModel(0.1)
        fixed = RemovalPoisoningModel(fractional.resolve_budget(50))
        assert fractional.num_neighbors(50) == fixed.num_neighbors(50)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(Exception):
            FractionalRemovalModel(1.5)

    def test_describe_mentions_percentage(self):
        assert "%" in FractionalRemovalModel(0.05).describe()


class TestLabelFlipModel:
    def test_binary_counts(self):
        model = LabelFlipModel(2, n_classes=2)
        expected = 1 + math.comb(5, 1) + math.comb(5, 2)
        assert model.num_neighbors(5) == expected

    def test_multiclass_counts_scale_with_alternatives(self):
        binary = LabelFlipModel(1, n_classes=2)
        ternary = LabelFlipModel(1, n_classes=3)
        assert ternary.num_neighbors(5) > binary.num_neighbors(5)

    def test_describe(self):
        assert "flip" in LabelFlipModel(3).describe()

    def test_unresolved_classes_refuse_to_count(self):
        """A default-constructed model must not silently assume binary labels."""
        with pytest.raises(ValueError, match="n_classes"):
            LabelFlipModel(2).num_neighbors(5)
        with pytest.raises(ValueError, match="n_classes"):
            LabelFlipModel(2).resolved_classes


class TestCompositePoisoningModel:
    def test_pure_removal_degenerates_to_removal_counts(self):
        composite = CompositePoisoningModel(2, 0, n_classes=3)
        assert composite.num_neighbors(6) == RemovalPoisoningModel(2).num_neighbors(6)

    def test_pure_flip_degenerates_to_flip_counts(self):
        composite = CompositePoisoningModel(0, 2, n_classes=3)
        assert composite.num_neighbors(6) == LabelFlipModel(
            2, n_classes=3
        ).num_neighbors(6)

    def test_mixed_counts_match_enumeration(self):
        import numpy as np

        from repro.core.dataset import Dataset
        from repro.poisoning.label_flip import enumerate_composite_poisonings

        dataset = Dataset(
            X=np.arange(4, dtype=float).reshape(-1, 1),
            y=np.array([0, 1, 2, 0]),
            n_classes=3,
        )
        model = CompositePoisoningModel(1, 1, n_classes=3)
        enumerated = sum(1 for _ in enumerate_composite_poisonings(dataset, 1, 1))
        assert model.num_neighbors(len(dataset)) == enumerated

    def test_budgets_resolve_against_training_size(self):
        model = CompositePoisoningModel(10, 7, n_classes=2)
        assert model.resolve_budgets(4) == (4, 4)
        assert model.nominal_amount(4) == 17

    def test_nominal_amount_is_total_contamination(self):
        assert CompositePoisoningModel(2, 3).nominal_amount(100) == 5

    def test_describe_mentions_both_budgets(self):
        description = CompositePoisoningModel(2, 3).describe()
        assert "2" in description and "3" in description
        assert "remov" in description and "flip" in description

    def test_rejects_negative_budgets(self):
        with pytest.raises(Exception):
            CompositePoisoningModel(-1, 0)
        with pytest.raises(Exception):
            CompositePoisoningModel(0, -1)

    def test_unresolved_classes_refuse_to_count(self):
        with pytest.raises(ValueError, match="n_classes"):
            CompositePoisoningModel(1, 1).num_neighbors(5)


class TestModelClassResolution:
    def test_fills_unset_classes_from_dataset(self):
        resolved = resolve_model_classes(LabelFlipModel(2), 3)
        assert resolved.n_classes == 3
        resolved = resolve_model_classes(CompositePoisoningModel(1, 1), 4)
        assert resolved.n_classes == 4

    def test_matching_declaration_passes_through(self):
        model = LabelFlipModel(2, n_classes=3)
        assert resolve_model_classes(model, 3) is model

    def test_contradicting_declaration_rejected(self):
        with pytest.raises(ValueError, match="n_classes=2 .* 3 classes"):
            resolve_model_classes(LabelFlipModel(2, n_classes=2), 3)
        with pytest.raises(ValueError, match="n_classes=4 .* 2 classes"):
            resolve_model_classes(CompositePoisoningModel(1, 1, n_classes=4), 2)

    def test_class_free_models_untouched(self):
        model = RemovalPoisoningModel(5)
        assert resolve_model_classes(model, 7) is model
