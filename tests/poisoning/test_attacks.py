"""Tests for the concrete poisoning-attack search."""

import pytest

from repro.core.trace_learner import TraceLearner
from repro.datasets.toy import figure2_dataset
from repro.poisoning.attacks import greedy_removal_attack, random_removal_attack
from tests.conftest import well_separated_dataset


class TestGreedyRemovalAttack:
    def test_attack_on_fragile_example_succeeds(self):
        # The left branch of Figure 2 has a 7-vs-2 majority; with a budget of
        # six removals the greedy attack can flip the classification of 5.
        dataset = figure2_dataset()
        attack = greedy_removal_attack(dataset, [5.0], 6, max_depth=1, rng=0)
        assert attack.success
        assert attack.final_prediction != attack.original_prediction
        assert len(attack.removed_indices) <= 6

    def test_successful_attack_replays(self):
        dataset = figure2_dataset()
        attack = greedy_removal_attack(dataset, [5.0], 6, max_depth=1, rng=0)
        poisoned = dataset.remove(attack.removed_indices)
        assert TraceLearner(max_depth=1).predict(poisoned, [5.0]) == attack.final_prediction

    def test_attack_respects_budget(self):
        dataset = figure2_dataset()
        attack = greedy_removal_attack(dataset, [5.0], 2, max_depth=1, rng=0)
        assert len(attack.removed_indices) <= 2

    def test_robust_configuration_resists_attack(self):
        dataset = well_separated_dataset()
        attack = greedy_removal_attack(dataset, [0.5], 2, max_depth=1, rng=0)
        assert not attack.success

    def test_zero_budget_never_succeeds(self):
        attack = greedy_removal_attack(figure2_dataset(), [5.0], 0, max_depth=1)
        assert not attack.success
        assert attack.removed_indices == ()
        assert attack.evaluations == 0

    def test_candidate_limit_sampling(self):
        dataset = figure2_dataset()
        attack = greedy_removal_attack(
            dataset, [5.0], 3, max_depth=1, candidate_limit=4, rng=1
        )
        assert attack.evaluations <= 3 * 4

    def test_original_prediction_reported(self):
        attack = greedy_removal_attack(figure2_dataset(), [12.0], 1, max_depth=1)
        assert attack.original_prediction == 1


class TestRandomRemovalAttack:
    def test_finds_attack_with_generous_budget(self):
        dataset = figure2_dataset()
        attack = random_removal_attack(
            dataset, [5.0], 7, trials=800, max_depth=1, rng=0
        )
        assert attack.success
        poisoned = dataset.remove(attack.removed_indices)
        assert TraceLearner(max_depth=1).predict(poisoned, [5.0]) == attack.final_prediction

    def test_failure_reports_original_prediction(self):
        dataset = well_separated_dataset()
        attack = random_removal_attack(dataset, [0.5], 1, trials=20, rng=0)
        assert not attack.success
        assert attack.final_prediction == attack.original_prediction
        assert attack.removed_indices == ()

    def test_zero_budget(self):
        attack = random_removal_attack(figure2_dataset(), [5.0], 0, trials=5, rng=0)
        assert not attack.success
        assert attack.evaluations == 0

    def test_rejects_bad_trials(self):
        with pytest.raises(Exception):
            random_removal_attack(figure2_dataset(), [5.0], 1, trials=0)
