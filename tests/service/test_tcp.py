"""TCP transport tests: addressing, negotiation, timeouts, connect retry.

Protocol minor 2 lets the certification daemon bind a TCP listener next to
the Unix-domain socket.  These tests run a real :class:`CertificationServer`
on a loopback TCP port and exercise the paths the Unix-socket suite cannot:
address parsing, keepalive sockets, half-open servers (accepts but never
answers), and connect retry against a late-binding listener.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.api import SCHEMA_VERSION
from repro.poisoning.models import RemovalPoisoningModel
from repro.service import (
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    CertificationClient,
    CertificationServer,
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    format_address,
    parse_address,
    wait_for_server,
)
from repro.service.protocol import encode_frame, read_frame
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0]])


class TestAddressing:
    def test_host_port_parses_as_tcp(self):
        assert parse_address("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
        assert parse_address("tcp://example.com:7300") == (
            "tcp",
            ("example.com", 7300),
        )

    def test_ipv6_brackets(self):
        assert parse_address("[::1]:9000") == ("tcp", ("::1", 9000))
        assert format_address(("::1", 9000)) == "[::1]:9000"

    def test_paths_parse_as_unix(self):
        family, target = parse_address("/tmp/repro.sock")
        assert family == "unix"
        assert str(target) == "/tmp/repro.sock"
        # A relative path with a colon-digit suffix is still a path: the
        # slash disambiguates.
        assert parse_address("run/sock:1")[0] == "unix"

    def test_round_trip_through_format(self):
        for address in ("127.0.0.1:9000", "[::1]:7300", "/tmp/x.sock"):
            assert format_address(address) == address

    def test_malformed_tcp_url_rejected(self):
        with pytest.raises(ProtocolError):
            parse_address("tcp://no-port")


@pytest.fixture
def tcp_server(tmp_path):
    server = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "cache")
    with server:
        wait_for_server(server.address, timeout=30)
        yield server


@pytest.fixture
def tcp_client(tcp_server):
    with CertificationClient(
        tcp_server.address, max_depth=1, domain="box"
    ) as client:
        yield client


class TestTCPHandshake:
    def test_hello_reports_versions_and_backend_id(self, tcp_server, tcp_client):
        info = tcp_client.server_info
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["protocol_minor"] == PROTOCOL_MINOR
        assert info["protocol_minor"] >= 2
        assert info["schema_version"] == SCHEMA_VERSION
        assert info["backend_id"] == tcp_server.address

    def test_older_minor_still_served(self, tcp_client):
        # Minor versions are additive: a hello that only pins the major
        # version (what every pre-minor-2 client sends) must still succeed.
        result = tcp_client.call("hello", {"protocol": PROTOCOL_VERSION})
        assert result["protocol"] == PROTOCOL_VERSION

    def test_protocol_mismatch_rejected(self, tcp_server):
        with pytest.raises(RemoteError, match="protocol"):
            with CertificationClient(tcp_server.address) as raw:
                raw._call("hello", {"protocol": 999})

    def test_certify_round_trip_over_tcp(self, tcp_client):
        dataset = well_separated_dataset()
        report = tcp_client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        assert [r.status.value for r in report.results] == ["robust", "robust"]

    def test_stream_over_tcp(self, tcp_client):
        dataset = well_separated_dataset()
        statuses = [
            r.status.value
            for r in tcp_client.certify_stream(
                dataset, POINTS, RemovalPoisoningModel(1)
            )
        ]
        assert statuses == ["robust", "robust"]


class TestMalformedFrames:
    def _raw_connection(self, server):
        family, target = parse_address(server.address)
        assert family == "tcp"
        sock = socket.create_connection(target, timeout=10)
        return sock

    def test_garbage_line_answered_with_error_frame(self, tcp_server):
        with self._raw_connection(tcp_server) as sock:
            sock.sendall(b"this is not json\n")
            reader = sock.makefile("rb")
            frame = read_frame(reader)
            assert frame["ok"] is False
            assert frame["error"]["type"] == "ProtocolError"
            # The server closes the connection after a framing error: the
            # stream cannot be resynchronized.
            assert reader.readline() == b""

    def test_oversized_frame_rejected(self, tcp_server):
        with self._raw_connection(tcp_server) as sock:
            sock.sendall(b"[" + b"1," * (33 * 1024 * 1024) + b"1]\n")
            frame = read_frame(sock.makefile("rb"))
            assert frame["ok"] is False
            assert frame["error"]["type"] == "ProtocolError"

    def test_error_frame_keeps_connection_for_bad_op(self, tcp_server):
        # Frame-level errors (valid JSON, bad op) are recoverable: the
        # connection survives and serves the next request.
        with self._raw_connection(tcp_server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(encode_frame({"id": 1, "op": "hello",
                                       "params": {"protocol": PROTOCOL_VERSION}}))
            assert read_frame(reader)["ok"] is True
            sock.sendall(encode_frame({"id": 2, "op": "frobnicate"}))
            frame = read_frame(reader)
            assert frame["ok"] is False
            sock.sendall(encode_frame({"id": 3, "op": "ping"}))
            assert read_frame(reader)["result"]["pong"] is True


class TestRequestTimeout:
    def test_half_open_server_raises_timeout(self):
        # A listener that accepts but never answers: the pathological
        # network state request_timeout exists for.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()), daemon=True
        )
        thread.start()
        address = format_address(listener.getsockname())
        try:
            with pytest.raises(RequestTimeoutError, match="no response"):
                CertificationClient(
                    address,
                    connect_timeout=0.5,
                    request_timeout=0.5,
                    connect_retries=0,
                )
        finally:
            listener.close()
            for sock, _ in accepted:
                sock.close()

    def test_timeout_marks_client_broken(self, tcp_server):
        # After a timeout the buffered reader may hold a half-read frame;
        # the client must refuse further use instead of desynchronizing.
        with CertificationClient(
            tcp_server.address, request_timeout=30.0
        ) as client:
            assert client.broken is False
            client._sock.settimeout(0.01)
            client._request_timeout = 0.01
            with pytest.raises(RequestTimeoutError):
                # The certify decode makes even a tiny request slower than
                # 10ms end-to-end, so the deadline fires deterministically.
                client.certify_batch(
                    well_separated_dataset(), POINTS, RemovalPoisoningModel(1)
                )
            assert client.broken is True


class TestConnectRetry:
    def test_refused_without_retries_raises_immediately(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        with pytest.raises(ConnectionRefusedError):
            CertificationClient(f"127.0.0.1:{port}", connect_retries=0)

    def test_retry_with_backoff_reaches_late_server(self, tmp_path):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = CertificationServer(
            tcp=f"127.0.0.1:{port}", cache_dir=tmp_path / "cache"
        )

        def bind_late():
            time.sleep(0.2)
            server.start()

        thread = threading.Thread(target=bind_late, daemon=True)
        thread.start()
        try:
            # Backoff doubles from 50ms; 8 retries cover several seconds,
            # far past the 200ms bind delay.
            with CertificationClient(
                f"127.0.0.1:{port}", connect_retries=8
            ) as client:
                assert client.ping()["pong"] is True
        finally:
            thread.join()
            server.close()
