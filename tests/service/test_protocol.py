"""Tests for the JSON-lines wire protocol (framing + wire forms)."""

import io

import numpy as np
import pytest

from repro.core.dataset import Dataset, FeatureKind
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    RemovalPoisoningModel,
)
from repro.runtime import fingerprint_dataset
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    dataset_from_wire,
    dataset_to_wire,
    encode_frame,
    engine_config_from_wire,
    engine_config_to_wire,
    model_from_wire,
    model_to_wire,
    read_frame,
)


class TestFraming:
    def test_round_trip(self):
        frame = {"id": 1, "op": "ping", "params": {"x": [1.5, None, "s"]}}
        reader = io.BytesIO(encode_frame(frame))
        assert read_frame(reader) == frame

    def test_multiple_frames_in_sequence(self):
        buffer = encode_frame({"id": 1}) + encode_frame({"id": 2})
        reader = io.BytesIO(buffer)
        assert read_frame(reader)["id"] == 1
        assert read_frame(reader)["id"] == 2
        assert read_frame(reader) is None  # clean EOF

    def test_truncated_frame_rejected(self):
        reader = io.BytesIO(b'{"id": 1}')  # no newline: cut mid-frame
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(reader)

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_frame(io.BytesIO(b"not json\n"))
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(io.BytesIO(b"[1, 2]\n"))

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})


class TestDatasetWire:
    def test_inline_round_trip_preserves_content_identity(self):
        dataset = Dataset(
            X=np.array([[0.0, 1.0], [1.0, 0.0], [2.5, 1.0]]),
            y=np.array([0, 1, 1]),
            n_classes=2,
            feature_kinds=(FeatureKind.REAL, FeatureKind.BOOLEAN),
            name="wire-test",
        )
        decoded = dataset_from_wire(dataset_to_wire(dataset))
        assert decoded.name == "wire-test"
        assert decoded.feature_kinds == dataset.feature_kinds
        # The content fingerprint — the cache identity — survives the wire.
        assert fingerprint_dataset(decoded) == fingerprint_dataset(dataset)

    def test_registry_reference_resolves_to_the_same_training_set(self):
        from repro.datasets.registry import load_dataset

        ref = {"name": "iris", "scale": 0.3, "seed": 1}
        decoded = dataset_from_wire(dataset_to_wire(ref))
        local = load_dataset("iris", scale=0.3, seed=1).train
        assert fingerprint_dataset(decoded) == fingerprint_dataset(local)

    def test_rejects_unknown_shapes(self):
        with pytest.raises(ProtocolError):
            dataset_to_wire({"no_name": True})
        with pytest.raises(ProtocolError):
            dataset_from_wire({"neither": {}})


class TestModelWire:
    @pytest.mark.parametrize(
        "model",
        [
            RemovalPoisoningModel(3),
            FractionalRemovalModel(0.05),
            LabelFlipModel(2),
            LabelFlipModel(2, n_classes=3),
            CompositePoisoningModel(1, 2),
            CompositePoisoningModel(1, 2, n_classes=4),
        ],
    )
    def test_round_trip(self, model):
        assert model_from_wire(model_to_wire(model)) == model

    def test_none_template_passes_through(self):
        assert model_to_wire(None) is None
        assert model_from_wire(None) is None

    def test_unknown_family_rejected(self):
        with pytest.raises(ProtocolError, match="unknown threat-model family"):
            model_from_wire({"family": "gradient-ascent"})


class TestEngineConfigWire:
    def test_round_trip(self):
        config = engine_config_to_wire(max_depth=3, domain="box", timeout_seconds=5.0)
        assert engine_config_from_wire(config) == {
            "max_depth": 3,
            "domain": "box",
            "timeout_seconds": 5.0,
        }

    def test_none_values_mean_defaults(self):
        assert engine_config_to_wire(max_depth=2, timeout_seconds=None) == {
            "max_depth": 2
        }

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="predicate_pool"):
            engine_config_to_wire(predicate_pool=[1, 2])
