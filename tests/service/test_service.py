"""End-to-end tests for the certification daemon and its client.

Each test runs a real :class:`CertificationServer` on a Unix-domain socket in
a temp directory and talks to it through :class:`CertificationClient` — the
same path the CLI's ``--connect`` and the CI daemon smoke take.
"""

import socket as socket_module
import threading

import numpy as np
import pytest

from repro.api import SCHEMA_VERSION
from repro.poisoning.models import CompositePoisoningModel, RemovalPoisoningModel
from repro.service import (
    PROTOCOL_VERSION,
    CertificationClient,
    CertificationServer,
    RemoteError,
    wait_for_server,
)
from repro.verify.result import VerificationResult
from tests.conftest import well_separated_dataset

pytestmark = pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"), reason="requires Unix-domain sockets"
)

POINTS = np.array([[0.5], [11.0], [5.0]])


@pytest.fixture
def server(tmp_path):
    # Keep the socket path short: AF_UNIX paths are limited to ~104 bytes.
    server = CertificationServer(tmp_path / "s", cache_dir=tmp_path / "cache")
    with server:
        wait_for_server(server.socket_path, timeout=30)
        yield server


@pytest.fixture
def client(server):
    with CertificationClient(server.socket_path, max_depth=1, domain="box") as client:
        yield client


class TestHandshake:
    def test_hello_reports_versions(self, client):
        assert client.server_info["protocol"] == PROTOCOL_VERSION
        assert client.server_info["schema_version"] == SCHEMA_VERSION

    def test_ping(self, client):
        pong = client.ping()
        assert pong["pong"] is True
        assert pong["uptime_seconds"] >= 0

    def test_protocol_mismatch_rejected(self, server):
        with pytest.raises(RemoteError, match="protocol"):
            # Re-run the handshake with a bogus version through a raw client.
            with CertificationClient(server.socket_path) as raw:
                raw._call("hello", {"protocol": 999})

    def test_unknown_op_is_reported_not_fatal(self, client):
        with pytest.raises(RemoteError, match="unknown operation"):
            client._call("frobnicate")
        # The connection survives the error.
        assert client.ping()["pong"] is True


class TestCertification:
    def test_warm_rerun_reports_zero_learner_invocations(self, client):
        """Acceptance: a second identical batch costs zero learner work."""
        dataset = well_separated_dataset()
        cold = client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        assert cold.total == 3
        assert cold.runtime_stats["learner_invocations"] == 3
        warm = client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        assert warm.runtime_stats["learner_invocations"] == 0
        assert [r.status for r in warm.results] == [r.status for r in cold.results]

    def test_registry_reference_batches_share_the_warm_cache(self, client):
        ref = {"name": "iris", "scale": 0.3, "seed": 0}
        points = np.asarray(
            [[5.0, 3.4, 1.5, 0.2], [6.1, 2.8, 4.7, 1.2]], dtype=float
        )
        cold = client.certify_batch(ref, points, 2)
        warm = client.certify_batch(ref, points, 2)
        assert warm.runtime_stats["learner_invocations"] == 0
        assert warm.total == cold.total == 2

    def test_certify_stream_yields_in_order(self, client):
        dataset = well_separated_dataset()
        streamed = list(
            client.certify_stream(dataset, POINTS, RemovalPoisoningModel(1))
        )
        assert len(streamed) == 3
        assert all(isinstance(r, VerificationResult) for r in streamed)
        batch = client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        assert [r.status for r in streamed] == [r.status for r in batch.results]

    def test_certify_point_and_composite_model(self, client):
        dataset = well_separated_dataset()
        result = client.certify_point(dataset, [0.5], CompositePoisoningModel(1, 1))
        assert result.domain.startswith("flip-")
        assert result.poisoning_amount == 2

    def test_validation_errors_cross_the_wire(self, client):
        dataset = well_separated_dataset()
        with pytest.raises(RemoteError, match="n_classes"):
            client.certify_batch(
                dataset, POINTS, CompositePoisoningModel(1, 1, n_classes=7)
            )
        assert client.ping()["pong"] is True

    def test_concurrent_clients_one_invocation_per_distinct_point(self, server):
        """Acceptance: two clients submitting the same points concurrently
        trigger exactly one learner invocation per distinct point."""
        dataset = well_separated_dataset()
        results = {}
        errors = []

        def run(name):
            try:
                with CertificationClient(
                    server.socket_path, max_depth=1, domain="box"
                ) as client:
                    results[name] = client.certify_batch(
                        dataset, POINTS, RemovalPoisoningModel(1)
                    )
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=run, args=(name,)) for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results["a"].total == results["b"].total == 3
        assert [r.status for r in results["a"].results] == [
            r.status for r in results["b"].results
        ]
        # Whether the two batches coalesced in flight or the later one hit
        # the cache, the server ran the learner exactly once per point.
        assert server.runtime.stats.learner_invocations == 3


class TestSweepOps:
    def test_max_certified_probes_through_the_server_cache(self, client):
        dataset = well_separated_dataset()
        first = client.max_certified(dataset, [0.5], max_budget=4)
        again = client.max_certified(dataset, [0.5], max_budget=4)
        assert again.max_certified_n == first.max_certified_n
        assert again.learner_invocations == 0  # all probes derived from cache

    def test_pareto_frontier_and_sweep(self, client):
        dataset = well_separated_dataset()
        outcome = client.pareto_frontier(dataset, [0.5], max_remove=2, max_flip=2)
        assert isinstance(outcome.frontier, tuple)
        swept = client.pareto_sweep(
            dataset, np.array([[0.5], [11.0]]), max_remove=2, max_flip=2
        )
        assert len(swept) == 2
        assert swept[0].frontier == outcome.frontier
        # The warm sweep re-derives every frontier without the learner.
        assert swept[0].learner_invocations == 0


class TestManagement:
    def test_cache_stats_and_gc(self, client):
        dataset = well_separated_dataset()
        client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        stats = client.cache_stats()
        assert stats["cache"]["verdicts"] == 3
        assert stats["runtime"]["learner_invocations"] == 3
        summary = client.cache_gc(max_entries=1)
        assert summary["evicted"] == 2
        assert summary["remaining"] == 1
        assert client.cache_stats()["cache"]["verdicts"] == 1

    def test_server_stats_report_engines_and_scheduler(self, client):
        dataset = well_separated_dataset()
        client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        stats = client.server_stats()
        assert stats["requests_served"] >= 2  # hello + certify
        assert stats["datasets_resident"] == 1
        assert len(stats["engines"]) == 1
        assert stats["engines"][0]["scheduler"]["submitted"] == 3

    def test_engine_configs_are_isolated(self, server):
        dataset = well_separated_dataset()
        with CertificationClient(server.socket_path, max_depth=1, domain="box") as shallow:
            with CertificationClient(server.socket_path, max_depth=2, domain="box") as deep:
                shallow.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
                deep.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        stats = server.runtime.stats
        # Different depths are different proof problems: no cross-engine
        # cache sharing, 6 invocations in total.
        assert stats.learner_invocations == 6


class TestMetricsOp:
    """The versioned ``metrics`` op and per-op telemetry on the daemon."""

    def test_json_snapshot_counts_server_requests(self, client):
        from repro.service.protocol import METRICS_VERSION
        from repro.telemetry.metrics import series_value

        client.ping()
        payload = client.metrics()
        assert payload["metrics_version"] == METRICS_VERSION
        assert payload["format"] == "json"
        snapshot = payload["metrics"]
        # The server and client share this process's registry in-test, but
        # the `op`-labeled families are only incremented by the dispatcher.
        assert series_value(snapshot, "server_requests_total", op="ping") >= 1
        assert series_value(snapshot, "server_requests_total", op="metrics") >= 1
        assert series_value(snapshot, "server_op_seconds", op="ping") >= 1

    def test_prometheus_format(self, client):
        payload = client.metrics(format="prometheus")
        text = payload["prometheus"]
        assert "# TYPE server_requests_total counter" in text
        assert 'server_requests_total{op="hello"}' in text

    def test_unknown_format_rejected(self, client):
        with pytest.raises(RemoteError, match="format"):
            client.metrics(format="xml")

    def test_server_stats_surface_the_registry(self, client):
        from repro.telemetry.metrics import series_value

        dataset = well_separated_dataset()
        client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        stats = client.server_stats()
        assert "metrics" in stats
        assert (
            series_value(stats["metrics"], "server_requests_total", op="certify_stream")
            >= 1
        )

    def test_uptime_is_monotonic_and_nonnegative(self, client):
        first = client.ping()["uptime_seconds"]
        second = client.ping()["uptime_seconds"]
        assert 0 <= first <= second


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, tmp_path):
        server = CertificationServer(tmp_path / "s2")
        server.start()
        wait_for_server(server.socket_path, timeout=30)
        with CertificationClient(server.socket_path) as client:
            assert client.shutdown()["stopping"] is True
        server.close()
        assert not server.socket_path.exists()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        path = tmp_path / "s3"
        path.touch()  # a dead socket (nothing listening)
        server = CertificationServer(path)
        with server:
            wait_for_server(path, timeout=30)

    def test_live_socket_is_not_stolen(self, tmp_path):
        first = CertificationServer(tmp_path / "s4")
        with first:
            wait_for_server(first.socket_path, timeout=30)
            with pytest.raises(RuntimeError, match="already listening"):
                CertificationServer(tmp_path / "s4").start()

    def test_wait_for_server_times_out(self, tmp_path):
        with pytest.raises(TimeoutError, match="no certification server"):
            wait_for_server(tmp_path / "nothing", timeout=0.3, interval=0.05)


class TestRequestCorrelation:
    """Protocol minor 1: the rid frame field and the trace op."""

    def test_hello_reports_the_protocol_minor(self, client):
        from repro.service.protocol import PROTOCOL_MINOR

        assert client.server_info["protocol_minor"] == PROTOCOL_MINOR

    def test_bound_request_id_travels_in_frames(self, client, tmp_path):
        import json as json_module

        from repro.telemetry import events

        log = tmp_path / "events.jsonl"
        events._reset_for_tests()
        events.configure(str(log))
        try:
            with events.bind_request("0123456789abcdef"):
                client.ping()
        finally:
            events.configure(None)
            events._reset_for_tests()
        records = [
            json_module.loads(line) for line in log.read_text().splitlines()
        ]
        by_event = {record["event"]: record for record in records}
        # Client-side timing event and server-side dispatch event both carry
        # the id the client minted — the cross-process correlation contract.
        assert by_event["client.request"]["rid"] == "0123456789abcdef"
        assert by_event["server.dispatch"]["rid"] == "0123456789abcdef"
        assert by_event["server.dispatch"]["op"] == "ping"
        assert by_event["server.dispatch"]["outcome"] == "ok"

    def test_unbound_requests_carry_no_rid(self, client, tmp_path):
        import json as json_module

        from repro.telemetry import events

        log = tmp_path / "events.jsonl"
        events._reset_for_tests()
        events.configure(str(log))
        try:
            client.ping()
        finally:
            events.configure(None)
            events._reset_for_tests()
        records = [
            json_module.loads(line) for line in log.read_text().splitlines()
        ]
        assert records
        assert all("rid" not in record for record in records)

    def test_trace_op_fetches_the_span_tree_by_request_id(self, client):
        from repro.telemetry import events, tracing

        tracing.enable_spans(True)
        try:
            with events.bind_request("feedfacefeedface"):
                client.certify_batch(
                    well_separated_dataset(), POINTS, RemovalPoisoningModel(1)
                )
            payload = client.trace("feedfacefeedface")
        finally:
            tracing.enable_spans(False)
        assert payload["request_id"] == "feedfacefeedface"
        tree = payload["trace"]
        assert tree["request_id"] == "feedfacefeedface"
        assert tree["duration_seconds"] >= 0
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node.get("children", ()):
                collect(child)

        collect(tree)
        assert "server.certify" in names

    def test_trace_without_tracing_enabled_reports_a_hint(self, client):
        with pytest.raises(RemoteError, match="--trace"):
            client.trace("0000000000000000")

    def test_trace_requires_a_request_id(self, client):
        with pytest.raises(RemoteError, match="request_id"):
            client.trace("")
