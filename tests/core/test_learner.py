"""Tests for the CART-style full-tree learner."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.learner import DecisionTreeLearner, evaluate_accuracy
from repro.core.predicates import ThresholdPredicate
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset


class TestDecisionTreeLearner:
    def test_figure2_depth1_tree(self):
        tree = DecisionTreeLearner(max_depth=1).fit(figure2_dataset())
        assert tree.depth() == 1
        assert isinstance(tree.root.predicate, ThresholdPredicate)
        assert tree.root.predicate.threshold == pytest.approx(10.5)
        assert tree.predict([5.0]) == 0
        assert tree.predict([18.0]) == 1

    def test_depth_zero_is_majority_vote(self):
        tree = DecisionTreeLearner(max_depth=0).fit(figure2_dataset())
        assert tree.depth() == 0
        assert tree.predict([5.0]) == 0  # 7 white vs 6 black

    def test_pure_node_stops_early(self):
        X = np.array([[0.0], [1.0], [2.0]])
        dataset = Dataset(X=X, y=np.array([1, 1, 1]), n_classes=2)
        tree = DecisionTreeLearner(max_depth=3).fit(dataset)
        assert tree.depth() == 0

    def test_min_samples_split(self):
        dataset = tiny_boolean_dataset()
        tree = DecisionTreeLearner(max_depth=5, min_samples_split=100).fit(dataset)
        assert tree.depth() == 0

    def test_fixed_predicate_pool(self):
        dataset = figure2_dataset()
        pool = [ThresholdPredicate(0, 4.5)]
        tree = DecisionTreeLearner(max_depth=1, predicate_pool=pool).fit(dataset)
        assert tree.root.predicate == ThresholdPredicate(0, 4.5)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            DecisionTreeLearner(max_depth=1).fit(figure2_dataset().subset([]))

    def test_rejects_bad_impurity(self):
        with pytest.raises(ValueError):
            DecisionTreeLearner(impurity="nope")

    def test_rejects_negative_depth(self):
        with pytest.raises(Exception):
            DecisionTreeLearner(max_depth=-1)

    def test_boolean_dataset_perfectly_separable(self):
        dataset = tiny_boolean_dataset()
        tree = DecisionTreeLearner(max_depth=2).fit(dataset)
        assert evaluate_accuracy(tree, dataset.X, dataset.y) == 1.0

    def test_deeper_trees_do_not_hurt_training_accuracy(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        dataset = Dataset(X=X, y=y)
        accuracies = []
        for depth in (1, 2, 3, 4):
            tree = DecisionTreeLearner(max_depth=depth).fit(dataset)
            accuracies.append(evaluate_accuracy(tree, X, y))
        assert all(b >= a - 1e-9 for a, b in zip(accuracies, accuracies[1:]))


class TestEvaluateAccuracy:
    def test_perfect_and_empty(self):
        dataset = figure2_dataset()
        tree = DecisionTreeLearner(max_depth=4).fit(dataset)
        assert evaluate_accuracy(tree, dataset.X, dataset.y) == 1.0
        assert evaluate_accuracy(tree, np.empty((0, 1)), np.empty(0, dtype=int)) == 0.0
