"""Tests for the decision-tree model and its trace-based view."""

import numpy as np

from repro.core.learner import DecisionTreeLearner
from repro.core.predicates import ThresholdPredicate
from repro.core.tree import DecisionTree, TreeNode
from repro.datasets.toy import figure2_dataset


def hand_built_tree() -> DecisionTree:
    """x0 <= 10.5 ? (mostly white) : (all black), mirroring Figure 2."""
    left = TreeNode(class_counts=np.array([7, 2]))
    right = TreeNode(class_counts=np.array([0, 4]))
    root = TreeNode(
        class_counts=np.array([7, 6]),
        predicate=ThresholdPredicate(0, 10.5),
        left=left,
        right=right,
    )
    return DecisionTree(root=root, n_classes=2, class_names=("white", "black"))


class TestTreeNode:
    def test_leaf_probabilities(self):
        node = TreeNode(class_counts=np.array([7, 2]))
        assert node.is_leaf
        assert np.allclose(node.class_probabilities(), [7 / 9, 2 / 9])
        assert node.prediction() == 0

    def test_empty_leaf_uniform(self):
        node = TreeNode(class_counts=np.array([0, 0]))
        assert np.allclose(node.class_probabilities(), [0.5, 0.5])


class TestDecisionTree:
    def test_predict_both_branches(self):
        tree = hand_built_tree()
        assert tree.predict([5.0]) == 0
        assert tree.predict([18.0]) == 1

    def test_predict_proba(self):
        tree = hand_built_tree()
        assert np.allclose(tree.predict_proba([5.0]), [7 / 9, 2 / 9])

    def test_predict_batch(self):
        tree = hand_built_tree()
        assert tree.predict_batch(np.array([[5.0], [18.0]])).tolist() == [0, 1]

    def test_trace_for_matches_prediction(self):
        tree = hand_built_tree()
        trace = tree.trace_for([18.0])
        assert trace.prediction == 1
        assert trace.depth == 1
        assert trace.decisions[0][1] is False
        assert trace.accepts([18.0])
        assert not trace.accepts([5.0])

    def test_traces_cover_input_space(self):
        # Example 3.3: the Figure 2 tree has exactly two traces.
        tree = hand_built_tree()
        traces = tree.traces()
        assert len(traces) == 2
        predictions = {trace.prediction for trace in traces}
        assert predictions == {0, 1}

    def test_well_formedness_exactly_one_trace_per_input(self):
        tree = DecisionTreeLearner(max_depth=3).fit(figure2_dataset())
        for value in np.linspace(-2.0, 16.0, 37):
            accepting = [t for t in tree.traces() if t.accepts([value])]
            assert len(accepting) == 1

    def test_statistics(self):
        tree = hand_built_tree()
        assert tree.depth() == 1
        assert tree.n_nodes() == 3
        assert tree.n_leaves() == 2

    def test_to_text_renders_predicates_and_leaves(self):
        text = hand_built_tree().to_text()
        assert "x0 <= 10.5" in text
        assert "white" in text and "black" in text

    def test_trace_describe(self):
        tree = hand_built_tree()
        description = tree.trace_for([18.0]).describe()
        assert "not(" in description


class TestLearnedTreeConsistency:
    def test_leaf_counts_partition_dataset(self):
        dataset = figure2_dataset()
        tree = DecisionTreeLearner(max_depth=2).fit(dataset)
        total = sum(sum(trace.class_probabilities) * 0 + 1 for trace in tree.traces())
        assert total == tree.n_leaves()
        # Summing leaf sample counts recovers the dataset size.
        leaf_total = 0

        def collect(node: TreeNode) -> None:
            nonlocal leaf_total
            if node.is_leaf:
                leaf_total += node.n_samples
            else:
                collect(node.left)
                collect(node.right)

        collect(tree.root)
        assert leaf_total == len(dataset)

    def test_depth_respects_limit(self):
        dataset = figure2_dataset()
        for depth in (1, 2, 3):
            tree = DecisionTreeLearner(max_depth=depth).fit(dataset)
            assert tree.depth() <= depth
