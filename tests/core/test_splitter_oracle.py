"""Property test pinning the concrete split-score kernel to its scalar oracle.

`_score_table` scores every candidate of a :class:`FeatureSplitTable` with
vectorized gini arithmetic; `_score_table_reference` is the loop-per-candidate
mirror built directly on :func:`repro.core.impurity.split_score`.  Both are
registered in the soundness-boundary kernel registry
(:mod:`repro.analysis.rules.soundness`), which requires this module to
exercise the pair.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.splitter import (
    _score_table,
    _score_table_reference,
    feature_split_table,
)

TOL = 1e-9


@st.composite
def labelled_columns(draw, max_rows: int = 12, max_classes: int = 3):
    """A random single-feature dataset: one value column plus labels."""
    n_rows = draw(st.integers(min_value=2, max_value=max_rows))
    n_classes = draw(st.integers(min_value=2, max_value=max_classes))
    values = [draw(st.integers(min_value=0, max_value=4)) for _ in range(n_rows)]
    labels = [
        draw(st.integers(min_value=0, max_value=n_classes - 1)) for _ in range(n_rows)
    ]
    X = np.asarray(values, dtype=float).reshape(-1, 1)
    y = np.asarray(labels, dtype=np.int64)
    return X, y, n_classes


@settings(max_examples=120, deadline=None)
@given(labelled_columns(), st.sampled_from(["gini", "entropy"]))
def test_score_table_matches_scalar_oracle(column, impurity):
    X, y, n_classes = column
    table = feature_split_table(X, y, feature=0, n_classes=n_classes)
    vectorized = _score_table(table, impurity)
    reference = _score_table_reference(table, impurity)
    assert vectorized.shape == reference.shape
    np.testing.assert_allclose(vectorized, reference, atol=TOL, rtol=0.0)


def test_empty_table_scores_empty():
    X = np.zeros((3, 1))  # constant feature: no candidates
    y = np.asarray([0, 1, 0], dtype=np.int64)
    table = feature_split_table(X, y, feature=0, n_classes=2)
    assert table.n_candidates == 0
    assert _score_table(table, "gini").shape == (0,)
    assert _score_table_reference(table, "gini").shape == (0,)
