"""End-to-end checks of the worked example in §2 / §3 / §4 of the paper.

These tests pin the concrete numbers the paper derives for the Figure 2
dataset: the best split, its score, the classification probabilities, the
naïve enumeration count, and the abstract class-probability intervals under
2-poisoning.
"""

import pytest

from repro.core.splitter import best_split
from repro.core.trace_learner import learn_trace
from repro.datasets.toy import BLACK, WHITE, figure2_dataset
from repro.domains.trainingset import AbstractTrainingSet
from repro.verify.enumeration import count_poisoned_datasets, verify_by_enumeration
from repro.verify.transformers import cprob_box, cprob_optimal


@pytest.fixture
def dataset():
    return figure2_dataset()


class TestFigure2Dataset:
    def test_composition(self, dataset):
        assert len(dataset) == 13
        counts = dataset.class_counts()
        assert counts[WHITE] == 7 and counts[BLACK] == 6

    def test_best_split_is_x_leq_10(self, dataset):
        choice = best_split(dataset)
        assert choice.predicate.threshold == pytest.approx(10.5)
        # Example 3.4: |T↓φ| = 9, |T↓¬φ| = 4, score ≈ 3.1.
        assert choice.left_size == 9 and choice.right_size == 4
        assert choice.score == pytest.approx(3.11, abs=0.01)

    def test_left_branch_probability(self, dataset):
        # "White with probability 7/9" on the left branch.
        result = learn_trace(dataset, [5.0], max_depth=1)
        assert result.class_probabilities[WHITE] == pytest.approx(7 / 9)

    def test_right_branch_probability(self, dataset):
        # "Black with probability 1" on the right branch.
        result = learn_trace(dataset, [18.0], max_depth=1)
        assert result.class_probabilities[BLACK] == pytest.approx(1.0)


class TestNaiveEnumeration:
    def test_92_datasets_for_two_removals(self, dataset):
        # §2: C(13,2) + C(13,1) + 1 = 92 datasets to enumerate.
        assert count_poisoned_datasets(13, 2) == 92
        result = verify_by_enumeration(dataset, [5.0], 2, max_depth=1)
        assert result.datasets_checked == 92
        assert result.robust

    def test_larger_counts_match_formula(self):
        # §4.1: |Δn(T)| = Σ_{i<=n} C(|T|, i).
        assert count_poisoned_datasets(5, 5) == 2**5


class TestAbstractIntervalsOfExample46(object):
    def test_box_cprob_matches_paper(self, dataset):
        # Example 4.6: cprob#(⟨T_left, 2⟩) = ⟨[5/9, 1], [0, 2/7]⟩ with the
        # naïve (box) transformer.
        left_indices = [i for i, value in enumerate(dataset.X[:, 0]) if value <= 10]
        trainset = AbstractTrainingSet.from_indices(dataset, left_indices, 2)
        intervals = cprob_box(trainset)
        assert intervals[WHITE].lo == pytest.approx(5 / 9)
        assert intervals[WHITE].hi == pytest.approx(1.0)
        assert intervals[BLACK].lo == pytest.approx(0.0)
        assert intervals[BLACK].hi == pytest.approx(2 / 7)

    def test_optimal_cprob_is_tighter(self, dataset):
        # The optimal transformer recovers the true worst case 5/7 ≈ 0.71
        # mentioned in §2 ("the probability will be [0.71, 1]").
        left_indices = [i for i, value in enumerate(dataset.X[:, 0]) if value <= 10]
        trainset = AbstractTrainingSet.from_indices(dataset, left_indices, 2)
        intervals = cprob_optimal(trainset)
        assert intervals[WHITE].lo == pytest.approx(5 / 7)
        assert intervals[WHITE].hi == pytest.approx(1.0)
        assert intervals[BLACK].hi == pytest.approx(2 / 7)
