"""Tests for the predicate language, including symbolic three-valued predicates."""

import numpy as np
import pytest

from repro.core.predicates import (
    EqualityPredicate,
    SymbolicThresholdPredicate,
    ThresholdPredicate,
    Trilean,
    point_satisfies,
)


class TestThresholdPredicate:
    def test_point_evaluation(self):
        predicate = ThresholdPredicate(feature=0, threshold=2.0)
        assert predicate.evaluate([1.5])
        assert predicate.evaluate([2.0])
        assert not predicate.evaluate([2.5])

    def test_matrix_evaluation(self):
        predicate = ThresholdPredicate(feature=1, threshold=0.5)
        X = np.array([[9.0, 0.0], [9.0, 1.0]])
        assert predicate.evaluate_matrix(X).tolist() == [True, False]

    def test_describe_uses_feature_names(self):
        predicate = ThresholdPredicate(feature=0, threshold=3.0)
        assert predicate.describe(["age"]) == "age <= 3"

    def test_ordering_and_equality(self):
        assert ThresholdPredicate(0, 1.0) == ThresholdPredicate(0, 1.0)
        assert ThresholdPredicate(0, 1.0) < ThresholdPredicate(1, 0.0)


class TestEqualityPredicate:
    def test_point_and_matrix(self):
        predicate = EqualityPredicate(feature=0, value=2.0)
        assert predicate.evaluate([2.0])
        assert not predicate.evaluate([3.0])
        assert predicate.evaluate_matrix(np.array([[2.0], [3.0]])).tolist() == [True, False]

    def test_describe(self):
        assert EqualityPredicate(1, 4.0).describe() == "x1 == 4"


class TestSymbolicThresholdPredicate:
    def test_three_valued_evaluation(self):
        predicate = SymbolicThresholdPredicate(feature=0, low=1.0, high=3.0)
        assert predicate.evaluate_trilean([0.5]) is Trilean.TRUE
        assert predicate.evaluate_trilean([1.0]) is Trilean.TRUE
        assert predicate.evaluate_trilean([2.0]) is Trilean.MAYBE
        assert predicate.evaluate_trilean([3.0]) is Trilean.FALSE

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            SymbolicThresholdPredicate(feature=0, low=2.0, high=2.0)

    def test_contains_threshold_half_open(self):
        predicate = SymbolicThresholdPredicate(0, 1.0, 3.0)
        assert predicate.contains_threshold(1.0)
        assert predicate.contains_threshold(2.9)
        assert not predicate.contains_threshold(3.0)

    def test_concrete_representative_is_member(self):
        predicate = SymbolicThresholdPredicate(0, 1.0, 3.0)
        representative = predicate.concrete_representative()
        assert predicate.contains_threshold(representative.threshold)

    def test_matrix_evaluation_uses_low_bound(self):
        predicate = SymbolicThresholdPredicate(0, 1.0, 3.0)
        assert predicate.evaluate_matrix(np.array([[0.5], [2.0]])).tolist() == [True, False]

    def test_describe(self):
        assert "[1, 3)" in SymbolicThresholdPredicate(0, 1.0, 3.0).describe()


class TestTrilean:
    def test_flags(self):
        assert Trilean.TRUE.definitely_true
        assert Trilean.FALSE.definitely_false
        assert Trilean.MAYBE.possibly_true and Trilean.MAYBE.possibly_false
        assert not Trilean.TRUE.possibly_false
        assert not Trilean.FALSE.possibly_true


class TestPointSatisfies:
    def test_concrete_predicates_never_maybe(self):
        assert point_satisfies(ThresholdPredicate(0, 1.0), [0.5]) is Trilean.TRUE
        assert point_satisfies(ThresholdPredicate(0, 1.0), [2.5]) is Trilean.FALSE

    def test_symbolic_predicate_can_be_maybe(self):
        predicate = SymbolicThresholdPredicate(0, 1.0, 3.0)
        assert point_satisfies(predicate, [2.0]) is Trilean.MAYBE
