"""Tests for candidate enumeration and the concrete bestSplit criterion."""

import numpy as np
import pytest

from repro.core.dataset import Dataset, FeatureKind
from repro.core.predicates import EqualityPredicate, ThresholdPredicate
from repro.core.splitter import (
    best_split,
    candidate_predicates,
    feature_split_table,
)
from repro.datasets.toy import figure2_dataset


class TestFeatureSplitTable:
    def test_candidates_between_adjacent_values(self):
        X = np.array([[1.0], [3.0], [3.0], [7.0]])
        y = np.array([0, 0, 1, 1])
        table = feature_split_table(X, y, 0, 2)
        assert table.thresholds.tolist() == [2.0, 5.0]
        assert table.lower_values.tolist() == [1.0, 3.0]
        assert table.upper_values.tolist() == [3.0, 7.0]
        assert table.left_sizes.tolist() == [1, 3]

    def test_left_class_counts(self):
        X = np.array([[1.0], [3.0], [3.0], [7.0]])
        y = np.array([0, 0, 1, 1])
        table = feature_split_table(X, y, 0, 2)
        assert table.left_class_counts.tolist() == [[1, 0], [2, 1]]
        assert table.right_class_counts.tolist() == [[1, 2], [0, 1]]

    def test_constant_feature_has_no_candidates(self):
        X = np.array([[2.0], [2.0], [2.0]])
        y = np.array([0, 1, 0])
        assert feature_split_table(X, y, 0, 2).n_candidates == 0

    def test_single_row(self):
        assert feature_split_table(np.array([[1.0]]), np.array([0]), 0, 2).n_candidates == 0

    def test_paper_candidate_thresholds(self):
        # Example 5.1: the Figure 2 dataset induces thresholds at
        # {0.5, 1.5, 2.5, 3.5, 5.5, 7.5, ..., 13.5}.
        dataset = figure2_dataset()
        table = feature_split_table(dataset.X, dataset.y, 0, 2)
        expected = [0.5, 1.5, 2.5, 3.5, 5.5, 7.5, 8.5, 9.5, 10.5, 11.5, 12.5, 13.5]
        assert table.thresholds.tolist() == expected


class TestCandidatePredicates:
    def test_boolean_feature_yields_single_predicate(self):
        X = np.array([[0.0], [1.0], [1.0]])
        dataset = Dataset(X=X, y=np.array([0, 1, 1]), feature_kinds=(FeatureKind.BOOLEAN,))
        predicates = candidate_predicates(dataset)
        assert predicates == [ThresholdPredicate(0, 0.5)]

    def test_categorical_feature_yields_equality_predicates(self):
        X = np.array([[1.0], [2.0], [3.0]])
        dataset = Dataset(
            X=X, y=np.array([0, 1, 1]), feature_kinds=(FeatureKind.CATEGORICAL,)
        )
        predicates = candidate_predicates(dataset)
        assert EqualityPredicate(0, 1.0) in predicates
        assert len(predicates) == 3

    def test_constant_categorical_skipped(self):
        X = np.array([[1.0], [1.0]])
        dataset = Dataset(
            X=X, y=np.array([0, 1]), feature_kinds=(FeatureKind.CATEGORICAL,)
        )
        assert candidate_predicates(dataset) == []


class TestBestSplit:
    def test_figure2_best_split_is_x_leq_10(self):
        dataset = figure2_dataset()
        choice = best_split(dataset)
        assert isinstance(choice.predicate, ThresholdPredicate)
        assert choice.predicate.threshold == pytest.approx(10.5)
        assert choice.score == pytest.approx(3.111, abs=1e-2)
        assert choice.left_size == 9 and choice.right_size == 4

    def test_empty_dataset_returns_none(self):
        dataset = figure2_dataset().subset([])
        assert best_split(dataset) is None

    def test_constant_features_return_none(self):
        X = np.ones((4, 2))
        dataset = Dataset(X=X, y=np.array([0, 1, 0, 1]))
        assert best_split(dataset) is None

    def test_pool_based_split(self):
        dataset = figure2_dataset()
        pool = [ThresholdPredicate(0, 10.5), ThresholdPredicate(0, 4.0)]
        choice = best_split(dataset, predicate_pool=pool)
        assert choice.predicate == ThresholdPredicate(0, 10.5)

    def test_pool_with_only_trivial_predicates(self):
        dataset = figure2_dataset()
        pool = [ThresholdPredicate(0, 100.0)]
        assert best_split(dataset, predicate_pool=pool) is None

    def test_multi_feature_selects_most_informative(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=20)
        informative = np.array([0.0] * 10 + [5.0] * 10)
        X = np.column_stack([noise, informative])
        y = np.array([0] * 10 + [1] * 10)
        choice = best_split(Dataset(X=X, y=y))
        assert choice.predicate.feature == 1
        assert choice.score == pytest.approx(0.0)

    def test_categorical_best_split(self):
        X = np.array([[1.0], [1.0], [2.0], [3.0]])
        dataset = Dataset(
            X=X, y=np.array([0, 0, 1, 1]), feature_kinds=(FeatureKind.CATEGORICAL,)
        )
        choice = best_split(dataset)
        assert isinstance(choice.predicate, EqualityPredicate)
        assert choice.predicate.value == 1.0
        assert choice.score == pytest.approx(0.0)

    def test_entropy_impurity_also_works(self):
        dataset = figure2_dataset()
        choice = best_split(dataset, impurity="entropy")
        assert choice.predicate.threshold == pytest.approx(10.5)
