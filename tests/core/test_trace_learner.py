"""Tests for the trace-based learner DTrace, including its equivalence to CART."""

import numpy as np
import pytest

from repro.core.learner import DecisionTreeLearner
from repro.core.predicates import ThresholdPredicate
from repro.core.trace_learner import TraceLearner, learn_trace
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset
from tests.conftest import random_small_dataset, random_test_point


class TestTraceLearnerBasics:
    def test_figure2_left_trace(self):
        result = learn_trace(figure2_dataset(), [5.0], max_depth=1)
        assert result.prediction == 0
        assert result.class_probabilities == pytest.approx((7 / 9, 2 / 9))
        assert result.depth == 1
        assert result.decisions[0][0] == ThresholdPredicate(0, 10.5)
        assert result.decisions[0][1] is True

    def test_figure2_right_trace_example_3_5(self):
        # Example 3.5: DTrace(T, 18) follows [x > 10] and classifies black.
        result = learn_trace(figure2_dataset(), [18.0], max_depth=1)
        assert result.prediction == 1
        assert result.class_probabilities == pytest.approx((0.0, 1.0))
        assert result.decisions[0][1] is False
        assert result.stopped_reason in ("depth", "pure")

    def test_pure_subset_stops_early(self):
        result = learn_trace(figure2_dataset(), [18.0], max_depth=4)
        # After the first split the right branch is pure, so the trace stops.
        assert result.depth == 1
        assert result.stopped_reason == "pure"

    def test_no_split_stops(self):
        dataset = figure2_dataset().subset([0, 1])  # values 0 (black), 1 (white)
        result = learn_trace(dataset, [0.0], max_depth=3)
        assert result.depth == 1
        # After filtering to a single element the subset is pure.
        assert result.stopped_reason == "pure"

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            learn_trace(figure2_dataset().subset([]), [1.0])

    def test_predict_shorthand(self):
        learner = TraceLearner(max_depth=1)
        assert learner.predict(figure2_dataset(), [18.0]) == 1

    def test_invalid_impurity(self):
        with pytest.raises(ValueError):
            TraceLearner(impurity="nope")


class TestTraceCartEquivalence:
    """DTrace(T, x) must classify x exactly like the full tree built on T."""

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_figure2_equivalence(self, depth):
        dataset = figure2_dataset()
        tree = DecisionTreeLearner(max_depth=depth).fit(dataset)
        learner = TraceLearner(max_depth=depth)
        for value in np.linspace(-1.0, 16.0, 35):
            assert learner.predict(dataset, [value]) == tree.predict([value])

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_boolean_equivalence(self, depth):
        dataset = tiny_boolean_dataset()
        tree = DecisionTreeLearner(max_depth=depth).fit(dataset)
        learner = TraceLearner(max_depth=depth)
        for x0 in (0.0, 1.0):
            for x1 in (0.0, 1.0):
                assert learner.predict(dataset, [x0, x1]) == tree.predict([x0, x1])

    @pytest.mark.parametrize("seed", range(12))
    def test_random_datasets_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_small_dataset(rng)
        depth = int(rng.integers(1, 4))
        tree = DecisionTreeLearner(max_depth=depth).fit(dataset)
        learner = TraceLearner(max_depth=depth)
        for _ in range(5):
            x = random_test_point(rng, dataset)
            assert learner.predict(dataset, x) == tree.predict(x)

    def test_trace_matches_tree_trace_predicates(self):
        dataset = figure2_dataset()
        tree = DecisionTreeLearner(max_depth=2).fit(dataset)
        learner = TraceLearner(max_depth=2)
        x = [3.0]
        tree_trace = tree.trace_for(x)
        dtrace_result = learner.run(dataset, x)
        assert [p for p, _ in tree_trace.decisions] == [
            p for p, _ in dtrace_result.decisions
        ]
        assert tree_trace.prediction == dtrace_result.prediction
