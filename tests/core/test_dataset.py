"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.core.dataset import Dataset, FeatureKind
from repro.utils.validation import ValidationError


def small_dataset() -> Dataset:
    X = np.array([[0.0, 1.0], [1.0, 3.0], [0.0, 5.0], [1.0, 7.0]])
    y = np.array([0, 1, 0, 1])
    return Dataset(X=X, y=y)


class TestConstruction:
    def test_basic_properties(self):
        dataset = small_dataset()
        assert len(dataset) == 4
        assert dataset.n_features == 2
        assert dataset.n_classes == 2
        assert not dataset.is_empty

    def test_defaults_names_and_kinds(self):
        dataset = small_dataset()
        assert dataset.feature_names == ("x0", "x1")
        assert dataset.class_names == ("class_0", "class_1")
        assert all(kind is FeatureKind.REAL for kind in dataset.feature_kinds)

    def test_arrays_are_read_only(self):
        dataset = small_dataset()
        with pytest.raises(ValueError):
            dataset.X[0, 0] = 99.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.zeros((3, 2)), y=np.zeros(4, dtype=int))

    def test_rejects_bad_labels(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.zeros((2, 1)), y=np.array([0, 5]), n_classes=2)

    def test_rejects_1d_features(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.zeros(3), y=np.zeros(3, dtype=int))

    def test_rejects_wrong_kind_count(self):
        with pytest.raises(ValidationError):
            Dataset(
                X=np.zeros((2, 2)),
                y=np.array([0, 1]),
                feature_kinds=(FeatureKind.REAL,),
            )


class TestStatistics:
    def test_class_counts(self):
        dataset = small_dataset()
        assert dataset.class_counts().tolist() == [2, 2]

    def test_class_probabilities(self):
        dataset = small_dataset()
        assert np.allclose(dataset.class_probabilities(), [0.5, 0.5])

    def test_majority_class_tie_breaks_low(self):
        dataset = small_dataset()
        assert dataset.majority_class() == 0

    def test_feature_values_sorted_unique(self):
        dataset = small_dataset()
        assert dataset.feature_values(0).tolist() == [0.0, 1.0]
        assert dataset.feature_values(1).tolist() == [1.0, 3.0, 5.0, 7.0]

    def test_empty_probabilities_uniform(self):
        dataset = small_dataset().subset([])
        assert np.allclose(dataset.class_probabilities(), [0.5, 0.5])


class TestSubsetting:
    def test_subset_by_indices(self):
        subset = small_dataset().subset([0, 2])
        assert len(subset) == 2
        assert subset.y.tolist() == [0, 0]

    def test_subset_mask(self):
        dataset = small_dataset()
        subset = dataset.subset_mask(dataset.X[:, 0] == 1.0)
        assert subset.y.tolist() == [1, 1]

    def test_subset_mask_wrong_shape(self):
        with pytest.raises(ValidationError):
            small_dataset().subset_mask(np.ones(3, dtype=bool))

    def test_remove(self):
        reduced = small_dataset().remove([1, 3])
        assert reduced.y.tolist() == [0, 0]

    def test_append(self):
        extended = small_dataset().append(np.array([0.5, 0.5]), np.array([1]))
        assert len(extended) == 5
        assert extended.y[-1] == 1

    def test_append_wrong_width(self):
        with pytest.raises(ValidationError):
            small_dataset().append(np.zeros((1, 3)), np.array([0]))


class TestFactoriesAndReplace:
    def test_from_arrays_infers_boolean(self):
        X = np.array([[0.0, 2.5], [1.0, 3.5]])
        dataset = Dataset.from_arrays(X, [0, 1])
        assert dataset.feature_kinds[0] is FeatureKind.BOOLEAN
        assert dataset.feature_kinds[1] is FeatureKind.REAL

    def test_replace_name(self):
        dataset = small_dataset().replace(name="renamed")
        assert dataset.name == "renamed"

    def test_summary_mentions_size(self):
        assert "4 samples" in small_dataset().summary()
