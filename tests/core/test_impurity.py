"""Tests for Gini impurity, entropy, and the split-score function."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.impurity import (
    class_probabilities,
    gini_from_labels,
    gini_impurity,
    shannon_entropy,
    split_score,
)


class TestClassProbabilities:
    def test_simple_counts(self):
        assert np.allclose(class_probabilities([7, 2]), [7 / 9, 2 / 9])

    def test_empty_counts_uniform(self):
        assert np.allclose(class_probabilities([0, 0]), [0.5, 0.5])


class TestGini:
    def test_pure_set_is_zero(self):
        assert gini_impurity([5, 0]) == 0.0
        assert gini_impurity([0, 0, 9]) == 0.0

    def test_balanced_binary_is_half(self):
        assert gini_impurity([5, 5]) == pytest.approx(0.5)

    def test_paper_example_value(self):
        # Figure 2 left branch: 7 white, 2 black -> ent ≈ 0.35 (Example 3.4).
        assert gini_impurity([7, 2]) == pytest.approx(0.3457, abs=1e-3)

    def test_empty_is_zero(self):
        assert gini_impurity([]) == 0.0
        assert gini_impurity([0]) == 0.0

    def test_from_labels(self):
        assert gini_from_labels([0, 0, 1, 1], 2) == pytest.approx(0.5)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=5).filter(
            lambda counts: sum(counts) > 0
        )
    )
    def test_bounds(self, counts):
        value = gini_impurity(counts)
        k = len(counts)
        assert 0.0 <= value <= 1.0 - 1.0 / k + 1e-9


class TestEntropy:
    def test_pure_set_is_zero(self):
        assert shannon_entropy([4, 0]) == 0.0

    def test_balanced_binary_is_one_bit(self):
        assert shannon_entropy([8, 8]) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert shannon_entropy([]) == 0.0


class TestSplitScore:
    def test_paper_example_score(self):
        # Example 3.4: score of x <= 10 on the Figure 2 dataset is ~3.1.
        left = [7, 2]
        right = [0, 4]
        assert split_score(left, right) == pytest.approx(3.111, abs=1e-2)

    def test_worse_split_has_higher_score(self):
        good = split_score([7, 2], [0, 4])
        worse = split_score([7, 3], [0, 3])
        assert worse > good

    def test_entropy_variant(self):
        assert split_score([2, 2], [4, 0], impurity="entropy") == pytest.approx(4.0)

    def test_unknown_impurity_rejected(self):
        with pytest.raises(ValueError):
            split_score([1, 1], [1, 1], impurity="nope")

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=3),
        st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=3),
    )
    def test_non_negative(self, left, right):
        if len(left) != len(right):
            left = left[: min(len(left), len(right))]
            right = right[: len(left)]
        assert split_score(left, right) >= 0.0
