"""Tests for the process-wide metrics registry (counters/gauges/histograms)."""

import json
import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    series_value,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5.0
        assert counter.total() == 5.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("lookups_total", "Lookups.", ("result",))
        counter.labels(result="hit").inc(3)
        counter.labels(result="miss").inc()
        assert counter.value(result="hit") == 3.0
        assert counter.value(result="miss") == 1.0
        assert counter.total() == 4.0

    def test_inc_with_inline_labels(self, registry):
        counter = registry.counter("ops_total", "Ops.", ("op",))
        counter.inc(op="ping")
        counter.inc(2, op="ping")
        assert counter.value(op="ping") == 3.0

    def test_wrong_labelnames_rejected(self, registry):
        counter = registry.counter("lookups_total", "Lookups.", ("result",))
        with pytest.raises(ValueError):
            counter.labels(outcome="hit")

    def test_unlabeled_family_snapshot_shows_zero(self, registry):
        # Unlabeled families eagerly create their one series so a fresh
        # registry still exposes them as 0 (CI asserts "zero invocations").
        registry.counter("invocations_total", "Invocations.")
        snap = registry.snapshot()
        assert series_value(snap, "invocations_total") == 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("active", "Active things.")
        gauge.set(7)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value() == 6.0


class TestHistogram:
    def test_observe_counts_and_sums(self, registry):
        hist = registry.histogram("seconds", "Durations.")
        hist.observe(0.002)
        hist.observe(30.0)
        snap = registry.snapshot()["seconds"]
        (series,) = snap["series"]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(30.002)

    def test_buckets_are_cumulative_with_inf(self, registry):
        hist = registry.histogram("seconds", "Durations.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        (series,) = registry.snapshot()["seconds"]["series"]
        assert series["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}

    def test_labeled_histogram_bound_child(self, registry):
        hist = registry.histogram("op_seconds", "Per-op.", ("op",))
        bound = hist.labels(op="stats")
        bound.observe(0.01)
        bound.observe(0.02)
        assert series_value(registry.snapshot(), "op_seconds", op="stats") == 2

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        first = registry.counter("x_total", "X.")
        second = registry.counter("x_total", "X.")
        assert first is second

    def test_type_mismatch_rejected(self, registry):
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X.")

    def test_labelnames_mismatch_rejected(self, registry):
        registry.counter("x_total", "X.", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", ("b",))

    def test_disabled_registry_is_noop(self, registry):
        counter = registry.counter("x_total", "X.")
        registry.set_enabled(False)
        counter.inc(10)
        registry.set_enabled(True)
        assert counter.value() == 0.0

    def test_reset_clears_series_keeps_registrations(self, registry):
        counter = registry.counter("x_total", "X.", ("k",))
        counter.inc(k="v")
        registry.reset()
        assert counter.total() == 0.0
        assert registry.counter("x_total", "X.", ("k",)) is counter

    def test_snapshot_json_round_trips(self, registry):
        registry.counter("x_total", "X.").inc(2)
        payload = json.loads(registry.snapshot_json())
        assert series_value(payload, "x_total") == 2.0

    def test_prometheus_exposition(self, registry):
        counter = registry.counter("lookups_total", "Cache lookups.", ("result",))
        counter.inc(3, result="hit")
        hist = registry.histogram("dur_seconds", "Durations.", buckets=(1.0,))
        hist.observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP lookups_total Cache lookups." in text
        assert "# TYPE lookups_total counter" in text
        assert 'lookups_total{result="hit"} 3' in text
        assert "# TYPE dur_seconds histogram" in text
        assert 'dur_seconds_bucket{le="1.0"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 0.5" in text
        assert "dur_seconds_count 1" in text

    def test_prometheus_escapes_label_values(self, registry):
        # The exposition format requires backslash, quote, and newline
        # escapes inside label values — in that order, so the backslash
        # introduced by escaping a quote is not itself re-escaped.
        counter = registry.counter("paths_total", "Paths.", ("path",))
        counter.inc(path='a\\b"c\nd')
        text = registry.to_prometheus()
        assert 'paths_total{path="a\\\\b\\"c\\nd"} 1' in text
        # Each sample still occupies exactly one physical line.
        sample_lines = [l for l in text.splitlines() if l.startswith("paths_total{")]
        assert len(sample_lines) == 1

    def test_prometheus_escapes_each_character_independently(self, registry):
        cases = {
            "back\\slash": 'back\\\\slash',
            'quo"te': 'quo\\"te',
            "new\nline": "new\\nline",
        }
        counter = registry.counter("vals_total", "Vals.", ("v",))
        for raw in cases:
            counter.inc(v=raw)
        text = registry.to_prometheus()
        for escaped in cases.values():
            assert f'vals_total{{v="{escaped}"}} 1' in text

    def test_series_value_missing_returns_zero(self, registry):
        snap = registry.snapshot()
        assert series_value(snap, "never_registered_total") == 0.0

    def test_concurrent_increments_are_not_lost(self, registry):
        counter = registry.counter("hot_total", "Hot.", ("k",))
        bound = counter.labels(k="v")

        def hammer():
            for _ in range(1000):
                bound.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(k="v") == 8000.0
