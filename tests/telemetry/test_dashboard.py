"""Tests for the `repro top` frame renderer and the trace-tree renderer."""

from repro.telemetry.dashboard import render_dashboard, render_trace
from repro.telemetry.metrics import MetricsRegistry


def _activity_snapshot():
    registry = MetricsRegistry()
    requests = registry.counter("server_requests_total", "Requests.", ("op",))
    requests.inc(10, op="certify")
    requests.inc(3, op="hello")
    latency = registry.histogram(
        "server_op_seconds", "Latency.", ("op",), buckets=(0.1, 1.0)
    )
    for _ in range(10):
        latency.observe(0.05, op="certify")
    lookups = registry.counter("cache_lookups_total", "Lookups.", ("result",))
    lookups.inc(6, result="hit")
    lookups.inc(1, result="monotone")
    lookups.inc(3, result="miss")
    registry.counter("learner_invocations_total", "Learner runs.").inc(3)
    tasks = registry.histogram(
        "worker_task_seconds", "Task time.", ("worker",), buckets=(0.1, 1.0)
    )
    tasks.observe(0.05, worker="101")
    tasks.observe(0.2, worker="102")
    registry.gauge("worker_utilization", "Busy.", ("worker",)).set(0.75, worker="101")
    registry.histogram(
        "dispatch_overhead_seconds", "Dispatch.", buckets=(0.01, 0.1)
    ).observe(0.005)
    return registry.snapshot()


class TestRenderDashboard:
    def test_empty_snapshot_renders_placeholder(self):
        frame = render_dashboard({}, source="local")
        assert "repro top — local" in frame
        assert "no activity recorded" in frame

    def test_sections_appear_with_activity(self):
        frame = render_dashboard(_activity_snapshot())
        assert "requests" in frame
        assert "certify" in frame and "hello" in frame
        assert "cache" in frame
        assert "70.0%" in frame  # (6 hits + 1 monotone) / 10 lookups
        assert "certification" in frame
        assert "workers" in frame
        assert "101" in frame and "102" in frame
        assert "75%" in frame
        assert "dispatch overhead" in frame

    def test_rates_come_from_differencing(self):
        snapshot = _activity_snapshot()
        previous = _activity_snapshot()
        for series in previous["server_requests_total"]["series"]:
            if series["labels"]["op"] == "certify":
                series["value"] = 4.0
        frame = render_dashboard(snapshot, previous, interval=2.0)
        assert "3.00/s" in frame  # (10 - 4) / 2s

    def test_no_interval_means_no_rate(self):
        frame = render_dashboard(_activity_snapshot())
        assert "/s" not in frame

    def test_quantiles_land_inside_bucket_bounds(self):
        frame = render_dashboard(_activity_snapshot())
        # 10 certify observations at 50ms in the (0, 100ms] bucket: both
        # quantiles interpolate within it.
        assert "ms" in frame


class TestRenderTrace:
    def test_single_node(self):
        text = render_trace({"name": "server.certify", "duration_seconds": 0.5})
        assert "server.certify" in text
        assert "500.000 ms" in text

    def test_children_are_indented(self):
        tree = {
            "name": "root",
            "duration_seconds": 1.0,
            "children": [
                {
                    "name": "child",
                    "duration_seconds": 0.25,
                    "children": [{"name": "leaf", "duration_seconds": 0.1}],
                }
            ],
        }
        lines = render_trace(tree).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert lines[2].startswith("    leaf")
