"""Integration tests: the engine/runtime/service actually move the metrics."""

import pytest

from repro.api import CertificationEngine, CertificationRequest
from repro.datasets.toy import figure2_dataset
from repro.runtime import CertificationRuntime
from repro.telemetry import metrics, tracing
from repro.telemetry.metrics import series_value


@pytest.fixture
def registry():
    return metrics.get_registry()


def _delta(before, after, name, **labels):
    return series_value(after, name, **labels) - series_value(before, name, **labels)


class TestEngineWiring:
    def test_cold_certify_counts_invocations_and_durations(self, registry):
        engine = CertificationEngine(max_depth=1, domain="box")
        before = registry.snapshot()
        report = engine.verify(
            CertificationRequest(figure2_dataset(), [[5.0], [9.0]], 1)
        )
        after = registry.snapshot()
        assert report.total == 2
        assert _delta(before, after, "learner_invocations_total") == 2
        outcome = report.results[0].status.value
        assert (
            _delta(
                before,
                after,
                "certify_seconds",
                family="removal",
                domain="box",
                outcome=outcome,
            )
            >= 1
        )

    def test_traced_verify_attaches_trace_tree(self, registry):
        engine = CertificationEngine(max_depth=1, domain="box")
        tracing.enable_spans(True)
        try:
            report = engine.verify(
                CertificationRequest(figure2_dataset(), [[5.0]], 1)
            )
        finally:
            tracing.enable_spans(False)
        trace = (report.runtime_stats or {}).get("trace")
        assert trace is not None
        assert trace["name"] == "engine.verify"
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(trace)
        assert "engine.certify_one" in names
        assert "ladder.box" in names

    def test_untraced_verify_attaches_no_trace(self):
        engine = CertificationEngine(max_depth=1, domain="box")
        report = engine.verify(CertificationRequest(figure2_dataset(), [[5.0]], 1))
        assert "trace" not in (report.runtime_stats or {})

    def test_cold_run_records_transformer_phases(self, registry):
        engine = CertificationEngine(max_depth=1, domain="box")
        before = registry.snapshot()
        engine.certify_point(figure2_dataset(), [5.0], 1)
        after = registry.snapshot()
        for phase in ("pure_exit", "best_split", "filter", "split_table"):
            assert (
                _delta(
                    before, after, "learner_phase_seconds", stage="box", phase=phase
                )
                >= 1
            ), phase


class TestRuntimeWiring:
    def test_warm_run_counts_cache_hits(self, registry, tmp_path):
        dataset = figure2_dataset()
        request = CertificationRequest(dataset, [[5.0], [9.0]], 1)

        cold_runtime = CertificationRuntime(tmp_path, shared_memory=False)
        cold_engine = CertificationEngine(
            max_depth=1, domain="box", runtime=cold_runtime
        )
        before_cold = registry.snapshot()
        cold_engine.verify(request)
        after_cold = registry.snapshot()
        assert _delta(before_cold, after_cold, "cache_lookups_total", result="miss") == 2
        assert _delta(before_cold, after_cold, "learner_invocations_total") == 2

        warm_runtime = CertificationRuntime(tmp_path, shared_memory=False)
        warm_engine = CertificationEngine(
            max_depth=1, domain="box", runtime=warm_runtime
        )
        before_warm = registry.snapshot()
        warm_engine.verify(request)
        after_warm = registry.snapshot()
        assert _delta(before_warm, after_warm, "cache_lookups_total", result="hit") == 2
        assert _delta(before_warm, after_warm, "learner_invocations_total") == 0
        # The sqlite histogram saw at least the lookups and the stores.
        assert _delta(before_cold, after_warm, "cache_sqlite_seconds", op="lookup") >= 4
        assert _delta(before_cold, after_cold, "cache_sqlite_seconds", op="store") >= 2


class TestWorkerShipping:
    """Pool workers ship metric deltas home; the parent merges them."""

    def _pooled_report(self, registry, log_path=None):
        from tests.conftest import well_separated_dataset

        engine = CertificationEngine(max_depth=1, domain="box")
        dataset = well_separated_dataset()
        points = [[0.5], [11.0], [5.0], [1.2]]
        before = registry.snapshot()
        report = engine.verify(
            CertificationRequest(dataset, points, 1), n_jobs=2
        )
        return before, registry.snapshot(), report

    def test_pooled_verify_merges_worker_series(self, registry):
        before, after, report = self._pooled_report(registry)
        assert report.total == 4
        # learner_phase_seconds is recorded inside the workers; seeing it
        # move in the parent proves the delta shipping + merge round trip.
        phase_moved = sum(
            series["count"]
            for series in after.get("learner_phase_seconds", {}).get("series", [])
        ) - sum(
            series["count"]
            for series in before.get("learner_phase_seconds", {}).get("series", [])
        )
        assert phase_moved > 0
        assert _delta(before, after, "learner_invocations_total") == 4

    def test_pooled_verify_records_dispatch_and_task_series(self, registry):
        before, after, report = self._pooled_report(registry)
        dispatch = after.get("dispatch_overhead_seconds", {}).get("series", [])
        assert dispatch and dispatch[0]["count"] >= 4
        workers = after.get("worker_task_seconds", {}).get("series", [])
        assert sum(series["count"] for series in workers) >= 4
        utilization = after.get("worker_utilization", {}).get("series", [])
        assert utilization
        assert all(0.0 <= series["value"] <= 1.0 for series in utilization)

    def test_worker_task_events_carry_the_bound_request_id(self, registry, tmp_path):
        from repro.telemetry import events

        log = tmp_path / "events.jsonl"
        events._reset_for_tests()
        events.configure(str(log))
        try:
            with events.bind_request("cafe0123cafe0123"):
                self._pooled_report(registry)
        finally:
            events.configure(None)
            events._reset_for_tests()
        import json as json_module

        records = [
            json_module.loads(line) for line in log.read_text().splitlines()
        ]
        tasks = [r for r in records if r["event"] == "worker.task"]
        assert len(tasks) >= 4
        assert {r["rid"] for r in tasks} == {"cafe0123cafe0123"}
        assert {r["pid"] for r in tasks} - {records[0]["pid"]}, (
            "worker.task events must come from pool worker processes"
        )
