"""Property tests for the cross-process snapshot merge plane.

Pool workers ship :func:`diff_snapshots` deltas back with their results and
the parent folds them in with :meth:`MetricsRegistry.merge_snapshot`.  The
whole scheme rests on three algebraic properties — merging is commutative
across worker deltas, idempotent per task id, and histograms add bucket-wise
— so those are pinned with hypothesis rather than examples.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import (
    MetricsRegistry,
    diff_snapshots,
    histogram_quantile,
    series_value,
)

BUCKETS = (0.1, 1.0, 10.0)

# A worker's contribution: counter increments, a gauge value, and a batch of
# histogram observations, spread over two label values.
deltas = st.fixed_dictionaries(
    {
        "hits": st.integers(min_value=0, max_value=50),
        "misses": st.integers(min_value=0, max_value=50),
        "gauge": st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        "observations": st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False), max_size=12
        ),
    }
)


def _worker_delta(contribution):
    """Build one worker's delta snapshot the way _pool_certify does."""
    registry = MetricsRegistry()
    baseline = registry.snapshot()
    lookups = registry.counter("lookups_total", "Lookups.", ("result",))
    lookups.inc(contribution["hits"], result="hit")
    lookups.inc(contribution["misses"], result="miss")
    registry.gauge("depth", "Depth.").set(contribution["gauge"])
    hist = registry.histogram("dur_seconds", "Durations.", buckets=BUCKETS)
    for value in contribution["observations"]:
        hist.observe(value)
    return diff_snapshots(baseline, registry.snapshot())


def _merge_all(contributions, order):
    parent = MetricsRegistry()
    for task_id in order:
        parent.merge_snapshot(_worker_delta(contributions[task_id]), task_id=str(task_id))
    return parent.snapshot()


class TestMergeProperties:
    @given(st.lists(deltas, min_size=2, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_commutative(self, contributions):
        forward = _merge_all(contributions, range(len(contributions)))
        backward = _merge_all(contributions, reversed(range(len(contributions))))
        # Counters and histograms add, so order cannot matter; the gauge is
        # last-writer-wins, so compare everything except its value.  Float
        # sums are only reorder-stable up to rounding, hence approx.
        assert forward.keys() == backward.keys()
        # Zero-contribution families are dropped from deltas, so they may be
        # absent from both merged snapshots — compare via .get.
        assert forward.get("lookups_total") == backward.get("lookups_total")
        fwd_series = forward.get("dur_seconds", {}).get("series", [])
        bwd_series = backward.get("dur_seconds", {}).get("series", [])
        fwd = {s["labels"].get("op", ""): s for s in fwd_series}
        bwd = {s["labels"].get("op", ""): s for s in bwd_series}
        assert fwd.keys() == bwd.keys()
        for key, entry in fwd.items():
            assert entry["count"] == bwd[key]["count"]
            assert entry["buckets"] == bwd[key]["buckets"]
            assert entry["sum"] == pytest.approx(bwd[key]["sum"])

    @given(deltas)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_idempotent_per_task_id(self, contribution):
        delta = _worker_delta(contribution)
        parent = MetricsRegistry()
        assert parent.merge_snapshot(delta, task_id="t1") is True
        once = parent.snapshot()
        assert parent.merge_snapshot(delta, task_id="t1") is False
        assert parent.snapshot() == once

    @given(st.lists(deltas, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_histograms_add_bucket_wise(self, contributions):
        merged = _merge_all(contributions, range(len(contributions)))
        observations = [
            value for c in contributions for value in c["observations"]
        ]
        series = merged.get("dur_seconds", {}).get("series", [])
        if not observations:
            assert not series or series[0]["count"] == 0
            return
        (entry,) = series
        assert entry["count"] == len(observations)
        assert entry["sum"] == pytest.approx(sum(observations))
        for bound in BUCKETS:
            expected = sum(1 for value in observations if value <= bound)
            assert entry["buckets"][str(bound)] == expected
        assert entry["buckets"]["+Inf"] == len(observations)

    @given(st.lists(deltas, min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_counters_sum_across_workers(self, contributions):
        merged = _merge_all(contributions, range(len(contributions)))
        assert series_value(merged, "lookups_total", result="hit") == sum(
            c["hits"] for c in contributions
        )
        assert series_value(merged, "lookups_total", result="miss") == sum(
            c["misses"] for c in contributions
        )


class TestDiffSnapshots:
    def test_merge_of_diff_reconstructs_the_after_state(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", ("op",))
        hist = registry.histogram("dur_seconds", "Durations.", buckets=BUCKETS)
        counter.inc(3, op="a")
        hist.observe(0.05)
        before = registry.snapshot()
        counter.inc(2, op="a")
        counter.inc(1, op="b")
        hist.observe(5.0)
        after = registry.snapshot()

        rebuilt = MetricsRegistry()
        assert rebuilt.merge_snapshot(before)
        assert rebuilt.merge_snapshot(diff_snapshots(before, after))
        assert rebuilt.snapshot() == after

    def test_unchanged_series_are_dropped(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", ("op",))
        counter.inc(3, op="idle")
        before = registry.snapshot()
        counter.inc(1, op="busy")
        delta = diff_snapshots(before, registry.snapshot())
        labels = [s["labels"]["op"] for s in delta["ops_total"]["series"]]
        assert labels == ["busy"]

    def test_empty_delta_for_identical_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "Ops.").inc()
        snap = registry.snapshot()
        assert diff_snapshots(snap, snap) == {}


class TestMergeValidation:
    def test_unknown_metric_type_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot merge"):
            parent.merge_snapshot({"x": {"type": "summary", "series": []}})

    def test_negative_counter_delta_rejected(self):
        parent = MetricsRegistry()
        bad = {
            "x_total": {
                "type": "counter",
                "help": "",
                "labelnames": [],
                "series": [{"labels": {}, "value": -1.0}],
            }
        }
        with pytest.raises(ValueError):
            parent.merge_snapshot(bad)

    def test_mismatched_histogram_buckets_rejected(self):
        worker = MetricsRegistry()
        base = worker.snapshot()
        worker.histogram("dur_seconds", "D.", buckets=(0.5, 2.0)).observe(0.1)
        delta = diff_snapshots(base, worker.snapshot())
        parent = MetricsRegistry()
        parent.histogram("dur_seconds", "D.", buckets=BUCKETS).observe(0.1)
        with pytest.raises(ValueError, match="bucket"):
            parent.merge_snapshot(delta)

    def test_disabled_registry_refuses_merges(self):
        parent = MetricsRegistry()
        parent.set_enabled(False)
        assert parent.merge_snapshot({"x_total": {"type": "counter", "series": []}}) is False

    def test_merged_task_ids_are_bounded(self):
        parent = MetricsRegistry()
        for index in range(parent.MERGED_TASKS_LIMIT + 10):
            parent.merge_snapshot({}, task_id=f"t{index}")
        assert len(parent._merged_tasks) == parent.MERGED_TASKS_LIMIT
        # The oldest ids were evicted, so re-merging them is allowed again.
        assert parent.merge_snapshot({}, task_id="t0") is True


class TestHistogramQuantile:
    def test_interpolates_within_a_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("dur_seconds", "D.", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 1.5):
            hist.observe(value)
        (series,) = registry.snapshot()["dur_seconds"]["series"]
        # Ranks beyond the first bucket land in (1.0, 2.0].
        assert 1.0 <= histogram_quantile(series, 0.9) <= 2.0

    def test_inf_rank_clamps_to_highest_finite_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("dur_seconds", "D.", buckets=(1.0,))
        hist.observe(100.0)
        (series,) = registry.snapshot()["dur_seconds"]["series"]
        assert histogram_quantile(series, 0.99) == 1.0

    def test_empty_series_has_no_quantile(self):
        registry = MetricsRegistry()
        registry.histogram("dur_seconds", "D.", buckets=(1.0,))
        snapshot = registry.snapshot()["dur_seconds"]["series"]
        assert not snapshot or histogram_quantile(snapshot[0], 0.5) is None

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantile_is_bounded_by_observed_bucket_span(self, values, q):
        registry = MetricsRegistry()
        hist = registry.histogram("dur_seconds", "D.", buckets=BUCKETS)
        for value in values:
            hist.observe(value)
        (series,) = registry.snapshot()["dur_seconds"]["series"]
        estimate = histogram_quantile(series, q)
        assert estimate is not None
        assert 0.0 <= estimate <= BUCKETS[-1]
