"""Tests for the request-correlated structured event log."""

import json

import pytest

from repro.telemetry import events


@pytest.fixture(autouse=True)
def clean_events(monkeypatch):
    monkeypatch.delenv("REPRO_LOG_JSON", raising=False)
    monkeypatch.delenv("REPRO_LOG_SLOW_SECONDS", raising=False)
    events._reset_for_tests()
    yield
    events._reset_for_tests()


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRequestBinding:
    def test_no_binding_outside_context(self):
        assert events.current_request_id() is None

    def test_bind_and_restore(self):
        with events.bind_request("abc123"):
            assert events.current_request_id() == "abc123"
        assert events.current_request_id() is None

    def test_bindings_nest(self):
        with events.bind_request("outer"):
            with events.bind_request("inner"):
                assert events.current_request_id() == "inner"
            assert events.current_request_id() == "outer"

    def test_bind_none_is_passthrough(self):
        with events.bind_request("outer"):
            with events.bind_request(None):
                assert events.current_request_id() == "outer"

    def test_minted_ids_are_distinct_hex(self):
        first, second = events.new_request_id(), events.new_request_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # raises if not hex


class TestEmit:
    def test_unconfigured_emit_is_a_noop(self, tmp_path):
        events.emit("x.y", value=1)  # must not raise, must not create files
        assert list(tmp_path.iterdir()) == []

    def test_emit_writes_one_json_line(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        events.emit("server.dispatch", op="certify", seconds=0.25)
        (record,) = _lines(log)
        assert record["event"] == "server.dispatch"
        assert record["op"] == "certify"
        assert record["seconds"] == 0.25
        assert "ts" in record and "pid" in record
        assert "slow" not in record

    def test_bound_request_id_is_stamped(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        with events.bind_request("feedc0de"):
            events.emit("a.b")
        events.emit("c.d")
        first, second = _lines(log)
        assert first["rid"] == "feedc0de"
        assert "rid" not in second

    def test_explicit_rid_overrides_binding(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        with events.bind_request("bound"):
            events.emit("worker.task", rid="shipped")
        (record,) = _lines(log)
        assert record["rid"] == "shipped"

    def test_slow_events_are_flagged(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_SLOW_SECONDS", "0.5")
        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        events.emit("fast.op", seconds=0.49)
        events.emit("slow.op", seconds=0.5)
        fast, slow = _lines(log)
        assert "slow" not in fast
        assert slow["slow"] is True

    def test_unserializable_fields_degrade_to_str(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        events.emit("x.y", payload=object())
        (record,) = _lines(log)
        assert isinstance(record["payload"], str)


class TestConfiguration:
    def test_configure_exports_env_for_forked_workers(self, tmp_path, monkeypatch):
        import os

        log = tmp_path / "events.jsonl"
        events.configure(str(log))
        assert os.environ["REPRO_LOG_JSON"] == str(log)
        events.configure(None)
        assert "REPRO_LOG_JSON" not in os.environ

    def test_env_variable_enables_the_sink_lazily(self, tmp_path, monkeypatch):
        log = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_LOG_JSON", str(log))
        events._reset_for_tests()
        events.emit("from.env")
        assert events.configured_path() == str(log)
        (record,) = _lines(log)
        assert record["event"] == "from.env"

    def test_unwritable_env_path_disables_quietly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_JSON", str(tmp_path / "no" / "such" / "dir" / "f"))
        events._reset_for_tests()
        events.emit("x.y")  # must not raise
        assert events.configured_path() is None

    def test_default_slow_threshold(self):
        assert events.slow_threshold_seconds() == 1.0

    def test_bogus_slow_threshold_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_SLOW_SECONDS", "not-a-number")
        assert events.slow_threshold_seconds() == 1.0


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc, kind",
        [
            (ValueError("bad"), "validation"),
            (TypeError("bad"), "validation"),
            (KeyError("missing"), "validation"),
            (TimeoutError(), "timeout"),
            (MemoryError(), "resource"),
            (RecursionError(), "resource"),
            (OSError("io"), "io"),
            (ConnectionResetError(), "io"),
            (EOFError(), "io"),
            (RuntimeError("boom"), "internal"),
        ],
    )
    def test_builtin_exceptions(self, exc, kind):
        assert events.classify_error(exc) == kind

    def test_service_errors_classify_by_name(self):
        from repro.service.protocol import ProtocolError
        from repro.service.server import ValidationError

        # ProtocolError subclasses ValueError; the protocol bucket must win.
        assert events.classify_error(ProtocolError("framing")) == "protocol"
        assert events.classify_error(ValidationError("params")) == "validation"

    def test_json_decode_errors_are_protocol(self):
        try:
            json.loads("{")
        except json.JSONDecodeError as error:
            assert events.classify_error(error) == "protocol"

    def test_timeout_matches_by_name_too(self):
        class CertificationTimeout(Exception):
            pass

        assert events.classify_error(CertificationTimeout()) == "timeout"
