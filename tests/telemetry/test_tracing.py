"""Tests for the opt-in span tracer."""

import threading
import time

import pytest

from repro.telemetry import tracing


@pytest.fixture
def spans():
    """Enable tracing for one test, restoring the disabled default after."""
    tracing.clear_completed()
    tracing.enable_spans(True)
    yield
    tracing.enable_spans(False)
    tracing.clear_completed()


class TestDisabled:
    def test_span_yields_none(self):
        assert not tracing.spans_enabled()
        with tracing.span("anything") as node:
            assert node is None

    def test_no_roots_recorded(self):
        tracing.clear_completed()
        with tracing.span("anything"):
            pass
        assert tracing.completed_roots() == []


class TestTree:
    def test_nesting_builds_a_tree(self, spans):
        with tracing.span("root") as root:
            with tracing.span("child-a") as a:
                with tracing.span("grandchild"):
                    pass
            with tracing.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in a.children] == ["grandchild"]
        assert root.duration >= a.duration >= 0.0

    def test_root_lands_in_completed_ring(self, spans):
        with tracing.span("the-root"):
            with tracing.span("inner"):
                pass
        roots = tracing.completed_roots()
        assert [r.name for r in roots] == ["the-root"]
        assert tracing.find_span("inner") is not None
        assert tracing.find_span("absent") is None

    def test_to_dict_is_json_safe(self, spans):
        with tracing.span("root") as root:
            with tracing.span("child"):
                pass
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["duration_seconds"] == root.duration
        assert payload["children"][0]["name"] == "child"
        assert payload["children"][0]["children"] == []

    def test_render_mentions_every_span(self, spans):
        with tracing.span("root") as root:
            with tracing.span("child"):
                pass
        text = root.render()
        assert "root" in text and "child" in text and "ms" in text

    def test_attributed_fraction(self, spans):
        with tracing.span("root") as root:
            with tracing.span("covered"):
                time.sleep(0.02)
        assert 0.5 < root.attributed_fraction() <= 1.0

    def test_threads_get_independent_stacks(self, spans):
        def worker():
            with tracing.span("thread-root"):
                with tracing.span("thread-child"):
                    pass

        with tracing.span("main-root") as main_root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's root must not have been adopted by the main root.
        assert [c.name for c in main_root.children] == []
        names = {r.name for r in tracing.completed_roots()}
        assert names == {"main-root", "thread-root"}
