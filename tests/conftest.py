"""Shared fixtures and helpers for the test suite.

The most important helper is :func:`random_small_dataset`, the generator of
tiny labelled datasets used by the soundness property tests: they are small
enough that the naïve enumeration oracle can exhaustively check every
concretization of ``⟨T, n⟩``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import pytest

from repro.core.dataset import Dataset, FeatureKind
from repro.datasets.toy import figure2_dataset, tiny_boolean_dataset


@pytest.fixture
def figure2() -> Dataset:
    """The 13-element black/white dataset of Figure 2 of the paper."""
    return figure2_dataset()


@pytest.fixture
def tiny_boolean() -> Dataset:
    """An 8-element two-feature boolean dataset."""
    return tiny_boolean_dataset()


def random_small_dataset(
    rng: np.random.Generator,
    *,
    n_samples: Optional[int] = None,
    n_features: Optional[int] = None,
    n_classes: int = 2,
    boolean: Optional[bool] = None,
) -> Dataset:
    """Generate a small random dataset suitable for exhaustive enumeration."""
    if n_samples is None:
        n_samples = int(rng.integers(6, 12))
    if n_features is None:
        n_features = int(rng.integers(1, 4))
    if boolean is None:
        boolean = bool(rng.integers(0, 2))
    if boolean:
        X = rng.integers(0, 2, size=(n_samples, n_features)).astype(float)
        kinds = tuple(FeatureKind.BOOLEAN for _ in range(n_features))
    else:
        X = np.round(rng.normal(0.0, 2.0, size=(n_samples, n_features)), 1)
        kinds = tuple(FeatureKind.REAL for _ in range(n_features))
    y = rng.integers(0, n_classes, size=n_samples).astype(np.int64)
    # Guarantee at least two classes are present so splits are meaningful.
    if np.unique(y).size < 2 and n_samples >= 2:
        y[0], y[1] = 0, 1
    return Dataset(X=X, y=y, n_classes=n_classes, feature_kinds=kinds, name="random-small")


def well_separated_dataset(per_class: int = 20) -> Dataset:
    """A 1-D two-cluster dataset with a wide margin between the classes.

    Class 0 occupies values around 0, class 1 values around 10.  The large
    margin makes robustness certification succeed even for non-trivial
    poisoning budgets, which the positive certification tests rely on.
    """
    low = np.linspace(0.0, 1.9, per_class)
    high = np.linspace(10.0, 11.9, per_class)
    X = np.concatenate([low, high]).reshape(-1, 1)
    y = np.concatenate([np.zeros(per_class), np.ones(per_class)]).astype(np.int64)
    return Dataset(X=X, y=y, n_classes=2, name="well-separated")


def random_test_point(rng: np.random.Generator, dataset: Dataset) -> np.ndarray:
    """Sample a test point compatible with the dataset's feature kinds."""
    point = np.empty(dataset.n_features)
    for j, kind in enumerate(dataset.feature_kinds):
        if kind is FeatureKind.BOOLEAN:
            point[j] = float(rng.integers(0, 2))
        else:
            point[j] = float(np.round(rng.normal(0.0, 2.0), 1))
    return point
