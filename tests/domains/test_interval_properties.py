"""Property-based tests of interval-arithmetic soundness."""

from hypothesis import given, strategies as st

from repro.domains.interval import Interval

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    a = draw(finite)
    b = draw(finite)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_with_member(draw):
    interval = draw(intervals())
    t = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    member = interval.lo + t * (interval.hi - interval.lo)
    return interval, member


class TestArithmeticSoundness:
    @given(interval_with_member(), interval_with_member())
    def test_addition_contains_pointwise_sum(self, first, second):
        (a, x), (b, y) = first, second
        assert (a + b).contains(x + y)

    @given(interval_with_member(), interval_with_member())
    def test_subtraction_contains_pointwise_difference(self, first, second):
        (a, x), (b, y) = first, second
        assert (a - b).contains(x - y)

    @given(interval_with_member(), interval_with_member())
    def test_multiplication_contains_pointwise_product(self, first, second):
        (a, x), (b, y) = first, second
        product = (a * b)
        # Allow a tiny relative tolerance for floating-point rounding.
        slack = 1e-9 * (1.0 + abs(x * y))
        assert product.lo - slack <= x * y <= product.hi + slack


class TestLatticeLaws:
    @given(intervals(), intervals())
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.is_subset_of(joined) and b.is_subset_of(joined)

    @given(intervals(), intervals())
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(intervals(), intervals(), intervals())
    def test_join_associative(self, a, b, c):
        left = a.join(b).join(c)
        right = a.join(b.join(c))
        assert left == right

    @given(intervals(), intervals())
    def test_meet_is_lower_bound_when_defined(self, a, b):
        met = a.meet(b)
        if met is not None:
            assert met.is_subset_of(a) and met.is_subset_of(b)

    @given(intervals())
    def test_join_idempotent(self, a):
        assert a.join(a) == a
