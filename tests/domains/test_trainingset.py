"""Unit tests for the abstract training-set domain ⟨T, n⟩."""

import numpy as np
import pytest

from repro.core.predicates import SymbolicThresholdPredicate, ThresholdPredicate
from repro.datasets.toy import figure2_dataset
from repro.domains.trainingset import AbstractTrainingSet
from repro.utils.validation import ValidationError


@pytest.fixture
def dataset():
    return figure2_dataset()


class TestConstruction:
    def test_full_abstraction(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 3)
        assert trainset.size == 13
        assert trainset.n == 3
        assert not trainset.is_empty

    def test_budget_clamped_to_size(self, dataset):
        trainset = AbstractTrainingSet.from_indices(dataset, [0, 1], 10)
        assert trainset.n == 2

    def test_negative_budget_rejected(self, dataset):
        with pytest.raises(ValidationError):
            AbstractTrainingSet.full(dataset, -1)

    def test_class_counts(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 2)
        assert trainset.class_counts().tolist() == [7, 6]

    def test_to_dataset_roundtrip(self, dataset):
        trainset = AbstractTrainingSet.from_indices(dataset, [0, 1, 2], 1)
        assert len(trainset.to_dataset()) == 3


class TestConcretization:
    def test_membership(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 2)
        all_indices = list(range(13))
        assert trainset.contains_concrete(all_indices)
        assert trainset.contains_concrete(all_indices[:-2])
        assert not trainset.contains_concrete(all_indices[:-3])

    def test_membership_requires_subset(self, dataset):
        trainset = AbstractTrainingSet.from_indices(dataset, [0, 1, 2], 2)
        assert not trainset.contains_concrete([0, 5])

    def test_enumeration_count_matches_formula(self, dataset):
        trainset = AbstractTrainingSet.from_indices(dataset, range(6), 2)
        concretizations = list(trainset.concretizations())
        assert len(concretizations) == trainset.num_concretizations() == 1 + 6 + 15

    def test_log10_count(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 2)
        assert trainset.log10_num_concretizations() == pytest.approx(np.log10(92), abs=1e-6)

    def test_log10_count_huge_values(self, dataset):
        # MNIST-scale sanity check quoted in §4.1: |Δ50(T)| ≈ 10^141 for |T| = 13007.
        big = AbstractTrainingSet(dataset, np.arange(13), 0)
        assert big.log10_num_concretizations() == 0.0

    def test_sample_concretization(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 3)
        rng = np.random.default_rng(0)
        sample = trainset.sample_concretization(rng)
        assert trainset.contains_concrete(sample)

    def test_can_be_empty(self, dataset):
        assert AbstractTrainingSet.from_indices(dataset, [0, 1], 2).can_be_empty()
        assert not AbstractTrainingSet.from_indices(dataset, [0, 1], 1).can_be_empty()


class TestLatticeOperations:
    def test_join_same_set_takes_max_budget(self, dataset):
        # Example 4.3, first part.
        a = AbstractTrainingSet.full(dataset, 2)
        b = AbstractTrainingSet.full(dataset, 3)
        joined = a.join(b)
        assert joined.size == 13 and joined.n == 3

    def test_join_with_extra_element_increases_budget(self, dataset):
        # Example 4.3, second part: ⟨T2, 2⟩ ⊔ ⟨T2 ∪ {x3}, 2⟩ = ⟨T2 ∪ {x3}, 3⟩.
        t2 = AbstractTrainingSet.from_indices(dataset, [0, 1], 2)
        t2_extra = AbstractTrainingSet.from_indices(dataset, [0, 1, 2], 2)
        joined = t2.join(t2_extra)
        assert joined.size == 3 and joined.n == 3

    def test_join_requires_same_base(self, dataset):
        other = figure2_dataset()
        a = AbstractTrainingSet.full(dataset, 1)
        b = AbstractTrainingSet.full(other, 1)
        with pytest.raises(ValidationError):
            a.join(b)

    def test_meet_disjoint_overflow_is_bottom(self, dataset):
        a = AbstractTrainingSet.from_indices(dataset, [0, 1, 2, 3], 1)
        b = AbstractTrainingSet.from_indices(dataset, [5, 6, 7, 8], 1)
        assert a.meet(b) is None

    def test_meet_of_overlapping_sets(self, dataset):
        a = AbstractTrainingSet.from_indices(dataset, [0, 1, 2], 1)
        b = AbstractTrainingSet.from_indices(dataset, [1, 2, 3], 1)
        met = a.meet(b)
        assert met is not None
        assert met.indices.tolist() == [1, 2]
        assert met.n == 0

    def test_ordering(self, dataset):
        small = AbstractTrainingSet.from_indices(dataset, [0, 1], 1)
        large = AbstractTrainingSet.from_indices(dataset, [0, 1, 2], 2)
        assert small.is_leq(large)
        assert not large.is_leq(small)


class TestSplitDown:
    def test_concrete_threshold(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 2)
        left = trainset.split_down(ThresholdPredicate(0, 10.5), True)
        right = trainset.split_down(ThresholdPredicate(0, 10.5), False)
        assert left.size == 9 and left.n == 2
        assert right.size == 4 and right.n == 2

    def test_budget_clamped_after_split(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 6)
        right = trainset.split_down(ThresholdPredicate(0, 10.5), False)
        assert right.size == 4 and right.n == 4

    def test_symbolic_split_equals_concrete_when_no_gap_values(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 2)
        symbolic = SymbolicThresholdPredicate(0, 10.0, 11.0)
        left = trainset.split_down(symbolic, True)
        right = trainset.split_down(symbolic, False)
        assert left.size == 9 and right.size == 4

    def test_symbolic_split_with_gap_values_overapproximates(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 1)
        # Thresholds in [3, 7) may or may not include the element with value 4.
        symbolic = SymbolicThresholdPredicate(0, 3.0, 7.0)
        left = trainset.split_down(symbolic, True)
        assert left.size == 5  # values {0, 1, 2, 3, 4}
        assert left.n >= 1 + 1  # the uncertain element inflates the budget

    def test_restrict_pure(self, dataset):
        left = AbstractTrainingSet.from_indices(
            dataset, [0, 1, 2, 3, 4, 5, 6, 7, 8], 2
        )
        pure_white = left.restrict_pure(0)
        assert pure_white is not None
        assert pure_white.size == 7 and pure_white.n == 0
        assert left.restrict_pure(1) is None

    def test_restrict_pure_any(self, dataset):
        trainset = AbstractTrainingSet.full(dataset, 1)
        assert trainset.restrict_pure_any() is None
        nearly_pure = AbstractTrainingSet.from_indices(dataset, [1, 2, 3, 0], 1)
        restricted = nearly_pure.restrict_pure_any()
        assert restricted is not None
        assert restricted.size == 3
