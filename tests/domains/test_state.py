"""Tests for abstract learner states (product and disjunctive)."""

from repro.datasets.toy import figure2_dataset
from repro.domains.predicate_set import AbstractPredicateSet
from repro.domains.state import AbstractState, DisjunctiveState
from repro.domains.trainingset import AbstractTrainingSet


def make_trainset(n: int = 2) -> AbstractTrainingSet:
    return AbstractTrainingSet.full(figure2_dataset(), n)


class TestAbstractState:
    def test_initial_state(self):
        state = AbstractState.initial(make_trainset())
        assert not state.is_bottom
        assert state.predicates.includes_null
        assert state.trainset.size == 13

    def test_bottom_state(self):
        assert AbstractState.bottom().is_bottom

    def test_with_predicates_and_trainset(self):
        state = AbstractState.initial(make_trainset())
        updated = state.with_predicates(AbstractPredicateSet.of(()))
        assert not updated.predicates.includes_null
        cleared = updated.with_trainset(None)
        assert cleared.is_bottom

    def test_estimated_bytes_positive(self):
        assert AbstractState.initial(make_trainset()).estimated_bytes() > 0
        assert AbstractState.bottom().estimated_bytes() > 0

    def test_describe(self):
        assert "|T|=13" in AbstractState.initial(make_trainset()).describe()
        assert AbstractState.bottom().describe() == "⊥"


class TestDisjunctiveState:
    def test_initial_has_one_disjunct(self):
        state = DisjunctiveState.initial(make_trainset())
        assert len(state) == 1
        assert not state.is_bottom

    def test_join_is_union(self):
        a = DisjunctiveState.initial(make_trainset(1))
        b = DisjunctiveState.initial(make_trainset(2))
        joined = a.join(b)
        assert len(joined) == 2

    def test_of_drops_bottoms(self):
        state = DisjunctiveState.of([AbstractState.bottom(), AbstractState.initial(make_trainset())])
        assert len(state) == 1

    def test_empty_is_bottom(self):
        assert DisjunctiveState.of([]).is_bottom

    def test_estimated_bytes(self):
        state = DisjunctiveState.initial(make_trainset())
        assert state.estimated_bytes() > 0
