"""Property-based soundness tests for the ⟨T, n⟩ abstract domain.

These check the propositions of §4 of the paper by exhaustively or randomly
sampling concretizations of small abstract elements:

* Proposition 4.2 — the join overapproximates the union of concretizations.
* Proposition 4.4 — ``split_down`` soundly abstracts concrete filtering.
* The meet is a lower bound of its arguments; the ordering is consistent with
  concretization inclusion.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dataset import Dataset
from repro.core.predicates import SymbolicThresholdPredicate, ThresholdPredicate
from repro.domains.trainingset import AbstractTrainingSet


def base_dataset(size: int = 10) -> Dataset:
    values = np.arange(size, dtype=float).reshape(-1, 1)
    labels = (np.arange(size) % 2).astype(np.int64)
    return Dataset(X=values, y=labels, n_classes=2)


_DATASET = base_dataset()

index_subsets = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=10, unique=True
)
budgets = st.integers(min_value=0, max_value=3)


@st.composite
def abstract_sets(draw):
    indices = draw(index_subsets)
    budget = draw(budgets)
    return AbstractTrainingSet.from_indices(_DATASET, indices, budget)


class TestJoinSoundness:
    @settings(max_examples=60, deadline=None)
    @given(abstract_sets(), abstract_sets())
    def test_join_contains_both_concretization_sets(self, a, b):
        joined = a.join(b)
        for source in (a, b):
            for concrete in source.concretizations():
                assert joined.contains_concrete(concrete)

    @settings(max_examples=60, deadline=None)
    @given(abstract_sets(), abstract_sets())
    def test_join_is_upper_bound_in_the_order(self, a, b):
        joined = a.join(b)
        assert a.is_leq(joined)
        assert b.is_leq(joined)

    @settings(max_examples=40, deadline=None)
    @given(abstract_sets())
    def test_join_idempotent(self, a):
        joined = a.join(a)
        assert joined.size == a.size and joined.n == a.n


class TestMeetAndOrder:
    @settings(max_examples=60, deadline=None)
    @given(abstract_sets(), abstract_sets())
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        if met is None:
            return
        assert met.is_leq(a)
        assert met.is_leq(b)

    @settings(max_examples=60, deadline=None)
    @given(abstract_sets(), abstract_sets())
    def test_order_implies_concretization_inclusion(self, a, b):
        if a.is_leq(b):
            for concrete in a.concretizations():
                assert b.contains_concrete(concrete)

    @settings(max_examples=40, deadline=None)
    @given(abstract_sets())
    def test_order_reflexive(self, a):
        assert a.is_leq(a)


class TestSplitDownSoundness:
    @settings(max_examples=50, deadline=None)
    @given(abstract_sets(), st.floats(min_value=-1.0, max_value=10.0, allow_nan=False))
    def test_concrete_threshold_soundness(self, trainset, threshold):
        """Proposition 4.4 for both polarities of a threshold predicate."""
        predicate = ThresholdPredicate(0, threshold)
        for branch in (True, False):
            abstract_side = trainset.split_down(predicate, branch)
            for concrete in trainset.concretizations():
                values = _DATASET.X[concrete, 0]
                mask = values <= threshold if branch else values > threshold
                filtered = np.asarray(concrete)[mask]
                assert abstract_side.contains_concrete(filtered)

    @settings(max_examples=40, deadline=None)
    @given(
        abstract_sets(),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=1, max_value=3),
    )
    def test_symbolic_threshold_soundness(self, trainset, low, width):
        """Proposition B.3: every concrete threshold in [low, high) is covered."""
        low_value = float(low)
        high_value = float(low + width)
        predicate = SymbolicThresholdPredicate(0, low_value, high_value)
        thresholds = np.arange(low_value, high_value, 0.5)
        for branch in (True, False):
            abstract_side = trainset.split_down(predicate, branch)
            for concrete in trainset.concretizations():
                values = _DATASET.X[concrete, 0]
                for threshold in thresholds:
                    mask = values <= threshold if branch else values > threshold
                    filtered = np.asarray(concrete)[mask]
                    assert abstract_side.contains_concrete(filtered)


class TestPureRestrictionSoundness:
    @settings(max_examples=50, deadline=None)
    @given(abstract_sets())
    def test_pure_restriction_covers_pure_concretizations(self, trainset):
        """§4.7: every pure concretization survives the then-branch restriction."""
        restricted = trainset.restrict_pure_any()
        for concrete in trainset.concretizations():
            labels = _DATASET.y[concrete]
            if labels.size and np.unique(labels).size == 1:
                assert restricted is not None
                assert restricted.contains_concrete(concrete)
