"""Tests for the abstract predicate-set domain."""

from repro.core.predicates import SymbolicThresholdPredicate, ThresholdPredicate
from repro.domains.predicate_set import AbstractPredicateSet


class TestConstruction:
    def test_initial_state_is_null_only(self):
        initial = AbstractPredicateSet.initial()
        assert initial.includes_null
        assert not initial.has_concrete_choices
        assert len(initial) == 1

    def test_of(self):
        predicates = AbstractPredicateSet.of([ThresholdPredicate(0, 1.0)])
        assert len(predicates) == 1
        assert ThresholdPredicate(0, 1.0) in predicates

    def test_is_empty(self):
        assert AbstractPredicateSet.of(()).is_empty
        assert not AbstractPredicateSet.initial().is_empty


class TestLattice:
    def test_join_unions_and_deduplicates(self):
        a = AbstractPredicateSet.of([ThresholdPredicate(0, 1.0)])
        b = AbstractPredicateSet.of(
            [ThresholdPredicate(0, 1.0), ThresholdPredicate(1, 2.0)], includes_null=True
        )
        joined = a.join(b)
        assert len(joined.predicates) == 2
        assert joined.includes_null

    def test_without_and_with_null(self):
        predicates = AbstractPredicateSet.of([ThresholdPredicate(0, 1.0)], includes_null=True)
        assert not predicates.without_null().includes_null
        assert predicates.without_null().with_null().includes_null


class TestPointPartition:
    def test_concrete_predicates_split_cleanly(self):
        predicates = AbstractPredicateSet.of(
            [ThresholdPredicate(0, 1.0), ThresholdPredicate(0, 5.0)]
        )
        satisfied, falsified = predicates.partition_for_point([3.0])
        assert satisfied == (ThresholdPredicate(0, 5.0),)
        assert falsified == (ThresholdPredicate(0, 1.0),)

    def test_symbolic_maybe_lands_in_both(self):
        symbolic = SymbolicThresholdPredicate(0, 1.0, 5.0)
        predicates = AbstractPredicateSet.of([symbolic])
        satisfied, falsified = predicates.partition_for_point([3.0])
        assert symbolic in satisfied and symbolic in falsified
        assert predicates.maybe_predicates([3.0]) == (symbolic,)

    def test_symbolic_definite_cases(self):
        symbolic = SymbolicThresholdPredicate(0, 1.0, 5.0)
        predicates = AbstractPredicateSet.of([symbolic])
        satisfied, falsified = predicates.partition_for_point([0.0])
        assert satisfied and not falsified
        satisfied, falsified = predicates.partition_for_point([9.0])
        assert falsified and not satisfied


class TestDescribe:
    def test_describe_includes_null_marker(self):
        predicates = AbstractPredicateSet.of([ThresholdPredicate(0, 1.0)], includes_null=True)
        text = predicates.describe()
        assert "x0 <= 1" in text and "<>" in text
