"""Tests for the intervals abstract domain."""

import numpy as np
import pytest

from repro.domains.interval import (
    Interval,
    add_bounds,
    complement_bounds,
    dominating_component,
    join_interval_vectors,
    mul_bounds,
)


class TestConstruction:
    def test_point_and_unit(self):
        assert Interval.point(3.0) == Interval(3.0, 3.0)
        assert Interval.unit() == Interval(0.0, 1.0)
        assert Interval.zero().is_point()

    def test_from_values(self):
        assert Interval.from_values([0.3, 0.1, 0.2]) == Interval(0.1, 0.3)

    def test_from_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.from_values([])

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)


class TestPredicates:
    def test_contains(self):
        interval = Interval(0.2, 0.6)
        assert interval.contains(0.2) and interval.contains(0.6) and interval.contains(0.4)
        assert not interval.contains(0.7)

    def test_intersects(self):
        assert Interval(0, 1).intersects(Interval(1, 2))
        assert not Interval(0, 1).intersects(Interval(1.1, 2))

    def test_subset(self):
        assert Interval(0.2, 0.4).is_subset_of(Interval(0, 1))
        assert not Interval(0.2, 1.4).is_subset_of(Interval(0, 1))

    def test_dominates_is_strict(self):
        assert Interval(0.6, 0.9).dominates(Interval(0.1, 0.5))
        assert not Interval(0.5, 0.9).dominates(Interval(0.1, 0.5))


class TestLattice:
    def test_join(self):
        assert Interval(0, 1).join(Interval(2, 3)) == Interval(0, 3)

    def test_meet(self):
        assert Interval(0, 2).meet(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).meet(Interval(2, 3)) is None

    def test_clamp(self):
        assert Interval(-0.5, 1.5).clamp(0.0, 1.0) == Interval(0.0, 1.0)


class TestArithmetic:
    def test_add_sub_neg(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)
        assert Interval(1, 2) - Interval(3, 4) == Interval(-3, -1)
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_mul_with_negative_operands(self):
        assert Interval(-1, 2) * Interval(3, 4) == Interval(-4, 8)

    def test_scale(self):
        assert Interval(1, 2).scale(-2) == Interval(-4, -2)

    def test_divide(self):
        assert Interval(1, 2).divide(Interval(2, 4)) == Interval(0.25, 1.0)

    def test_divide_by_zero_interval(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2).divide(Interval(-1, 1))

    def test_width_and_midpoint(self):
        interval = Interval(1.0, 3.0)
        assert interval.width == 2.0
        assert interval.midpoint == 2.0


class TestVectorHelpers:
    def test_join_interval_vectors(self):
        joined = join_interval_vectors(
            (Interval(0, 0.5), Interval(0.5, 1)), (Interval(0.25, 0.75), Interval(0, 0.1))
        )
        assert joined == (Interval(0, 0.75), Interval(0, 1))

    def test_join_interval_vectors_length_mismatch(self):
        with pytest.raises(ValueError):
            join_interval_vectors((Interval(0, 1),), (Interval(0, 1), Interval(0, 1)))

    def test_dominating_component_found(self):
        intervals = (Interval(0.7, 0.9), Interval(0.0, 0.3), Interval(0.1, 0.2))
        assert dominating_component(intervals) == 0

    def test_dominating_component_none_when_overlapping(self):
        intervals = (Interval(0.4, 0.9), Interval(0.0, 0.5))
        assert dominating_component(intervals) is None


class TestBoundArrays:
    def test_mul_bounds_matches_scalar(self):
        rng = np.random.default_rng(0)
        lo1, hi1 = -rng.random(50), rng.random(50)
        lo2, hi2 = -rng.random(50), rng.random(50)
        lo, hi = mul_bounds(lo1, hi1, lo2, hi2)
        for i in range(50):
            expected = Interval(lo1[i], hi1[i]) * Interval(lo2[i], hi2[i])
            assert lo[i] == pytest.approx(expected.lo)
            assert hi[i] == pytest.approx(expected.hi)

    def test_add_and_complement_bounds(self):
        lo, hi = add_bounds(np.array([1.0]), np.array([2.0]), np.array([3.0]), np.array([4.0]))
        assert lo[0] == 4.0 and hi[0] == 6.0
        clo, chi = complement_bounds(np.array([0.2]), np.array([0.7]))
        assert clo[0] == pytest.approx(0.3) and chi[0] == pytest.approx(0.8)
