"""Smoke tests for the example scripts.

The examples are exercised as importable modules (compile + main presence) so
the test suite stays fast; the benchmark/CI instructions in the README run
them end to end.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleScripts:
    def test_at_least_four_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 4
        names = {path.name for path in EXAMPLE_FILES}
        assert "quickstart.py" in names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_examples_parse_and_have_docstring(self, path):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        assert ast.get_docstring(tree), f"{path.name} must document its scenario"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_examples_only_use_public_api(self, path):
        """Examples must import from ``repro`` only (plus the standard library)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        allowed_roots = {"repro", "argparse", "__future__", "numpy"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                roots = {alias.name.split(".")[0] for alias in node.names}
            elif isinstance(node, ast.ImportFrom):
                roots = {(node.module or "").split(".")[0]}
            else:
                continue
            assert roots <= allowed_roots, f"{path.name} imports {roots - allowed_roots}"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_examples_are_runnable_scripts(self, path):
        source = path.read_text(encoding="utf-8")
        assert '__name__ == "__main__"' in source
