"""Tests for stopwatches and cooperative time budgets."""

import time

import pytest

from repro.utils.timing import Stopwatch, TimeBudget, TimeoutExceeded


class TestStopwatch:
    def test_elapsed_is_monotone(self):
        watch = Stopwatch().start()
        first = watch.elapsed()
        second = watch.elapsed()
        assert second >= first >= 0.0

    def test_stop_freezes_elapsed(self):
        watch = Stopwatch().start()
        watch.stop()
        frozen = watch.elapsed()
        time.sleep(0.01)
        assert watch.elapsed() == frozen

    def test_context_manager(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed() >= 0.0

    def test_stop_without_start(self):
        assert Stopwatch().stop() == 0.0


class TestTimeBudget:
    def test_unlimited_never_exhausts(self):
        budget = TimeBudget.unlimited()
        assert budget.remaining() is None
        assert not budget.exhausted()
        budget.check()

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TimeBudget(0)
        with pytest.raises(ValueError):
            TimeBudget(-1)

    def test_exhaustion_raises(self):
        budget = TimeBudget(0.001)
        time.sleep(0.01)
        assert budget.exhausted()
        with pytest.raises(TimeoutExceeded):
            budget.check()

    def test_fresh_budget_not_exhausted(self):
        budget = TimeBudget(60.0)
        assert not budget.exhausted()
        assert budget.remaining() > 0
