"""Tests for deterministic RNG helpers."""

import numpy as np

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_but_deterministic(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "a", 1) == derive_seed(3, "a", 1)

    def test_salt_changes_seed(self):
        assert derive_seed(3, "a") != derive_seed(3, "b")

    def test_none_base_seed(self):
        assert isinstance(derive_seed(None, "x"), int)
