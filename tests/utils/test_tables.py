"""Tests for the text-table reporting helper."""

import pytest

from repro.utils.tables import TextTable, format_float


class TestFormatFloat:
    def test_regular_value(self):
        assert format_float(0.5) == "0.500"

    def test_large_value_uses_scientific(self):
        assert "e" in format_float(123456.0)

    def test_tiny_value_uses_scientific(self):
        assert "e" in format_float(1e-6)

    def test_zero(self):
        assert format_float(0.0) == "0.000"

    def test_nan_and_inf(self):
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["dataset", "accuracy"])
        table.add_row(["iris", 0.9])
        table.add_row(["mnist17-binary", 0.987])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("dataset")
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_rejects_wrong_arity(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_bool_formatting(self):
        table = TextTable(["flag"])
        table.add_row([True])
        assert "yes" in table.render()

    def test_csv_output(self):
        table = TextTable(["a", "b"])
        table.add_row([1, 2.0])
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[1].startswith("1,")
