"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    ValidationError,
    check_fraction,
    check_index_array,
    check_positive_int,
    check_probability_vector,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7
        assert isinstance(check_positive_int(np.int64(7), "x"), int)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_allows_zero_when_requested(self):
        assert check_positive_int(0, "x", allow_zero=True) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-1, "x", allow_zero=True)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_fraction(1.5, "f")
        with pytest.raises(ValidationError):
            check_fraction(-0.1, "f")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_fraction("abc", "f")


class TestCheckProbabilityVector:
    def test_accepts_valid_vector(self):
        result = check_probability_vector([0.25, 0.75], "p")
        assert result.shape == (2,)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            check_probability_vector([-0.5, 1.5], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.2, 0.2], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector([], "p")


class TestCheckIndexArray:
    def test_sorts_and_uniquifies(self):
        result = check_index_array([3, 1, 1, 2], 5, "idx")
        assert result.tolist() == [1, 2, 3]

    def test_empty_input(self):
        assert check_index_array([], 5, "idx").size == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_index_array([5], 5, "idx")
        with pytest.raises(ValidationError):
            check_index_array([-1], 5, "idx")

    def test_rejects_multidimensional(self):
        with pytest.raises(ValidationError):
            check_index_array(np.zeros((2, 2), dtype=int), 5, "idx")
