"""Tests for the tracemalloc-based memory tracking."""

import tracemalloc

import numpy as np
import pytest

from repro.utils.memory import MemoryBudget, MemoryTracker, peak_memory_bytes


class TestMemoryTracker:
    def test_records_positive_peak_for_allocation(self):
        with MemoryTracker() as tracker:
            buffer = np.zeros(200_000)
            assert buffer.size == 200_000
        assert tracker.peak_bytes > 100_000
        assert tracker.peak_megabytes > 0.0

    def test_stops_tracing_it_started(self):
        assert not tracemalloc.is_tracing()
        with MemoryTracker():
            pass
        assert not tracemalloc.is_tracing()

    def test_nested_trackers(self):
        with MemoryTracker() as outer:
            with MemoryTracker() as inner:
                buffer = np.zeros(100_000)
                assert buffer is not None
        assert inner.peak_bytes > 0
        assert outer.peak_bytes >= 0


class TestPeakMemoryBytes:
    def test_zero_when_not_tracing(self):
        assert not tracemalloc.is_tracing()
        assert peak_memory_bytes() == 0

    def test_positive_when_tracing(self):
        with MemoryTracker():
            _ = np.zeros(50_000)
            assert peak_memory_bytes() > 0


class TestMemoryBudget:
    def test_unlimited_accepts_anything(self):
        MemoryBudget(None).check(10**12)

    def test_raises_when_exceeded(self):
        with pytest.raises(MemoryError):
            MemoryBudget(limit_bytes=100).check(200)

    def test_passes_under_limit(self):
        MemoryBudget(limit_bytes=1000).check(200)
