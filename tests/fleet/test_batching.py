"""Micro-batching tests: window pooling, correctness, and failure fan-out."""

import threading

import numpy as np
import pytest

from repro.api import CertificationEngine, CertificationRequest
from repro.fleet import MicroBatcher
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0], [5.0]])


@pytest.fixture
def engine(tmp_path):
    # A runtime-backed engine, like the ones the server pools: the batch
    # flush reads its window stats off runtime.last_batch_stats.
    return CertificationEngine(
        max_depth=1,
        domain="box",
        runtime=CertificationRuntime(tmp_path / "cache", shared_memory=False),
    )


def _request(dataset, row):
    return CertificationRequest(dataset, np.asarray([row]), RemovalPoisoningModel(1))


class TestWindowPooling:
    def test_lone_request_matches_direct_verify(self, engine):
        dataset = well_separated_dataset()
        batcher = MicroBatcher(window_seconds=0.01)
        report = batcher.certify_one(engine, _request(dataset, POINTS[0]))
        direct = engine.verify(
            CertificationRequest(dataset, POINTS[:1], RemovalPoisoningModel(1))
        )
        assert len(report.results) == 1
        assert report.results[0].status == direct.results[0].status
        assert report.results[0].predicted_class == direct.results[0].predicted_class
        assert report.runtime_stats is not None

    def test_concurrent_storm_pools_into_one_window(self, engine):
        dataset = well_separated_dataset()
        # A wide window so all three threads deterministically join the
        # leader's window before it flushes.
        batcher = MicroBatcher(window_seconds=0.5)
        barrier = threading.Barrier(len(POINTS))
        reports = [None] * len(POINTS)
        errors = []

        def storm(i):
            try:
                barrier.wait(timeout=10)
                reports[i] = batcher.certify_one(engine, _request(dataset, POINTS[i]))
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [
            threading.Thread(target=storm, args=(i,)) for i in range(len(POINTS))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        direct = engine.verify(
            CertificationRequest(dataset, POINTS, RemovalPoisoningModel(1))
        )
        for i, report in enumerate(reports):
            assert report is not None
            assert len(report.results) == 1
            assert report.results[0].status == direct.results[i].status
        # Every frame shares the window's batch-level accounting: the pooled
        # flush ran the learner once per distinct point, not once per frame
        # per point, and all three reports carry the same stats snapshot.
        stats = [r.runtime_stats for r in reports]
        assert stats[0] == stats[1] == stats[2]
        assert stats[0]["learner_invocations"] <= len(POINTS)

    def test_distinct_models_never_pool(self, engine):
        dataset = well_separated_dataset()
        batcher = MicroBatcher(window_seconds=0.2)
        results = {}

        def run(budget):
            request = CertificationRequest(
                dataset, POINTS[:1], RemovalPoisoningModel(budget)
            )
            results[budget] = batcher.certify_one(engine, request)

        threads = [threading.Thread(target=run, args=(n,)) for n in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # Budgets 1 and 2 are different wire models: each report's claimed
        # budget must match its own request, not a pooled neighbour's.
        assert results[1].results[0].poisoning_amount == 1
        assert results[2].results[0].poisoning_amount == 2


class TestFailurePropagation:
    def test_flush_error_reaches_every_pooled_frame(self):
        class ExplodingScheduler:
            def stream_rows(self, dataset, model, rows, n_jobs):
                raise RuntimeError("scheduler exploded")

        class ExplodingEngine:
            scheduler = ExplodingScheduler()
            runtime = None

        dataset = well_separated_dataset()
        batcher = MicroBatcher(window_seconds=0.01)
        with pytest.raises(RuntimeError, match="scheduler exploded"):
            batcher.certify_one(ExplodingEngine(), _request(dataset, POINTS[0]))
