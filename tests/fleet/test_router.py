"""Router tests: shard locality, failover, replication, fan-out, error relay.

These run real :class:`CertificationServer` backends over loopback TCP plus a
:class:`CertificationRouter`, the exact topology of the CI fleet smoke — and
one deliberately unfaithful backend (:class:`FlakyBackend`) that speaks just
enough protocol to die mid-stream on cue, making failover deterministic.
"""

import socket
import threading

import numpy as np
import pytest

from repro.api import SCHEMA_VERSION
from repro.fleet import CertificationRouter, HashRing, shard_key
from repro.fleet.router import _FAILOVERS
from repro.poisoning.models import RemovalPoisoningModel
from repro.service import (
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    CertificationClient,
    CertificationServer,
    ProtocolError,
    RemoteError,
    wait_for_server,
)
from repro.service.protocol import dataset_to_wire, encode_frame, read_frame
from tests.conftest import well_separated_dataset

POINTS = np.array([[0.5], [11.0]])


def _failover_count() -> float:
    series = _FAILOVERS.snapshot().get("series", [])
    return sum(row["value"] for row in series)


@pytest.fixture
def fleet(tmp_path):
    """Two real TCP backends behind a router, all in-process."""
    s1 = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "c1")
    s2 = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "c2")
    s1.start()
    s2.start()
    router = CertificationRouter(
        [s1.address, s2.address], tcp="127.0.0.1:0", request_timeout=120.0
    )
    router.start()
    wait_for_server(router.address, timeout=30)
    try:
        yield router, s1, s2
    finally:
        router.close()
        s1.close()
        s2.close()


class TestRouting:
    def test_hello_identifies_router(self, fleet):
        router, s1, s2 = fleet
        with CertificationClient(router.address) as client:
            info = client.server_info
            assert info["role"] == "router"
            assert info["protocol"] == PROTOCOL_VERSION
            assert sorted(info["backends"]) == sorted([s1.address, s2.address])

    def test_warm_rerun_hits_the_same_shard(self, fleet):
        """Acceptance: repeated requests for a dataset land on one backend."""
        router, s1, s2 = fleet
        dataset = well_separated_dataset()
        with CertificationClient(router.address, max_depth=1, domain="box") as client:
            cold = client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
            assert cold.runtime_stats["learner_invocations"] > 0
            warm = client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
            # Zero learner work is only possible if the second request
            # reached the same backend's warm verdict cache.
            assert warm.runtime_stats["learner_invocations"] == 0
            assert [r.status for r in warm.results] == [r.status for r in cold.results]

    def test_shard_owner_matches_ring_prediction(self, fleet):
        router, s1, s2 = fleet
        dataset = well_separated_dataset()
        ring = HashRing([s1.address, s2.address])
        owner = ring.primary(shard_key(dataset_to_wire(dataset)))
        sibling = s2 if owner == s1.address else s1
        with CertificationClient(router.address, max_depth=1, domain="box") as client:
            client.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
        # The predicted owner's cache holds the verdicts; the sibling's is
        # empty (replication only fills the *owner* from siblings).
        owner_server = s1 if owner == s1.address else s2
        assert owner_server.runtime.cache.stats()["verdicts"] == len(POINTS)
        assert sibling.runtime.cache.stats()["verdicts"] == 0

    def test_stream_through_router(self, fleet):
        router, _, _ = fleet
        dataset = well_separated_dataset()
        with CertificationClient(router.address, max_depth=1, domain="box") as client:
            results = list(
                client.certify_stream(dataset, POINTS, RemovalPoisoningModel(1))
            )
        assert [r.status.value for r in results] == ["robust", "robust"]

    def test_remote_error_relayed_without_failover(self, fleet):
        router, _, _ = fleet
        before = _failover_count()
        with CertificationClient(router.address, max_depth=1, domain="box") as client:
            with pytest.raises(RemoteError):
                client.call(
                    "certify",
                    {
                        "dataset": {"name": "no-such-dataset"},
                        "points": [[0.0]],
                        "model": {"family": "removal", "n": 1},
                        "engine": {},
                    },
                )
            # An application error is the backend *answering*, not dying:
            # the router must relay it, not burn through the ring.
            assert _failover_count() == before
            assert client.ping()["pong"] is True

    def test_fan_out_reaches_every_backend(self, fleet):
        router, s1, s2 = fleet
        with CertificationClient(router.address) as client:
            result = client.call("cache_stats", {})
        assert sorted(result["backends"]) == sorted([s1.address, s2.address])
        assert result["errors"] == {}

    def test_router_stats_lists_backends(self, fleet):
        router, s1, s2 = fleet
        with CertificationClient(router.address) as client:
            stats = client.call("stats", {})
        assert stats["backends"] == {s1.address: True, s2.address: True}


class TestReplication:
    def test_owner_filled_from_sibling_cache(self, tmp_path):
        """Acceptance: verdicts certified on one server answer on another."""
        s1 = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "c1")
        s2 = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "c2")
        s1.start()
        s2.start()
        router = None
        try:
            backends = [s1.address, s2.address]
            dataset = well_separated_dataset()
            owner = HashRing(backends).primary(shard_key(dataset_to_wire(dataset)))
            sibling = next(b for b in backends if b != owner)
            # Warm the *sibling* — the backend the router will NOT pick.
            with CertificationClient(sibling, max_depth=1, domain="box") as direct:
                direct.certify_batch(dataset, POINTS, RemovalPoisoningModel(1))
            router = CertificationRouter(
                backends, tcp="127.0.0.1:0", request_timeout=120.0
            )
            router.start()
            wait_for_server(router.address, timeout=30)
            with CertificationClient(
                router.address, max_depth=1, domain="box"
            ) as client:
                report = client.certify_batch(
                    dataset, POINTS, RemovalPoisoningModel(1)
                )
            # The owner answered entirely from rows replicated off the
            # sibling: no learner ran anywhere for this request.
            assert report.runtime_stats["learner_invocations"] == 0
            assert report.runtime_stats["cache_hits"] == len(POINTS)
        finally:
            if router is not None:
                router.close()
            s1.close()
            s2.close()


class FlakyBackend:
    """A protocol imposter that dies partway through a certify stream.

    Answers ``hello`` and ``ping`` faithfully, then serves ``die_after``
    pre-baked result frames of any ``certify_stream`` and drops the
    connection without an end frame — the deterministic stand-in for a
    backend crashing mid-request.
    """

    def __init__(self, results_wire, *, die_after: int = 1):
        self.results_wire = list(results_wire)
        self.die_after = die_after
        self.streams_served = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        host, port = self._listener.getsockname()
        self.address = f"{host}:{port}"
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def close(self):
        self._listener.close()

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        reader = conn.makefile("rb")
        writer = conn.makefile("wb")

        def send(payload):
            writer.write(encode_frame(payload))
            writer.flush()

        try:
            while True:
                frame = read_frame(reader)
                if frame is None:
                    return
                op, fid = frame.get("op"), frame.get("id")
                if op == "hello":
                    send({"id": fid, "ok": True, "result": {
                        "protocol": PROTOCOL_VERSION,
                        "protocol_minor": PROTOCOL_MINOR,
                        "schema_version": SCHEMA_VERSION,
                        "server_version": "flaky",
                        "pid": 0,
                        "backend_id": self.address,
                    }})
                elif op == "ping":
                    send({"id": fid, "ok": True,
                          "result": {"pong": True, "uptime_seconds": 0.0}})
                elif op == "certify_stream":
                    self.streams_served += 1
                    for index in range(self.die_after):
                        send({"id": fid, "event": "result", "index": index,
                              "result": self.results_wire[index]})
                    conn.shutdown(socket.SHUT_RDWR)
                    return
                else:
                    send({"id": fid, "ok": False, "error": {
                        "type": "ProtocolError",
                        "message": f"flaky backend: unknown op {op!r}",
                    }})
        except (OSError, ProtocolError, ValueError):
            return
        finally:
            conn.close()


class TestFailover:
    def _fleet_with_flaky_primary(self, tmp_path, dataset, results_wire):
        """A (flaky, real) pair where the *flaky* node owns the dataset.

        The flaky backend's ephemeral port changes the ring layout; re-bind
        until the ring puts the dataset's shard on the flaky node (p=1/2
        per attempt, so a handful of tries suffice deterministically).
        """
        real = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "real")
        real.start()
        key = shard_key(dataset_to_wire(dataset))
        for _ in range(64):
            flaky = FlakyBackend(results_wire, die_after=1)
            ring = HashRing([flaky.address, real.address])
            if ring.primary(key) == flaky.address:
                return flaky, real
            flaky.close()
        real.close()
        raise AssertionError("could not place the flaky backend as shard owner")

    def test_mid_stream_death_fails_over_with_renumbered_indices(self, tmp_path):
        """Acceptance: a backend dying mid-batch still yields a full report."""
        dataset = well_separated_dataset()
        # Bake wire results for the flaky node to serve before dying: the
        # real verdicts for the same points, straight off a real server.
        seed = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "seed")
        seed.start()
        with CertificationClient(seed.address, max_depth=1, domain="box") as c:
            baked = [
                r.to_dict()
                for r in c.certify_stream(dataset, POINTS, RemovalPoisoningModel(1))
            ]
        seed.close()
        flaky, real = self._fleet_with_flaky_primary(tmp_path, dataset, baked)
        router = CertificationRouter(
            [flaky.address, real.address],
            tcp="127.0.0.1:0",
            replicate=False,  # the imposter has no cache ops
            request_timeout=120.0,
        )
        router.start()
        wait_for_server(router.address, timeout=30)
        before = _failover_count()
        try:
            with CertificationClient(
                router.address, max_depth=1, domain="box"
            ) as client:
                results = list(
                    client.certify_stream(dataset, POINTS, RemovalPoisoningModel(1))
                )
            # The flaky owner served point 0 then died; the real backend
            # finished point 1.  The client saw one gapless, in-order
            # stream with every verdict present and correct.
            assert flaky.streams_served == 1
            assert [r.status.value for r in results] == ["robust", "robust"]
            assert len(results) == len(POINTS)
            assert _failover_count() == before + 1
            # Only the unserved tail was re-certified on the survivor.
            assert real.runtime.cache.stats()["verdicts"] == 1
        finally:
            router.close()
            flaky.close()
            real.close()

    def test_dead_backend_skipped_after_first_failure(self, tmp_path):
        """After one observed death the router stops trying the corpse."""
        real = CertificationServer(tcp="127.0.0.1:0", cache_dir=tmp_path / "real")
        real.start()
        dataset = well_separated_dataset()
        key = shard_key(dataset_to_wire(dataset))
        # A port with nothing behind it: every connect is refused.  Re-bind
        # until the dead port *owns* the dataset's shard, so the first
        # request deterministically hits the corpse and fails over (the
        # alternative layout would leave liveness to the health-probe race).
        for _ in range(64):
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.bind(("127.0.0.1", 0))
            dead_address = "127.0.0.1:%d" % probe.getsockname()[1]
            probe.close()
            if HashRing([dead_address, real.address]).primary(key) == dead_address:
                break
        else:
            real.close()
            raise AssertionError("could not place the dead port as shard owner")
        router = CertificationRouter(
            [dead_address, real.address],
            tcp="127.0.0.1:0",
            replicate=False,
            request_timeout=120.0,
        )
        router.start()
        wait_for_server(router.address, timeout=30)
        try:
            with CertificationClient(
                router.address, max_depth=1, domain="box"
            ) as client:
                report = client.certify_batch(
                    dataset, POINTS, RemovalPoisoningModel(1)
                )
                assert len(report.results) == len(POINTS)
                # The first request hit the dead owner, failed over once;
                # afterwards the dead node is marked down and skipped.
                stats = client.call("stats", {})
                assert stats["backends"][dead_address] is False
                assert stats["backends"][real.address] is True
        finally:
            router.close()
            real.close()
