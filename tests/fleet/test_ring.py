"""Consistent-hash ring and shard-key tests (pure, no sockets)."""

import numpy as np
import pytest

from repro.fleet import HashRing, shard_key
from repro.service.protocol import dataset_to_wire
from tests.conftest import well_separated_dataset

BACKENDS = ["10.0.0.1:7301", "10.0.0.2:7301", "10.0.0.3:7301"]


class TestShardKey:
    def test_deterministic(self):
        payload = {"name": "iris", "scale": 0.5, "seed": 0}
        assert shard_key(payload) == shard_key(payload)

    def test_key_order_irrelevant(self):
        assert shard_key({"a": 1, "b": 2}) == shard_key({"b": 2, "a": 1})

    def test_distinct_payloads_distinct_keys(self):
        assert shard_key({"name": "iris"}) != shard_key({"name": "wdbc"})

    def test_inline_dataset_payload_hashes(self):
        # The router shards on the wire payload without decoding it; the
        # same dataset serialized twice must land on the same shard.
        dataset = well_separated_dataset()
        assert shard_key(dataset_to_wire(dataset)) == shard_key(
            dataset_to_wire(dataset)
        )


class TestHashRing:
    def test_primary_is_deterministic(self):
        ring = HashRing(BACKENDS)
        again = HashRing(list(BACKENDS))
        for i in range(50):
            key = shard_key({"name": f"ds-{i}"})
            assert ring.primary(key) == again.primary(key)

    def test_all_backends_get_keys(self):
        # 64 vnodes per backend keep the ring balanced enough that 200
        # random keys cannot all miss one of three backends.
        ring = HashRing(BACKENDS)
        owners = {ring.primary(shard_key({"name": f"ds-{i}"})) for i in range(200)}
        assert owners == set(BACKENDS)

    def test_preference_distinct_and_primary_first(self):
        ring = HashRing(BACKENDS)
        for i in range(50):
            key = shard_key({"name": f"ds-{i}"})
            preference = ring.preference(key, count=3)
            assert preference[0] == ring.primary(key)
            assert len(preference) == len(set(preference)) == 3

    def test_removing_a_backend_only_moves_its_keys(self):
        # Consistent hashing's point: keys owned by surviving backends
        # stay put when one backend leaves the ring.
        full = HashRing(BACKENDS)
        reduced = HashRing(BACKENDS[:2])
        for i in range(100):
            key = shard_key({"name": f"ds-{i}"})
            owner = full.primary(key)
            if owner in BACKENDS[:2]:
                assert reduced.primary(key) == owner

    def test_failover_target_matches_preference(self):
        ring = HashRing(BACKENDS)
        key = shard_key({"name": "ds"})
        preference = ring.preference(key, count=len(BACKENDS))
        # The second preference is exactly where a failed request lands.
        assert preference[1] != preference[0]
        assert preference[1] in BACKENDS

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_backends_rejected(self):
        with pytest.raises(ValueError):
            HashRing(["a:1", "a:1"])

    def test_numpy_payloads_hash_via_canonical_json(self):
        # Wire payloads may carry lists produced from numpy arrays; the
        # canonical JSON encoder must treat them like plain lists.
        a = shard_key({"X": np.asarray([[1.0, 2.0]]).tolist()})
        b = shard_key({"X": [[1.0, 2.0]]})
        assert a == b
