"""The analyzer must hold on this repository itself.

This is the same gate CI runs (`repro analyze src --baseline
analysis_baseline.json`): every rule over the real `src/` tree, with the
committed baseline.  A regression that reintroduces a silent swallow, an
unlocked access to guarded state, or schema drift fails here first.
"""

import json
from pathlib import Path

from repro.analysis import load_baseline, run_analysis
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis_baseline.json"


def test_source_tree_is_clean_against_baseline():
    baseline = load_baseline(BASELINE) if BASELINE.is_file() else {}
    report = run_analysis(REPO_ROOT, paths=("src",), baseline=baseline)
    details = "\n".join(
        f"{f.location()} [{f.rule}] {f.message}" for f in report.new_findings
    )
    assert report.ok, f"non-baselined findings in src/:\n{details}"
    assert report.stale_baseline == [], (
        "baseline entries no longer match any finding; prune analysis_baseline.json: "
        f"{report.stale_baseline}"
    )


def test_committed_baseline_is_empty_or_justified():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    for entry in payload["findings"]:
        assert entry.get("justification"), (
            f"baselined finding {entry['fingerprint']} has no justification"
        )


def test_cli_analyze_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["analyze", "src", "--baseline", str(BASELINE)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 finding(s)" in out


def test_cli_analyze_json_format(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["analyze", "src", "--rule", "schema-drift", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True


def test_cli_unknown_rule_is_usage_error(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["analyze", "--rule", "no-such-rule"])
    assert code == 2


def test_cli_nonzero_exit_on_findings(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "src" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def f():\n    try:\n        g()\n    except Exception:\n        pass\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    code = main(["analyze", "src", "--rule", "exception-taxonomy"])
    out = capsys.readouterr().out
    assert code == 1
    assert "exception-taxonomy" in out


def test_cli_write_baseline_round_trip(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "src" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def f():\n    try:\n        g()\n    except Exception:\n        pass\n",
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    assert main(["analyze", "src", "--write-baseline"]) == 0
    capsys.readouterr()
    code = main(["analyze", "src"])
    out = capsys.readouterr().out
    assert code == 0, out
