"""Framework-level tests: suppressions, fingerprints, baselines, the runner."""

import ast

import pytest

from repro.analysis.core import (
    Finding,
    Project,
    SourceModule,
    all_rules,
    fingerprint_findings,
    load_baseline,
    rule_names,
    run_analysis,
    write_baseline,
)


class AlwaysFireRule:
    """Test double: one finding per line containing the token FIRE."""

    name = "always-fire"
    description = "fires on every line containing FIRE"

    def check(self, project):
        for module in project.iter_modules():
            for lineno, text in enumerate(module.lines, start=1):
                if "FIRE" in text:
                    yield Finding(
                        rule=self.name, path=module.path, line=lineno, message="boom"
                    )


def _write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestSuppressions:
    def test_same_line_suppression(self):
        module = SourceModule("m.py", "x = 1  # repro: ignore\n")
        assert module.is_suppressed(1, "any-rule")

    def test_rule_scoped_suppression(self):
        module = SourceModule("m.py", "x = 1  # repro: ignore[lock-discipline]\n")
        assert module.is_suppressed(1, "lock-discipline")
        assert not module.is_suppressed(1, "schema-drift")

    def test_preceding_comment_line_suppression(self):
        source = "# repro: ignore[metric-hygiene]\nx = 1\n"
        module = SourceModule("m.py", source)
        assert module.is_suppressed(2, "metric-hygiene")

    def test_preceding_code_line_does_not_suppress(self):
        source = "y = 0  # repro: ignore\nx = 1\n"
        module = SourceModule("m.py", source)
        assert module.is_suppressed(1, "whatever")
        assert not module.is_suppressed(2, "whatever")

    def test_multiple_rules_in_one_marker(self):
        module = SourceModule("m.py", "x = 1  # repro: ignore[a, b]\n")
        assert module.is_suppressed(1, "a")
        assert module.is_suppressed(1, "b")
        assert not module.is_suppressed(1, "c")


class TestFingerprints:
    def test_identical_findings_get_distinct_ordinals(self):
        findings = [
            Finding("r", "p.py", 3, "dup"),
            Finding("r", "p.py", 9, "dup"),
        ]
        pairs = fingerprint_findings(findings)
        assert pairs[0][1] != pairs[1][1]

    def test_fingerprint_survives_line_drift(self):
        before = fingerprint_findings([Finding("r", "p.py", 3, "msg")])[0][1]
        after = fingerprint_findings([Finding("r", "p.py", 77, "msg")])[0][1]
        assert before == after


class TestBaseline:
    def test_round_trip(self, tmp_path):
        _write(tmp_path, "src/mod.py", "value = 1  # FIRE\n")
        rule = AlwaysFireRule()
        first = run_analysis(tmp_path, paths=("src",), rules=[rule])
        assert len(first.new_findings) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings, justification="test")
        baseline = load_baseline(baseline_path)
        assert len(baseline) == 1

        second = run_analysis(tmp_path, paths=("src",), rules=[rule], baseline=baseline)
        assert second.ok
        assert len(second.baselined) == 1
        assert second.stale_baseline == []

    def test_stale_entries_are_reported(self, tmp_path):
        _write(tmp_path, "src/mod.py", "value = 1  # FIRE\n")
        rule = AlwaysFireRule()
        first = run_analysis(tmp_path, paths=("src",), rules=[rule])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)

        _write(tmp_path, "src/mod.py", "value = 1\n")  # violation fixed
        second = run_analysis(tmp_path, paths=("src",), rules=[rule], baseline=baseline)
        assert second.ok
        assert len(second.stale_baseline) == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = _write(tmp_path, "baseline.json", '{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRunner:
    def test_suppressed_findings_are_counted_not_reported(self, tmp_path):
        _write(tmp_path, "src/mod.py", "value = 1  # FIRE  # repro: ignore\n")
        report = run_analysis(tmp_path, paths=("src",), rules=[AlwaysFireRule()])
        assert report.ok
        assert report.suppressed_count == 1

    def test_parse_error_becomes_finding(self, tmp_path):
        _write(tmp_path, "src/broken.py", "def broken(:\n")
        report = run_analysis(tmp_path, paths=("src",), rules=[])
        assert [f.rule for f in report.new_findings] == ["parse-error"]

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            all_rules(["no-such-rule"])

    def test_registry_has_all_five_rules(self):
        assert set(rule_names()) >= {
            "exception-taxonomy",
            "lock-discipline",
            "metric-hygiene",
            "schema-drift",
            "soundness-boundary",
        }


class TestProject:
    def test_load_outside_scan_roots(self, tmp_path):
        _write(tmp_path, "src/a.py", "x = 1\n")
        _write(tmp_path, "tests/t.py", "y = 2\n")
        project = Project(tmp_path, paths=("src",))
        assert project.load("tests/t.py") is not None
        assert project.load("missing.py") is None

    def test_find_module_by_suffix(self, tmp_path):
        _write(tmp_path, "src/pkg/mod.py", "x = 1\n")
        project = Project(tmp_path, paths=("src",))
        module = project.find_module("pkg/mod.py")
        assert module is not None
        assert isinstance(module.tree, ast.Module)
