"""Per-rule fixture tests: each rule fires, stays quiet on clean code, and
honours ``# repro: ignore[rule]`` suppressions."""

import textwrap

from repro.analysis.core import run_analysis
from repro.analysis.rules.exception_taxonomy import Boundary, ExceptionTaxonomyRule
from repro.analysis.rules.lock_discipline import (
    AttrGuard,
    GlobalGuard,
    LockDisciplineRule,
)
from repro.analysis.rules.metric_hygiene import MetricHygieneRule
from repro.analysis.rules.schema_drift import SchemaDriftRule, SchemaSpec
from repro.analysis.rules.soundness import KernelSpec, SoundnessBoundaryRule


def _write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")


def _run(tmp_path, rule, paths=("src",)):
    report = run_analysis(tmp_path, paths=paths, rules=[rule])
    return report


class TestLockDiscipline:
    def _rule(self):
        return LockDisciplineRule(
            attr_guards=[AttrGuard("mod.py", ("Widget",), ("items",), "_lock")],
            global_guards=[GlobalGuard("glob.py", ("_state",), "_glock")],
        )

    def test_unlocked_access_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            class Widget:
                def __init__(self):
                    self.items = []

                def size(self):
                    return len(self.items)
            """,
        )
        report = _run(tmp_path, self._rule())
        assert [f.rule for f in report.new_findings] == ["lock-discipline"]
        assert "size()" in report.new_findings[0].message

    def test_locked_access_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            class Widget:
                def size(self):
                    with self._lock:
                        return len(self.items)
            """,
        )
        assert _run(tmp_path, self._rule()).ok

    def test_locked_suffix_convention_is_exempt(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            class Widget:
                def _size_locked(self):
                    return len(self.items)
            """,
        )
        assert _run(tmp_path, self._rule()).ok

    def test_suppression_silences_finding(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            class Widget:
                def size(self):
                    return len(self.items)  # repro: ignore[lock-discipline]
            """,
        )
        report = _run(tmp_path, self._rule())
        assert report.ok
        assert report.suppressed_count == 1

    def test_global_guard(self, tmp_path):
        _write(
            tmp_path,
            "src/glob.py",
            """
            _state = {}

            def bad():
                return _state.get("x")

            def good():
                with _glock:
                    return _state.get("x")
            """,
        )
        report = _run(tmp_path, self._rule())
        assert len(report.new_findings) == 1
        assert "bad()" in report.new_findings[0].message


class TestSoundnessBoundary:
    def _rule(self, kernels=()):
        return SoundnessBoundaryRule(
            scopes=("abstract/",),
            import_exempt=("abstract/driver.py",),
            compare_exempt=("abstract/interval.py",),
            kernels=kernels,
        )

    def test_concrete_import_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/trans.py",
            """
            from repro.core.learner import DecisionTreeLearner
            """,
        )
        report = _run(tmp_path, self._rule())
        assert [f.rule for f in report.new_findings] == ["soundness-boundary"]

    def test_exempt_driver_may_import_concrete(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/driver.py",
            """
            from repro.core.learner import DecisionTreeLearner
            """,
        )
        assert _run(tmp_path, self._rule()).ok

    def test_raw_bound_comparison_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/trans.py",
            """
            def definitely_zero(interval):
                return interval.hi <= 0.0
            """,
        )
        report = _run(tmp_path, self._rule())
        assert len(report.new_findings) == 1
        assert ".hi" in report.new_findings[0].message

    def test_helper_call_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/trans.py",
            """
            def definitely_zero(interval):
                return interval.upper_at_most(0.0)
            """,
        )
        assert _run(tmp_path, self._rule()).ok

    def test_suppressed_bound_comparison(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/trans.py",
            """
            def definitely_zero(interval):
                return interval.hi <= 0.0  # repro: ignore[soundness-boundary]
            """,
        )
        report = _run(tmp_path, self._rule())
        assert report.ok
        assert report.suppressed_count == 1

    def test_kernel_without_oracle_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/kern.py",
            """
            def _kernel(x):
                return x
            """,
        )
        _write(tmp_path, "tests/test_kern.py", "from abstract.kern import _kernel\n")
        spec = KernelSpec("abstract/kern.py", "_kernel", "_kernel_reference", "tests/test_kern.py")
        report = _run(tmp_path, self._rule(kernels=[spec]))
        messages = " | ".join(f.message for f in report.new_findings)
        assert "_kernel_reference" in messages

    def test_registered_kernel_with_test_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/kern.py",
            """
            def _kernel(x):
                return x

            def _kernel_reference(x):
                return x
            """,
        )
        _write(
            tmp_path,
            "tests/test_kern.py",
            """
            from abstract.kern import _kernel, _kernel_reference

            def test_parity():
                assert _kernel(1) == _kernel_reference(1)
            """,
        )
        spec = KernelSpec("abstract/kern.py", "_kernel", "_kernel_reference", "tests/test_kern.py")
        assert _run(tmp_path, self._rule(kernels=[spec])).ok

    def test_missing_test_module_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/abstract/kern.py",
            """
            def _kernel(x):
                return x

            def _kernel_reference(x):
                return x
            """,
        )
        spec = KernelSpec("abstract/kern.py", "_kernel", "_kernel_reference", "tests/gone.py")
        report = _run(tmp_path, self._rule(kernels=[spec]))
        assert any("missing" in f.message for f in report.new_findings)


class TestMetricHygiene:
    def test_dynamic_metric_name_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            from repro.telemetry import counter

            def make(i):
                return counter(f"requests_{i}")
            """,
        )
        report = _run(tmp_path, MetricHygieneRule())
        assert [f.rule for f in report.new_findings] == ["metric-hygiene"]
        assert "non-literal" in report.new_findings[0].message

    def test_camel_case_name_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            from repro.telemetry import counter

            REQS = counter("RequestsTotal")
            """,
        )
        report = _run(tmp_path, MetricHygieneRule())
        assert any("snake_case" in f.message for f in report.new_findings)

    def test_dynamic_labelnames_fire(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            from repro.telemetry import counter

            KEYS = ("route",)
            REQS = counter("requests_total", labelnames=KEYS)
            """,
        )
        report = _run(tmp_path, MetricHygieneRule())
        assert any("labelnames" in f.message for f in report.new_findings)

    def test_fstring_label_value_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def record(REQS, path):
                REQS.inc(route=f"/{path}")
            """,
        )
        report = _run(tmp_path, MetricHygieneRule())
        assert any("f-string" in f.message for f in report.new_findings)

    def test_clean_definition_and_record_site(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            from repro.telemetry import counter

            REQS = counter("requests_total", labelnames=("route",))

            def record(route):
                REQS.inc(route=route)
                REQS.inc(amount=len(route))
            """,
        )
        assert _run(tmp_path, MetricHygieneRule()).ok

    def test_suppressed_dynamic_label(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def record(REQS, path):
                REQS.inc(route=f"/{path}")  # repro: ignore[metric-hygiene]
            """,
        )
        report = _run(tmp_path, MetricHygieneRule())
        assert report.ok
        assert report.suppressed_count == 1

    def test_exempt_module_is_skipped(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/telemetry/metrics.py",
            """
            def merge(self, name):
                return self.registry.counter(name)
            """,
        )
        assert _run(tmp_path, MetricHygieneRule()).ok


SCHEMA_FILES = {
    "src/res.py": """
        class R:
            def to_dict(self):
                return {"a": self.a, "b": self.b}

            @classmethod
            def from_dict(cls, payload):
                return cls(payload["a"], payload.get("b", 0))
        """,
    "src/rep.py": """
        CSV_FIELDS = ("index", "a", "b")
        """,
    "src/proto.py": """
        ENGINE_CONFIG_FIELDS = ("depth", "timeout_seconds")

        def model_to_wire(model):
            return {"family": "removal", "n": model.n}

        def model_from_wire(payload):
            family = payload.get("family")
            if family == "removal":
                return payload["n"]
            raise ValueError(family)
        """,
    "src/fp.py": """
        def engine_cache_key(engine):
            return f"d={engine.depth}"
        """,
}


class TestSchemaDrift:
    def _rule(self):
        return SchemaDriftRule(
            SchemaSpec(
                result_module="res.py",
                report_module="rep.py",
                protocol_module="proto.py",
                fingerprint_module="fp.py",
                non_cached_fields=("timeout_seconds",),
                extra_key_fields=(),
            )
        )

    def _write_all(self, tmp_path, overrides=None):
        files = dict(SCHEMA_FILES)
        files.update(overrides or {})
        for relpath, text in files.items():
            _write(tmp_path, relpath, text)

    def test_consistent_schemas_are_clean(self, tmp_path):
        self._write_all(tmp_path)
        assert _run(tmp_path, self._rule()).ok

    def test_missing_csv_field_fires(self, tmp_path):
        self._write_all(tmp_path, {"src/rep.py": 'CSV_FIELDS = ("index", "a")\n'})
        report = _run(tmp_path, self._rule())
        assert any("'b'" in f.message and "CSV" in f.message for f in report.new_findings)

    def test_write_only_field_fires(self, tmp_path):
        self._write_all(
            tmp_path,
            {
                "src/res.py": """
                class R:
                    def to_dict(self):
                        return {"a": self.a, "b": self.b}

                    @classmethod
                    def from_dict(cls, payload):
                        return cls(payload["a"], 0)
                """
            },
        )
        report = _run(tmp_path, self._rule())
        assert any("from_dict never reads 'b'" in f.message for f in report.new_findings)

    def test_cache_key_missing_field_fires(self, tmp_path):
        self._write_all(
            tmp_path,
            {
                "src/proto.py": SCHEMA_FILES["src/proto.py"].replace(
                    '("depth", "timeout_seconds")', '("depth", "impurity", "timeout_seconds")'
                )
            },
        )
        report = _run(tmp_path, self._rule())
        assert any("cache poisoning" in f.message for f in report.new_findings)

    def test_family_asymmetry_fires(self, tmp_path):
        self._write_all(
            tmp_path,
            {
                "src/proto.py": SCHEMA_FILES["src/proto.py"].replace(
                    'if family == "removal":',
                    'if family == "label-flip":\n                return None\n            if family == "removal":',
                )
            },
        )
        report = _run(tmp_path, self._rule())
        assert any("label-flip" in f.message for f in report.new_findings)

    def test_missing_anchor_is_a_finding(self, tmp_path):
        self._write_all(tmp_path, {"src/rep.py": "OTHER = 1\n"})
        report = _run(tmp_path, self._rule())
        assert any("anchor not found" in f.message for f in report.new_findings)

    def test_suppressed_drift(self, tmp_path):
        self._write_all(
            tmp_path,
            {
                "src/rep.py": (
                    "# repro: ignore[schema-drift]\n"
                    'CSV_FIELDS = ("index", "a")\n'
                )
            },
        )
        report = _run(tmp_path, self._rule())
        assert report.ok
        assert report.suppressed_count == 1


class TestExceptionTaxonomy:
    def test_silent_swallow_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """,
        )
        report = _run(tmp_path, ExceptionTaxonomyRule(boundaries=()))
        assert [f.rule for f in report.new_findings] == ["exception-taxonomy"]

    def test_bare_except_fires(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f():
                try:
                    work()
                except:
                    x = 1
            """,
        )
        report = _run(tmp_path, ExceptionTaxonomyRule(boundaries=()))
        assert "bare except" in report.new_findings[0].message

    def test_reraise_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f():
                try:
                    work()
                except Exception:
                    cleanup()
                    raise
            """,
        )
        assert _run(tmp_path, ExceptionTaxonomyRule(boundaries=())).ok

    def test_classify_error_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            from repro.telemetry import events

            def f():
                try:
                    work()
                except Exception as error:
                    events.emit("failed", error_kind=events.classify_error(error))
            """,
        )
        assert _run(tmp_path, ExceptionTaxonomyRule(boundaries=())).ok

    def test_set_exception_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f(future):
                try:
                    work()
                except BaseException as error:
                    future.set_exception(error)
            """,
        )
        assert _run(tmp_path, ExceptionTaxonomyRule(boundaries=())).ok

    def test_declared_boundary_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/srv.py",
            """
            def handle(conn):
                try:
                    dispatch(conn)
                except Exception as error:
                    conn.send_error(error)
            """,
        )
        rule = ExceptionTaxonomyRule(
            boundaries=[Boundary("srv.py", "handle", "protocol boundary")]
        )
        assert _run(tmp_path, rule).ok

    def test_narrow_handler_is_ignored(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f():
                try:
                    work()
                except OSError:
                    pass
            """,
        )
        assert _run(tmp_path, ExceptionTaxonomyRule(boundaries=())).ok

    def test_suppressed_swallow(self, tmp_path):
        _write(
            tmp_path,
            "src/mod.py",
            """
            def f():
                try:
                    work()
                # best-effort cleanup  # repro: ignore[exception-taxonomy]
                except Exception:
                    pass
            """,
        )
        report = _run(tmp_path, ExceptionTaxonomyRule(boundaries=()))
        assert report.ok
        assert report.suppressed_count == 1
