"""Ablation studies called out by the paper's design discussion.

Two ablations are provided:

* **Box versus Disjuncts** (§6.3) — how many points each domain certifies and
  at what time/memory cost, on the same dataset and grid.  The paper's
  qualitative findings are: Disjuncts certifies at least as many points, but
  its cost grows much faster with the poisoning amount and tree depth, and
  Box occasionally wins on wall-clock-limited instances.
* **Optimal versus naïve ``cprob#``** (footnote 6) — the paper's
  implementation uses the optimal class-probability transformer; the ablation
  quantifies how much certification power is lost with the naïve interval
  transformer that §4.4 writes out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.domains.trainingset import AbstractTrainingSet
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    load_experiment_split,
    run_grid_cell,
    select_test_points,
)
from repro.utils.tables import TextTable
from repro.verify.abstract_learner import BoxAbstractLearner


@dataclass(frozen=True)
class DomainAblationRow:
    """Box-vs-Disjuncts comparison at one (depth, n) grid cell."""

    dataset: str
    depth: int
    poisoning_amount: int
    box_verified: int
    disjuncts_verified: int
    box_seconds: float
    disjuncts_seconds: float
    box_memory_mb: float
    disjuncts_memory_mb: float
    attempted: int


def compare_domains(
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
) -> List[DomainAblationRow]:
    """Run the §6.3 Box-vs-Disjuncts comparison on one dataset."""
    config = config or ExperimentConfig()
    split = load_experiment_split(dataset_name, config)
    test_points = select_test_points(split, config, dataset_name)
    rows: List[DomainAblationRow] = []
    for depth in config.depths:
        for n in sorted(config.amounts_for(dataset_name)):
            box_cell, _ = run_grid_cell(
                dataset_name, split, test_points, depth, "box", n, config
            )
            disjuncts_cell, _ = run_grid_cell(
                dataset_name, split, test_points, depth, "disjuncts", n, config
            )
            rows.append(
                DomainAblationRow(
                    dataset=dataset_name,
                    depth=depth,
                    poisoning_amount=n,
                    box_verified=box_cell.verified,
                    disjuncts_verified=disjuncts_cell.verified,
                    box_seconds=box_cell.average_seconds,
                    disjuncts_seconds=disjuncts_cell.average_seconds,
                    box_memory_mb=box_cell.average_peak_memory_bytes / 2**20,
                    disjuncts_memory_mb=disjuncts_cell.average_peak_memory_bytes / 2**20,
                    attempted=box_cell.attempted,
                )
            )
    return rows


def render_domain_ablation(rows: Sequence[DomainAblationRow]) -> str:
    table = TextTable(
        [
            "depth",
            "poisoning n",
            "box verified",
            "disjuncts verified",
            "box time (s)",
            "disjuncts time (s)",
            "box mem (MB)",
            "disjuncts mem (MB)",
        ]
    )
    for row in rows:
        table.add_row(
            [
                row.depth,
                row.poisoning_amount,
                row.box_verified,
                row.disjuncts_verified,
                row.box_seconds,
                row.disjuncts_seconds,
                row.box_memory_mb,
                row.disjuncts_memory_mb,
            ]
        )
    name = rows[0].dataset if rows else "(empty)"
    return f"Box vs Disjuncts ablation — {name}\n" + table.render()


@dataclass(frozen=True)
class CprobAblationRow:
    """Optimal-vs-naïve ``cprob#`` comparison at one (depth, n) grid cell."""

    dataset: str
    depth: int
    poisoning_amount: int
    optimal_certified: int
    box_transformer_certified: int
    optimal_mean_interval_width: float
    box_transformer_mean_interval_width: float
    attempted: int


def compare_cprob_transformers(
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
) -> List[CprobAblationRow]:
    """Quantify the footnote-6 claim: the optimal transformer is strictly tighter."""
    config = config or ExperimentConfig()
    split = load_experiment_split(dataset_name, config)
    test_points = select_test_points(split, config, dataset_name)
    rows: List[CprobAblationRow] = []
    for depth in config.depths:
        for n in sorted(config.amounts_for(dataset_name)):
            certified = {"optimal": 0, "box": 0}
            widths = {"optimal": [], "box": []}
            for method in ("optimal", "box"):
                learner = BoxAbstractLearner(max_depth=depth, cprob_method=method)
                for x in test_points:
                    trainset = AbstractTrainingSet.full(split.train, n)
                    run = learner.run(trainset, x)
                    if run.robust_class is not None:
                        certified[method] += 1
                    widths[method].append(
                        float(np.mean([interval.width for interval in run.class_intervals]))
                    )
            rows.append(
                CprobAblationRow(
                    dataset=dataset_name,
                    depth=depth,
                    poisoning_amount=n,
                    optimal_certified=certified["optimal"],
                    box_transformer_certified=certified["box"],
                    optimal_mean_interval_width=float(np.mean(widths["optimal"])),
                    box_transformer_mean_interval_width=float(np.mean(widths["box"])),
                    attempted=len(test_points),
                )
            )
    return rows


def render_cprob_ablation(rows: Sequence[CprobAblationRow]) -> str:
    table = TextTable(
        [
            "depth",
            "poisoning n",
            "certified (optimal)",
            "certified (naive)",
            "mean width (optimal)",
            "mean width (naive)",
        ]
    )
    for row in rows:
        table.add_row(
            [
                row.depth,
                row.poisoning_amount,
                row.optimal_certified,
                row.box_transformer_certified,
                row.optimal_mean_interval_width,
                row.box_transformer_mean_interval_width,
            ]
        )
    name = rows[0].dataset if rows else "(empty)"
    return f"cprob# transformer ablation (footnote 6) — {name}\n" + table.render()
