"""Experiment harness regenerating the paper's evaluation artifacts.

Every table and figure of §6 of the paper has a module here that produces the
corresponding rows/series from the public library API:

* :mod:`repro.experiments.table1` — Table 1 (dataset metrics and decision-tree
  test accuracies for depths 1–4).
* :mod:`repro.experiments.figure6` — Figure 6 (fraction of test points proven
  robust versus the poisoning amount ``n``, per dataset and depth).
* :mod:`repro.experiments.perf_figures` — Figures 7–11 (per-dataset number of
  verified points, average running time, and average peak memory, for the Box
  and disjunctive domains).
* :mod:`repro.experiments.ablations` — the §6.3 Box-vs-Disjuncts comparison
  and the footnote-6 ``cprob#`` transformer ablation.

The :mod:`repro.experiments.config` module centralizes the experimental
parameters (depths, poisoning grids, dataset scales, timeouts) with defaults
small enough for continuous benchmarking; pass a custom
:class:`~repro.experiments.config.ExperimentConfig` to approach paper-scale
runs.
"""

from repro.experiments.config import (
    DEFAULT_POISONING_AMOUNTS,
    ExperimentConfig,
    paper_scale_config,
    quick_config,
)
from repro.experiments.table1 import Table1Row, compute_table1, render_table1
from repro.experiments.figure6 import Figure6Series, compute_figure6, render_figure6
from repro.experiments.perf_figures import (
    FIGURE_FOR_DATASET,
    PerfPoint,
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.ablations import (
    CprobAblationRow,
    DomainAblationRow,
    compare_cprob_transformers,
    compare_domains,
    render_cprob_ablation,
    render_domain_ablation,
)

__all__ = [
    "DEFAULT_POISONING_AMOUNTS",
    "ExperimentConfig",
    "paper_scale_config",
    "quick_config",
    "Table1Row",
    "compute_table1",
    "render_table1",
    "Figure6Series",
    "compute_figure6",
    "render_figure6",
    "FIGURE_FOR_DATASET",
    "PerfPoint",
    "compute_performance_figure",
    "render_performance_figure",
    "CprobAblationRow",
    "DomainAblationRow",
    "compare_cprob_transformers",
    "compare_domains",
    "render_cprob_ablation",
    "render_domain_ablation",
]
