"""Experiment configuration shared by the table/figure harnesses.

The paper's evaluation (§6.1) fixes: tree depths 1–4, a doubling protocol over
the poisoning amount ``n``, a one-hour timeout per instance, and 100 test
points for the MNIST variants (the full test set for the UCI datasets).  The
:class:`ExperimentConfig` defaults are deliberately much smaller so that the
benchmark suite completes in minutes on a laptop; :func:`paper_scale_config`
returns a configuration that mirrors the paper's parameters for users who
want to spend the compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

#: Poisoning amounts forming the x-axes of the paper's figures (Figure 6–11).
DEFAULT_POISONING_AMOUNTS: Dict[str, Tuple[int, ...]] = {
    "iris": (1, 2, 4, 8),
    "mammography": (1, 2, 4, 8, 16, 32, 64),
    "wdbc": (1, 2, 4, 8, 16, 32, 64),
    "mnist17-binary": (1, 8, 64, 512),
    "mnist17-real": (1, 8, 64, 512),
}

#: The tree depths evaluated throughout the paper.
PAPER_DEPTHS: Tuple[int, ...] = (1, 2, 3, 4)

#: Default ``(n_remove, n_flip)`` grid for the composite removal+flip threat
#: model (the x-axis of the composite benchmark).  Chosen so the grid walks
#: both axes of the pair lattice: pure flips, pure removals, and mixed
#: contamination at matched total budgets.
DEFAULT_COMPOSITE_BUDGETS: Tuple[Tuple[int, int], ...] = (
    (0, 1),
    (1, 0),
    (1, 1),
    (2, 1),
    (1, 2),
    (2, 2),
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters controlling the experiment harnesses.

    Attributes
    ----------
    seed:
        Master seed for dataset generation and test-point subsampling.
    depths:
        Decision-tree depths to evaluate (the paper uses 1–4).
    n_test_points:
        Number of test points per dataset on which robustness is attempted
        (the paper uses the full UCI test sets and 100 MNIST digits).
    domains:
        Abstract domains to run; the headline Figure 6 counts a point as
        verified if *either* domain succeeds.
    poisoning_amounts:
        Per-dataset grid of ``n`` values; defaults to the paper's axes.
    composite_budgets:
        Grid of ``(n_remove, n_flip)`` pairs evaluated by the composite
        removal+flip benchmark.
    frontier_budgets:
        ``(max_remove, max_flip)`` caps of the composite Pareto-frontier
        sweep (the staircase searches the grid
        ``[0, max_remove] × [0, max_flip]`` per point).
    dataset_scales:
        Per-dataset generation scale overrides (``None`` entries fall back to
        the registry defaults; the value 1.0 is paper size).
    timeout_seconds:
        Per-instance wall-clock budget (the paper uses 3600 s).
    max_disjuncts:
        Resource limit of the disjunctive learner (stands in for the paper's
        memory limit).
    cprob_method:
        ``"optimal"`` (paper implementation) or ``"box"``.
    n_jobs:
        Worker processes per grid-cell batch (1 = serial); forwarded to
        :meth:`repro.api.CertificationEngine.certify_batch`.
    cache_dir:
        Optional persistent certification-cache directory.  When set, every
        grid cell runs through a :class:`~repro.runtime.CertificationRuntime`
        against it, so re-running an experiment (or running a different
        experiment that overlaps it) answers repeated queries from disk
        instead of re-running the learners.
    """

    seed: int = 0
    depths: Tuple[int, ...] = (1, 2)
    n_test_points: int = 8
    domains: Tuple[str, ...] = ("box", "disjuncts")
    poisoning_amounts: Mapping[str, Tuple[int, ...]] = field(
        default_factory=lambda: dict(DEFAULT_POISONING_AMOUNTS)
    )
    composite_budgets: Tuple[Tuple[int, int], ...] = DEFAULT_COMPOSITE_BUDGETS
    frontier_budgets: Tuple[int, int] = (2, 2)
    dataset_scales: Mapping[str, Optional[float]] = field(default_factory=dict)
    timeout_seconds: Optional[float] = 30.0
    max_disjuncts: int = 4096
    cprob_method: str = "optimal"
    n_jobs: int = 1
    cache_dir: Optional[str] = None

    def amounts_for(self, dataset_name: str) -> Tuple[int, ...]:
        """Poisoning grid for one dataset (falls back to a generic grid)."""
        return tuple(self.poisoning_amounts.get(dataset_name, (1, 2, 4, 8)))

    def scale_for(self, dataset_name: str) -> Optional[float]:
        """Dataset generation scale (``None`` means the registry default)."""
        return self.dataset_scales.get(dataset_name)

    def with_overrides(self, **changes: object) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


def quick_config(seed: int = 0) -> ExperimentConfig:
    """A configuration sized for the benchmark suite (minutes, not hours)."""
    return ExperimentConfig(
        seed=seed,
        depths=(1, 2),
        n_test_points=6,
        poisoning_amounts={
            "iris": (1, 2, 4),
            "mammography": (1, 4, 16),
            "wdbc": (1, 4, 16),
            "mnist17-binary": (1, 8, 64),
            "mnist17-real": (1, 8, 64),
        },
        dataset_scales={
            "iris": 0.6,
            "mammography": 0.3,
            "wdbc": 0.3,
            "mnist17-binary": 0.05,
            "mnist17-real": 0.02,
        },
        timeout_seconds=20.0,
        max_disjuncts=2048,
    )


def paper_scale_config(seed: int = 0) -> ExperimentConfig:
    """A configuration mirroring the paper's evaluation parameters.

    Warning: with the pure-Python learners this takes many hours; it exists to
    document exactly which knobs must be turned to reproduce §6 at full scale.
    """
    return ExperimentConfig(
        seed=seed,
        depths=PAPER_DEPTHS,
        n_test_points=100,
        poisoning_amounts=dict(DEFAULT_POISONING_AMOUNTS),
        dataset_scales={
            "iris": 1.0,
            "mammography": 1.0,
            "wdbc": 1.0,
            "mnist17-binary": 1.0,
            "mnist17-real": 1.0,
        },
        timeout_seconds=3600.0,
        max_disjuncts=1_000_000,
    )
