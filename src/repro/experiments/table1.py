"""Table 1: dataset metrics and decision-tree test-set accuracy (depths 1–4).

Table 1 of the paper records, for each of the five benchmark datasets, its
training/test sizes, feature space, class set, and the test accuracy of the
decision tree learned at depths 1–4 — establishing that the models whose
robustness is subsequently certified are actually worth using.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.learner import DecisionTreeLearner, evaluate_accuracy
from repro.datasets.registry import get_spec, list_datasets
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import load_experiment_split
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    dataset: str
    train_size: int
    test_size: int
    n_features: int
    feature_type: str
    n_classes: int
    accuracies: Dict[int, float]

    def accuracy_at(self, depth: int) -> float:
        return self.accuracies[depth]


def compute_table1(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Sequence[str]] = None,
    depths: Tuple[int, ...] = (1, 2, 3, 4),
) -> List[Table1Row]:
    """Recompute Table 1 on the (synthetic stand-in) benchmark datasets."""
    config = config or ExperimentConfig()
    rows: List[Table1Row] = []
    for name in datasets or list_datasets():
        spec = get_spec(name)
        split = load_experiment_split(name, config)
        accuracies: Dict[int, float] = {}
        for depth in depths:
            tree = DecisionTreeLearner(max_depth=depth).fit(split.train)
            accuracies[depth] = evaluate_accuracy(tree, split.test.X, split.test.y)
        rows.append(
            Table1Row(
                dataset=name,
                train_size=len(split.train),
                test_size=len(split.test),
                n_features=split.train.n_features,
                feature_type=spec.feature_type,
                n_classes=split.train.n_classes,
                accuracies=accuracies,
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the rows in the same layout as Table 1 of the paper."""
    depths = sorted(rows[0].accuracies) if rows else []
    headers = [
        "dataset",
        "train",
        "test",
        "features",
        "type",
        "classes",
        *[f"acc@d{depth} (%)" for depth in depths],
    ]
    table = TextTable(headers, float_digits=1)
    for row in rows:
        table.add_row(
            [
                row.dataset,
                row.train_size,
                row.test_size,
                row.n_features,
                row.feature_type,
                row.n_classes,
                *[100.0 * row.accuracies[depth] for depth in depths],
            ]
        )
    return table.render()
