"""Figure 6: fraction of test points proven robust versus the poisoning amount.

Figure 6 of the paper plots, for every dataset and tree depth, the fraction of
test points Antidote certifies as a function of the poisoning amount ``n``
(log-scaled x axis), counting a point as verified when *either* the Box or the
disjunctive domain succeeds.  This module is a thin client of the generic
budget-sweep machinery (:func:`repro.verify.search.robustness_sweep`): it
only chooses the grid, the engines, and the rendering — passing a ``model``
template regenerates the same figure for any scalar-budget threat family
(e.g. :class:`~repro.poisoning.models.LabelFlipModel`), not just the paper's
``Δn``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    load_experiment_split,
    make_engine,
    select_test_points,
)
from repro.poisoning.models import PerturbationModel
from repro.utils.tables import TextTable
from repro.verify.search import robustness_sweep


@dataclass(frozen=True)
class Figure6Series:
    """One line of Figure 6: a dataset/depth pair swept over ``n``."""

    dataset: str
    depth: int
    points: Tuple[Tuple[int, float], ...]  # (poisoning amount, fraction verified)
    attempted: int

    def fraction_at(self, poisoning_amount: int) -> Optional[float]:
        for n, fraction in self.points:
            if n == poisoning_amount:
                return fraction
        return None


def compute_figure6(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Sequence[str]] = None,
    *,
    model: Optional[PerturbationModel] = None,
) -> List[Figure6Series]:
    """Recompute the Figure 6 series for the requested datasets.

    ``model`` is the scalar-budget family template swept per level (``None``
    means the paper's ``Δn`` removal model); the budgets of
    ``config.poisoning_amounts`` are rebound on it via ``with_budget``.
    """
    config = config or ExperimentConfig()
    from repro.datasets.registry import list_datasets

    series: List[Figure6Series] = []
    for name in datasets or list_datasets():
        split = load_experiment_split(name, config)
        test_points = select_test_points(split, config, name)
        amounts = config.amounts_for(name)
        for depth in config.depths:
            engine = make_engine(depth, "either", config)
            records = robustness_sweep(
                engine,
                split.train,
                test_points,
                amounts,
                incremental=True,
                n_jobs=config.n_jobs,
                model=model,
            )
            fractions = {record.poisoning_amount: record.fraction_certified for record in records}
            # Levels skipped by the incremental protocol (because no point was
            # still certified) count as zero, exactly as in the paper's plots.
            points = tuple(
                (n, float(fractions.get(n, 0.0))) for n in sorted(amounts)
            )
            series.append(
                Figure6Series(
                    dataset=name,
                    depth=depth,
                    points=points,
                    attempted=len(test_points),
                )
            )
    return series


def render_figure6(series: Sequence[Figure6Series]) -> str:
    """Render the Figure 6 series as a table (one row per dataset/depth/n)."""
    table = TextTable(
        ["dataset", "depth", "poisoning n", "fraction verified", "test points"]
    )
    for line in series:
        for n, fraction in line.points:
            table.add_row([line.dataset, line.depth, n, fraction, line.attempted])
    return table.render()
