"""Figures 7–11: per-dataset efficacy, running time, and memory usage.

For each benchmark dataset the paper reports three panels per tree depth
(Figures 7, 8, 9, 10, 11): the number of test points verified, the average
per-instance running time, and the average peak memory, each as a function of
the poisoning amount ``n`` and separately for the Box and disjunctive
domains.  :func:`compute_performance_figure` regenerates all three series for
one dataset; :data:`FIGURE_FOR_DATASET` maps dataset names to the paper's
figure numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    GridCellResult,
    load_experiment_split,
    run_grid_cell,
    select_test_points,
)
from repro.utils.tables import TextTable

#: Mapping from dataset name to the figure of the paper it regenerates.
FIGURE_FOR_DATASET = {
    "mnist17-binary": "Figure 7",
    "iris": "Figure 8",
    "mammography": "Figure 9",
    "wdbc": "Figure 10",
    "mnist17-real": "Figure 11",
}


@dataclass(frozen=True)
class PerfPoint:
    """One point of a performance figure (a grid cell of the evaluation)."""

    dataset: str
    domain: str
    depth: int
    poisoning_amount: int
    attempted: int
    verified: int
    average_seconds: float
    average_peak_memory_mb: float
    timeouts: int
    resource_exhausted: int

    @classmethod
    def from_cell(cls, cell: GridCellResult) -> "PerfPoint":
        return cls(
            dataset=cell.dataset,
            domain=cell.domain,
            depth=cell.depth,
            poisoning_amount=cell.poisoning_amount,
            attempted=cell.attempted,
            verified=cell.verified,
            average_seconds=cell.average_seconds,
            average_peak_memory_mb=cell.average_peak_memory_bytes / (1024.0 * 1024.0),
            timeouts=cell.timeouts,
            resource_exhausted=cell.resource_exhausted,
        )


def compute_performance_figure(
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
    *,
    incremental: bool = True,
) -> List[PerfPoint]:
    """Regenerate the performance figure of one dataset.

    With ``incremental=True`` (the paper's protocol) a (domain, depth) series
    stops attempting larger ``n`` once no point is verified at the current
    level; the skipped levels are simply absent from the returned list, like
    the truncated series in the paper's plots.
    """
    config = config or ExperimentConfig()
    split = load_experiment_split(dataset_name, config)
    test_points = select_test_points(split, config, dataset_name)
    amounts = sorted(config.amounts_for(dataset_name))

    points: List[PerfPoint] = []
    for domain in config.domains:
        for depth in config.depths:
            for n in amounts:
                cell, _ = run_grid_cell(
                    dataset_name, split, test_points, depth, domain, n, config
                )
                points.append(PerfPoint.from_cell(cell))
                if incremental and cell.verified == 0:
                    break
    return points


def render_performance_figure(points: Sequence[PerfPoint]) -> str:
    """Render the three panels of a performance figure as one table."""
    name = points[0].dataset if points else "(empty)"
    figure = FIGURE_FOR_DATASET.get(name, "performance figure")
    table = TextTable(
        [
            "domain",
            "depth",
            "poisoning n",
            "verified",
            "attempted",
            "avg time (s)",
            "avg peak mem (MB)",
            "timeouts",
            "resource exhausted",
        ]
    )
    for point in sorted(
        points, key=lambda p: (p.domain, p.depth, p.poisoning_amount)
    ):
        table.add_row(
            [
                point.domain,
                point.depth,
                point.poisoning_amount,
                point.verified,
                point.attempted,
                point.average_seconds,
                point.average_peak_memory_mb,
                point.timeouts,
                point.resource_exhausted,
            ]
        )
    return f"{figure} — {name}\n" + table.render()
