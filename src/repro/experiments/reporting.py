"""Helpers for persisting regenerated tables and figure series to disk.

The benchmark harness writes every regenerated artifact under
``benchmarks/results/`` so that the numbers recorded in :file:`EXPERIMENTS.md`
can be re-derived and diffed after any change to the library.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def results_directory(base: Union[str, Path, None] = None) -> Path:
    """Directory where regenerated experiment artifacts are written."""
    if base is not None:
        path = Path(base)
    else:
        override = os.environ.get("REPRO_RESULTS_DIR")
        path = Path(override) if override else Path("benchmarks") / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_artifact(name: str, content: str, base: Union[str, Path, None] = None) -> Path:
    """Write one rendered table/series to ``<results>/<name>.txt`` and return the path."""
    directory = results_directory(base)
    path = directory / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path
