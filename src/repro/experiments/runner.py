"""Shared execution helpers for the experiment harnesses.

The harnesses all follow the same pattern: load a benchmark dataset at the
configured scale, pick a deterministic subset of test points, and run the
certification engine over a grid of (depth, domain, poisoning amount)
combinations while collecting per-instance timing and memory measurements.
This module factors that plumbing out of the per-figure modules.

Since the unified-API redesign the grid cells run on
:class:`repro.api.CertificationEngine` (one engine per (depth, domain) cell,
reused across every point, optionally parallel via ``config.n_jobs``) and
aggregate through :class:`repro.api.CertificationReport`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import CertificationEngine, CertificationReport
from repro.datasets.registry import load_dataset
from repro.datasets.splits import DatasetSplit
from repro.experiments.config import ExperimentConfig
from repro.poisoning.models import RemovalPoisoningModel
from repro.runtime import CertificationRuntime
from repro.utils.rng import derive_seed, make_rng
from repro.verify.result import VerificationResult
from repro.verify.robustness import PoisoningVerifier


def load_experiment_split(dataset_name: str, config: ExperimentConfig) -> DatasetSplit:
    """Load one benchmark dataset at the configured scale and seed."""
    return load_dataset(
        dataset_name, scale=config.scale_for(dataset_name), seed=config.seed
    )


def select_test_points(
    split: DatasetSplit, config: ExperimentConfig, dataset_name: str
) -> np.ndarray:
    """Pick the deterministic subset of test points robustness is attempted on.

    Mirrors the paper's protocol of fixing a random subset of the test set
    (footnote 9) — here sized by ``config.n_test_points``.
    """
    count = min(config.n_test_points, len(split.test))
    if count == 0:
        return np.empty((0, split.train.n_features))
    rng = make_rng(derive_seed(config.seed, "test-points", dataset_name))
    chosen = rng.choice(len(split.test), size=count, replace=False)
    return split.test.X[np.sort(chosen)]


#: One runtime (one sqlite connection, one stats accumulator) per cache
#: directory, shared by every grid cell of every experiment in the process.
_RUNTIMES: Dict[str, CertificationRuntime] = {}


def make_runtime(config: ExperimentConfig) -> Optional[CertificationRuntime]:
    """The certification runtime an experiment's engines share.

    Returns ``None`` when the config names no cache directory (engines then
    fall back to the default shared-memory-only behavior for parallel
    batches).
    """
    if config.cache_dir is None:
        return None
    key = str(Path(config.cache_dir).expanduser().resolve())
    runtime = _RUNTIMES.get(key)
    if runtime is None:
        runtime = _RUNTIMES[key] = CertificationRuntime(config.cache_dir)
    return runtime


def make_engine(
    depth: int, domain: str, config: ExperimentConfig
) -> CertificationEngine:
    """Build a certification engine for one grid cell of the experiment."""
    return CertificationEngine(
        max_depth=depth,
        domain=domain,
        cprob_method=config.cprob_method,
        timeout_seconds=config.timeout_seconds,
        max_disjuncts=config.max_disjuncts,
        runtime=make_runtime(config),
    )


def make_verifier(
    depth: int, domain: str, config: ExperimentConfig
) -> PoisoningVerifier:
    """Deprecated: build a legacy verifier for one grid cell.

    Kept for backwards compatibility; new code should use :func:`make_engine`.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return PoisoningVerifier(
            max_depth=depth,
            domain=domain,
            cprob_method=config.cprob_method,
            timeout_seconds=config.timeout_seconds,
            max_disjuncts=config.max_disjuncts,
        )


@dataclass(frozen=True)
class GridCellResult:
    """Aggregated verification results for one (depth, domain, n) grid cell."""

    dataset: str
    domain: str
    depth: int
    poisoning_amount: int
    attempted: int
    verified: int
    timeouts: int
    resource_exhausted: int
    average_seconds: float
    average_peak_memory_bytes: float

    @property
    def fraction_verified(self) -> float:
        return self.verified / self.attempted if self.attempted else 0.0

    @classmethod
    def from_report(
        cls,
        dataset_name: str,
        domain: str,
        depth: int,
        poisoning_amount: int,
        report: CertificationReport,
    ) -> "GridCellResult":
        """Project an engine report onto one grid-cell record."""
        counts = report.status_counts
        return cls(
            dataset=dataset_name,
            domain=domain,
            depth=depth,
            poisoning_amount=poisoning_amount,
            attempted=report.total,
            verified=report.certified_count,
            timeouts=counts["timeout"],
            resource_exhausted=counts["resource_exhausted"],
            average_seconds=report.mean_seconds,
            average_peak_memory_bytes=report.mean_peak_memory_bytes,
        )


def run_grid_cell(
    dataset_name: str,
    split: DatasetSplit,
    test_points: np.ndarray,
    depth: int,
    domain: str,
    poisoning_amount: int,
    config: ExperimentConfig,
) -> Tuple[GridCellResult, List[VerificationResult]]:
    """Verify every selected test point for one (depth, domain, n) cell."""
    engine = make_engine(depth, domain, config)
    report = engine.certify_batch(
        split.train,
        test_points,
        RemovalPoisoningModel(poisoning_amount),
        n_jobs=config.n_jobs,
    )
    cell = GridCellResult.from_report(
        dataset_name, domain, depth, poisoning_amount, report
    )
    return cell, list(report.results)


def summarize_results(
    dataset_name: str,
    domain: str,
    depth: int,
    poisoning_amount: int,
    results: Sequence[VerificationResult],
) -> GridCellResult:
    """Aggregate a list of per-point results into one grid-cell record."""
    report = CertificationReport(results=list(results), dataset_name=dataset_name)
    return GridCellResult.from_report(
        dataset_name, domain, depth, poisoning_amount, report
    )


def incremental_point_filter(
    results_by_point: Dict[int, VerificationResult]
) -> List[int]:
    """Indices of points still certified (the paper's incremental protocol)."""
    return [index for index, result in results_by_point.items() if result.is_certified]
