"""Periodic backend health checks for the router.

A background thread pings every backend on a fixed cadence and publishes
liveness as the ``router_backend_up`` gauge.  The router consults
:meth:`HealthMonitor.is_alive` to *skip* backends already known dead when
picking a failover target — the monitor is an optimization, not the
arbiter: a request that reaches a dead backend still fails over on its own
transport error, and :meth:`mark_dead` feeds that observation back so the
next request skips the corpse without waiting for the next probe cycle.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from repro.service.client import CertificationClient
from repro.service.protocol import ProtocolError, RemoteError
from repro.telemetry import events, metrics

__all__ = ["HealthMonitor"]

_BACKEND_UP = metrics.gauge(
    "router_backend_up",
    "Backend liveness as last observed (1 up, 0 down).",
    labelnames=("backend",),
)


class HealthMonitor:
    """Ping-based liveness tracking over a static backend list."""

    def __init__(
        self,
        backends: Sequence[str],
        *,
        interval: float = 2.0,
        connect_timeout: float = 2.0,
        request_timeout: float = 5.0,
    ) -> None:
        self.backends = tuple(backends)
        self.interval = interval
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        # Backends start alive: the first requests race the first probe
        # cycle, and optimistically routing to a dead backend just costs one
        # failover (pessimism would blackhole the whole fleet at startup).
        self._alive: Dict[str, bool] = {backend: True for backend in self.backends}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        for backend in self.backends:
            _BACKEND_UP.set(1.0, backend=backend)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is not None:
            return
        thread = threading.Thread(
            target=self._probe_loop, name="repro-route-health", daemon=True
        )
        thread.start()
        self._thread = thread

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.request_timeout + self.connect_timeout)
            self._thread = None

    # --------------------------------------------------------------- queries
    def is_alive(self, backend: str) -> bool:
        with self._lock:
            return self._alive.get(backend, True)

    def mark_dead(self, backend: str) -> None:
        """Record a transport failure observed by a live request."""
        self._set_state(backend, False)

    def snapshot(self) -> Dict[str, bool]:
        with self._lock:
            return dict(self._alive)

    # ---------------------------------------------------------------- probing
    def _set_state(self, backend: str, alive: bool) -> None:
        with self._lock:
            changed = self._alive.get(backend) != alive
            self._alive[backend] = alive
        _BACKEND_UP.set(1.0 if alive else 0.0, backend=backend)
        if changed:
            events.emit(
                "router.backend_state", backend=backend, up=alive
            )

    def probe_all(self) -> None:
        """One synchronous probe cycle (the loop's body; callable from tests)."""
        for backend in self.backends:
            try:
                with CertificationClient(
                    backend,
                    connect_timeout=self.connect_timeout,
                    connect_retries=0,
                    request_timeout=self.request_timeout,
                ) as client:
                    client.ping()
            except (OSError, ProtocolError, RemoteError) as error:
                events.emit(
                    "router.health_probe",
                    backend=backend,
                    up=False,
                    error_kind=events.classify_error(error),
                )
                self._set_state(backend, False)
            else:
                self._set_state(backend, True)

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.probe_all()
