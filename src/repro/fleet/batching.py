"""Server-side micro-batching of concurrent single-point certify frames.

A storm of clients certifying one point each against the same (dataset,
model, engine) is the pathological shape for the serving stack: every frame
pays dispatch, plan lookup, and scheduler bookkeeping for a single point.
:class:`MicroBatcher` turns the storm back into batches: the first
single-point frame of a (dataset, model, engine) triple opens a **window**
and becomes its *leader*; frames arriving within ``window_seconds`` join it;
the leader then flushes the pooled rows through the engine's
:class:`~repro.api.scheduler.CertificationScheduler` as one batch and
distributes the per-point verdicts back to each waiting handler thread.

The window key includes the canonical wire form of the *resolved* threat
model, so only requests whose models agree exactly (family, budget, class
count) pool — two models that merely collide in cache coordinates never mix
their nominal amounts in each other's results.  The cost is bounded and
explicit: a lone request waits out its own window (``window_seconds`` of
added latency) and gains nothing; concurrent storms collapse into one
scheduler batch per window.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api.report import CertificationReport
from repro.poisoning.models import PerturbationModel, resolve_model_classes
from repro.runtime.fingerprint import fingerprint_dataset
from repro.service.protocol import model_to_wire
from repro.telemetry import events, metrics

__all__ = ["MicroBatcher"]

_WINDOW_SECONDS = metrics.histogram(
    "batch_window_seconds",
    "Wall seconds per micro-batch window, first frame to flush completion.",
)
_BATCHED_POINTS = metrics.counter(
    "batched_points_total",
    "Single-point certify frames pooled through micro-batch windows.",
)
_BATCH_SIZE = metrics.histogram(
    "batch_size_points",
    "Points per flushed micro-batch window.",
)


@dataclass
class _Window:
    """One open coalescing window: pooled rows and their waiting futures."""

    engine: object
    dataset: object
    model: PerturbationModel
    rows: List[np.ndarray] = field(default_factory=list)
    futures: List[Future] = field(default_factory=list)
    opened_at: float = field(default_factory=time.perf_counter)
    closed: bool = False
    #: Set by the leader once the window's shared runtime stats are captured;
    #: followers must wait on it before reading ``stats`` (their own futures
    #: resolve mid-stream, before the batch accounting exists).
    completed: threading.Event = field(default_factory=threading.Event)
    stats: Optional[dict] = None


class MicroBatcher:
    """Coalesce concurrent single-point certifications into pooled windows."""

    def __init__(self, *, window_seconds: float = 0.01) -> None:
        self.window_seconds = float(window_seconds)
        self._windows: Dict[tuple, _Window] = {}
        self._lock = threading.Lock()

    def certify_one(self, engine, request) -> CertificationReport:
        """Certify a one-point request through a pooled window.

        Called concurrently by server handler threads; returns the same
        report shape ``engine.verify`` produces for one point, with the
        *window's* runtime stats (cache hits, learner invocations are
        batch-level accounting, shared by every frame that pooled).
        """
        started = time.perf_counter()
        dataset = request.dataset
        model = resolve_model_classes(request.model, dataset.n_classes)
        row = np.asarray(request.points[0], dtype=float)
        key = (
            id(engine),
            fingerprint_dataset(dataset),
            repr(sorted(model_to_wire(model).items())),
        )
        future: Future = Future()
        with self._lock:
            window = self._windows.get(key)
            leader = window is None or window.closed
            if leader:
                window = _Window(engine=engine, dataset=dataset, model=model)
                self._windows[key] = window
            assert window is not None
            window.rows.append(row)
            window.futures.append(future)
        if leader:
            # Hold the window open for stragglers, then flush.  The leader's
            # handler thread does the batch work; followers just wait.
            time.sleep(self.window_seconds)
            with self._lock:
                window.closed = True
                if self._windows.get(key) is window:
                    del self._windows[key]
            self._flush(window)
        result = future.result()
        window.completed.wait()
        return CertificationReport(
            results=[result],
            model_description=model.describe(),
            dataset_name=dataset.name,
            total_seconds=time.perf_counter() - started,
            runtime_stats=window.stats,
        )

    def _flush(self, window: _Window) -> None:
        """Run the pooled rows as one scheduler batch; resolve every future."""
        engine = window.engine
        try:
            results = list(
                engine.scheduler.stream_rows(
                    window.dataset, window.model, window.rows, n_jobs=1
                )
            )
        except BaseException as error:
            # Every pooled frame fails together; each handler thread re-raises
            # from its own future and answers its client with an error frame.
            for pending in window.futures:
                if not pending.done():
                    pending.set_exception(error)
        else:
            for pending, result in zip(window.futures, results):
                pending.set_result(result)
        finally:
            runtime = getattr(engine, "runtime", None)
            if runtime is not None and runtime.last_batch_stats is not None:
                window.stats = runtime.last_batch_stats.snapshot()
            elapsed = time.perf_counter() - window.opened_at
            _WINDOW_SECONDS.observe(elapsed)
            _BATCH_SIZE.observe(len(window.rows))
            _BATCHED_POINTS.inc(len(window.rows))
            events.emit(
                "server.batch_window",
                seconds=elapsed,
                points=len(window.rows),
            )
            window.completed.set()
