"""`repro.fleet` — multi-host certification serving.

One :class:`~repro.service.server.CertificationServer` keeps one machine's
runtime warm; this subsystem keeps a *fleet* warm.  Four pieces, layered on
the versioned JSON-lines protocol of :mod:`repro.service`:

* **TCP transport** — ``repro serve --tcp HOST:PORT`` binds the existing
  server over TCP; :class:`~repro.service.client.CertificationClient`
  accepts ``host:port`` addresses (keepalive, per-request timeouts,
  connect retry with backoff);
* :class:`HashRing` — consistent hashing of dataset shard keys onto a
  static backend list, so each server's engine plans, shared-memory
  datasets, and verdict cache stay hot for its shard;
* :class:`CertificationRouter` — the ``repro route`` daemon: speaks the
  same protocol to clients, relays frames to shard owners, health-checks
  backends, retries with backoff, fails over mid-request (streams resume
  on the next ring node with only the unserved points), and optionally
  replicates dominance-derivable verdict rows between servers — N warm
  servers, one logical cache;
* :class:`MicroBatcher` — server-side coalescing of concurrent
  single-point certify frames into pooled scheduler windows
  (``repro serve --batch-window``).

Start two shard servers and a router::

    repro-antidote serve --tcp 127.0.0.1:7301 --cache-dir /var/cache/repro &
    repro-antidote serve --tcp 127.0.0.1:7302 --cache-dir /var/cache/repro2 &
    repro-antidote route --tcp 127.0.0.1:7300 \\
        --backend 127.0.0.1:7301 --backend 127.0.0.1:7302

then point any client at the router: ``repro-antidote certify ... --connect
127.0.0.1:7300``.
"""

from repro.fleet.batching import MicroBatcher
from repro.fleet.health import HealthMonitor
from repro.fleet.link import BackendPool
from repro.fleet.ring import HashRing, shard_key
from repro.fleet.router import CertificationRouter

__all__ = [
    "BackendPool",
    "CertificationRouter",
    "HashRing",
    "HealthMonitor",
    "MicroBatcher",
    "shard_key",
]
