"""The fleet router: shard-affine request placement with failover.

:class:`CertificationRouter` speaks the same JSON-lines protocol as a
:class:`~repro.service.server.CertificationServer`, so any
:class:`~repro.service.client.CertificationClient` (or ``repro --connect``)
can point at it unchanged.  Instead of certifying, it places each request on
the backend that owns the request's dataset shard
(:class:`~repro.fleet.ring.HashRing` over the static backend list) and
relays frames verbatim — so each backend's engine plans, shared-memory
datasets, and verdict cache stay hot for *its* datasets, which is the whole
point of sharding.

Robustness model:

* **health** — a background :class:`~repro.fleet.health.HealthMonitor`
  pings backends; known-dead backends are deprioritized, and transport
  failures observed by live requests mark backends dead immediately;
* **retry** — each backend attempt gets a fresh connection retry with
  exponential backoff (connection establishment), plus one in-request
  retry on a fresh connection for pooled-connection staleness;
* **failover** — when a backend dies mid-request the router moves to the
  next distinct ring node (``router_failovers_total``).  For streams the
  router re-sends only the *unserved* points and renumbers the relayed
  ``index`` fields, so the client sees one seamless, complete stream;
* **replication** (``--replicate``) — before forwarding a certify to the
  shard owner, the router probes its cache (``cache_probe``), asks sibling
  backends for rows answering the misses (``cache_fetch``), and ingests
  them into the owner (``cache_ingest``) — budget-monotone derivation runs
  on the *receiving* server, so replication ships only proofs that some
  server actually produced.

Application errors (``RemoteError`` — the backend answered, the answer is
an error) are relayed to the client and never trigger failover; only
transport-level faults (dead/hung/desynchronized connections) do.
"""

from __future__ import annotations

import os
import signal
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.api.report import SCHEMA_VERSION
from repro.fleet.health import HealthMonitor
from repro.fleet.link import BackendPool
from repro.fleet.ring import HashRing, shard_key
from repro.service.protocol import (
    METRICS_VERSION,
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    encode_frame,
    format_address,
    parse_address,
    read_frame,
)
from repro.telemetry import events, metrics
from repro.utils.validation import ValidationError

__all__ = ["CertificationRouter"]

_REQUESTS = metrics.counter(
    "router_requests_total",
    "Requests relayed to each backend (completed there, any outcome).",
    labelnames=("backend",),
)
_FAILOVERS = metrics.counter(
    "router_failovers_total",
    "Mid-request backend failures that moved the request to the next ring node.",
)
_REPLICATION = metrics.counter(
    "router_replication_total",
    "Verdict rows considered for cross-server replication, by outcome.",
    labelnames=("outcome",),
)

#: Operations routed by dataset shard (their params carry a dataset payload).
_SHARDED_OPS = frozenset(
    {
        "certify",
        "max_certified",
        "pareto_frontier",
        "pareto_sweep",
        "cache_probe",
    }
)

#: Operations fanned out to every live backend, results keyed by backend.
_FANOUT_OPS = frozenset({"cache_stats", "cache_gc"})

#: Sharded ops that trigger cache replication before forwarding.
_REPLICATED_OPS = frozenset({"certify", "certify_stream"})


class _ThreadingTCPRouter(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True
    certification_router: "CertificationRouter"


class _ThreadingUnixRouter(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    certification_router: "CertificationRouter"


class _RouterHandler(socketserver.StreamRequestHandler):
    """One client connection to the router: read, place, relay."""

    def setup(self) -> None:
        if self.request.family in (socket.AF_INET, socket.AF_INET6):
            self.request.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via socket tests
        router: CertificationRouter = self.server.certification_router
        while True:
            try:
                frame = read_frame(self.rfile)
            except ProtocolError as error:
                self._write({"ok": False, "error": _error_payload(error)})
                return
            if frame is None:
                return
            request_id = frame.get("id")
            op = frame.get("op")
            params = frame.get("params") or {}
            rid = frame.get("rid")
            try:
                with events.bind_request(rid if isinstance(rid, str) else None):
                    if op == "certify_stream":
                        router.route_stream(request_id, params, self._write)
                    elif op == "shutdown":
                        self._write(
                            {"id": request_id, "ok": True, "result": {"stopping": True}}
                        )
                        router.request_shutdown()
                        return
                    else:
                        result = router.dispatch(op, params)
                        self._write({"id": request_id, "ok": True, "result": result})
            except BrokenPipeError:
                return
            except Exception as error:  # noqa: BLE001 - protocol boundary
                try:
                    self._write(
                        {"id": request_id, "ok": False, "error": _error_payload(error)}
                    )
                except BrokenPipeError:
                    return

    def _write(self, payload: dict) -> None:
        self.wfile.write(encode_frame(payload))
        self.wfile.flush()


def _error_payload(error: BaseException) -> dict:
    return {"type": type(error).__name__, "message": str(error)}


class CertificationRouter:
    """Route certification traffic across a static fleet of shard servers.

    Parameters
    ----------
    backends:
        The static backend address list (``host:port`` TCP addresses or
        Unix-socket paths).  Ring placement depends only on this list, so
        every router over the same list agrees on ownership.
    tcp / socket_path:
        Where the router itself listens (exactly one; same semantics as
        :class:`~repro.service.server.CertificationServer`).
    replicate:
        Whether to replicate dominance-derivable verdict rows from sibling
        backends into the shard owner before forwarding certify traffic.
    request_timeout:
        Per-request bound on backend calls (the half-open-backend guard).
        ``None`` disables it — sensible only when certifications are
        unbounded; the health monitor always uses its own short timeout.
    """

    def __init__(
        self,
        backends: Sequence[str],
        *,
        tcp: Optional[Union[str, Tuple[str, int]]] = None,
        socket_path: Optional[Union[str, Path]] = None,
        replicate: bool = True,
        health_interval: float = 2.0,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = None,
        retry_backoff: float = 0.05,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValidationError(
                "exactly one of socket_path and tcp must be given for the "
                "router's own listening address"
            )
        self.ring = HashRing([format_address(backend) for backend in backends])
        self.replicate = bool(replicate)
        self.retry_backoff = float(retry_backoff)
        self.pool = BackendPool(
            connect_timeout=connect_timeout, request_timeout=request_timeout
        )
        self.health = HealthMonitor(
            self.ring.backends,
            interval=health_interval,
            connect_timeout=min(connect_timeout, 2.0),
        )
        self.socket_path = None if socket_path is None else Path(socket_path)
        self._tcp_target: Optional[Tuple[str, int]] = None
        if tcp is not None:
            if isinstance(tcp, tuple):
                self._tcp_target = (str(tcp[0]), int(tcp[1]))
            else:
                family, parsed = parse_address(
                    f"tcp://{tcp}" if "://" not in str(tcp) else str(tcp)
                )
                if family != "tcp":
                    raise ValidationError(f"malformed tcp address {tcp!r}")
                self._tcp_target = parsed  # type: ignore[assignment]
        self.tcp_address: Optional[Tuple[str, int]] = None
        self._server: Optional[
            Union[_ThreadingTCPRouter, _ThreadingUnixRouter]
        ] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        if self.tcp_address is not None:
            return format_address(self.tcp_address)
        return format_address(self._tcp_target)  # type: ignore[arg-type]

    def start(self) -> None:
        """Bind and serve on a background thread (for embedding/tests)."""
        self._bind()
        self.health.start()
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-route", daemon=True
        )
        thread.start()
        self._serve_thread = thread

    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Bind and serve until :meth:`request_shutdown` (CLI mode)."""
        self._bind()
        self.health.start()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._signal_shutdown)
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def _bind(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        server: Union[_ThreadingTCPRouter, _ThreadingUnixRouter]
        if self._tcp_target is not None:
            server = _ThreadingTCPRouter(self._tcp_target, _RouterHandler)
            host, port = server.server_address[:2]
            self.tcp_address = (str(host), int(port))
        else:
            assert self.socket_path is not None
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            self.socket_path.unlink(missing_ok=True)
            server = _ThreadingUnixRouter(str(self.socket_path), _RouterHandler)
        server.certification_router = self
        self._server = server
        self._started_at = time.monotonic()

    def _signal_shutdown(self, signum, frame) -> None:  # pragma: no cover - signals
        del frame
        self.request_shutdown()

    def request_shutdown(self) -> None:
        server = self._server
        if server is None:
            return
        threading.Thread(target=server.shutdown, daemon=True).start()

    def close(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            if self._serve_thread is not None:
                server.shutdown()
            server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)
        self.health.close()
        self.pool.close()

    def __enter__(self) -> "CertificationRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- dispatch
    def dispatch(self, op: Optional[str], params: dict) -> dict:
        """One non-streaming frame: answer locally, shard-route, or fan out."""
        if op == "hello":
            return self._op_hello(params)
        if op == "ping":
            return {
                "pong": True,
                "uptime_seconds": time.monotonic() - self._started_at,
            }
        if op == "metrics":
            return self._op_metrics(params)
        if op == "stats":
            return self._op_stats()
        if op in _SHARDED_OPS:
            return self.route_call(op, params)
        if op in _FANOUT_OPS:
            return self._fan_out(op, params)
        raise ProtocolError(
            f"unknown operation {op!r}; the router serves "
            f"{sorted(_SHARDED_OPS | _FANOUT_OPS)} + "
            "['hello', 'ping', 'metrics', 'stats', 'certify_stream', 'shutdown']"
        )

    def _op_hello(self, params: dict) -> dict:
        requested = int(params.get("protocol", PROTOCOL_VERSION))
        if requested != PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks protocol {requested}, router speaks "
                f"{PROTOCOL_VERSION}"
            )
        return {
            "protocol": PROTOCOL_VERSION,
            "protocol_minor": PROTOCOL_MINOR,
            "schema_version": SCHEMA_VERSION,
            "server_version": repro.__version__,
            "pid": os.getpid(),
            "backend_id": f"router:{self.address}",
            "role": "router",
            "backends": list(self.ring.backends),
        }

    def _op_metrics(self, params: dict) -> dict:
        """The *router process's* registry (routing/failover/health series)."""
        fmt = str(params.get("format", "json"))
        registry = metrics.get_registry()
        payload: dict = {"metrics_version": METRICS_VERSION, "format": fmt}
        if fmt == "prometheus":
            payload["prometheus"] = registry.to_prometheus()
        elif fmt == "json":
            payload["metrics"] = registry.snapshot()
        else:
            raise ProtocolError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )
        return payload

    def _op_stats(self) -> dict:
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "backends": self.health.snapshot(),
            "replicate": self.replicate,
            "metrics": metrics.get_registry().snapshot(),
        }

    # ---------------------------------------------------------------- routing
    def _candidates(self, params: dict) -> List[str]:
        """Failover order for one request: ring preference, live first.

        Known-dead backends sink to the end rather than disappearing — if
        the whole fleet looks dead the router still tries (the monitor may
        simply be behind), and the error the client sees is the real
        transport error, not a synthetic "no backends" one.
        """
        key = shard_key(params.get("dataset") or {})
        preference = self.ring.preference(key, count=len(self.ring.backends))
        live = [b for b in preference if self.health.is_alive(b)]
        dead = [b for b in preference if not self.health.is_alive(b)]
        return live + dead

    def route_call(self, op: str, params: dict) -> dict:
        """Relay one request to its shard owner, failing over on dead nodes."""
        candidates = self._candidates(params)
        last_error: Optional[Exception] = None
        for position, backend in enumerate(candidates):
            try:
                result = self._attempt(backend, op, params)
            except RemoteError:
                # The backend *answered*; relay its error, never fail over.
                _REQUESTS.inc(backend=backend)
                raise
            except (OSError, ProtocolError) as error:
                last_error = error
                self._note_dead(backend, op, error)
                if position + 1 < len(candidates):
                    _FAILOVERS.inc()
                continue
            _REQUESTS.inc(backend=backend)
            return result
        assert last_error is not None
        raise last_error

    def _attempt(self, backend: str, op: str, params: dict) -> dict:
        """One backend, up to two connections: pooled first, then fresh.

        A pooled connection can be stale (the backend restarted since it was
        pooled); a failure on it earns one retry on a guaranteed-fresh
        connection after a short backoff.  A fresh-connection failure is
        authoritative: the backend is down, move on.
        """
        for attempt in range(2):
            try:
                with self.pool.lease(backend) as link:
                    if op in _REPLICATED_OPS and self.replicate:
                        self._replicate_into(link, backend, params)
                    return link.call(op, params)
            except (OSError, ProtocolError):
                self.pool.invalidate(backend)
                if attempt == 0:
                    time.sleep(self.retry_backoff)
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def route_stream(self, frame_id, params: dict, write) -> None:
        """Relay a ``certify_stream``, resuming on the next node after a death.

        On failover only the not-yet-delivered points are re-sent, and the
        relayed ``index`` fields are renumbered into the client's original
        point space — the client sees one gapless stream regardless of how
        many backends served it.
        """
        candidates = self._candidates(params)
        rows = list(params.get("points") or [])
        delivered = 0
        last_error: Optional[Exception] = None
        for position, backend in enumerate(candidates):
            if delivered >= len(rows) and rows:
                # Every verdict was delivered but the end frame was lost with
                # the backend; close the stream with a stats-less report
                # rather than re-certifying zero points.
                write(
                    {
                        "id": frame_id,
                        "event": "end",
                        "report": {
                            "schema_version": SCHEMA_VERSION,
                            "runtime_stats": None,
                        },
                    }
                )
                return
            remaining = dict(params)
            remaining["points"] = rows[delivered:]
            try:
                with self.pool.lease(backend) as link:
                    if self.replicate:
                        self._replicate_into(link, backend, remaining)
                    for frame in link.stream_frames("certify_stream", remaining):
                        if frame.get("ok") is False:
                            # Application error: relay verbatim, stream over.
                            write(
                                {
                                    "id": frame_id,
                                    "ok": False,
                                    "error": frame.get("error") or {},
                                }
                            )
                            _REQUESTS.inc(backend=backend)
                            return
                        if frame.get("event") == "result":
                            write(
                                {
                                    "id": frame_id,
                                    "event": "result",
                                    "index": delivered,
                                    "result": frame.get("result"),
                                }
                            )
                            delivered += 1
                        else:  # the end frame
                            write(
                                {
                                    "id": frame_id,
                                    "event": "end",
                                    "report": frame.get("report"),
                                }
                            )
                            _REQUESTS.inc(backend=backend)
                            return
            except (OSError, ProtocolError) as error:
                last_error = error
                self._note_dead(backend, "certify_stream", error)
                if position + 1 < len(candidates):
                    _FAILOVERS.inc()
                continue
        assert last_error is not None
        write({"id": frame_id, "ok": False, "error": _error_payload(last_error)})

    def _note_dead(self, backend: str, op: str, error: Exception) -> None:
        self.health.mark_dead(backend)
        self.pool.invalidate(backend)
        events.emit(
            "router.failover",
            backend=backend,
            op=op,
            error_kind=events.classify_error(error),
        )

    # ------------------------------------------------------------ replication
    def _replicate_into(self, link, backend: str, params: dict) -> None:
        """Best-effort: fill the shard owner's cache misses from siblings.

        Never fails the request — replication is an optimization, and any
        of the probe/fetch/ingest legs dying just means the owner certifies
        from scratch like it would have anyway.
        """
        if len(self.ring.backends) < 2:
            return
        try:
            probe = link.call(
                "cache_probe",
                {
                    key: params.get(key)
                    for key in ("engine", "dataset", "points", "model")
                },
            )
            remaining = [
                entry["digest"]
                for entry in probe.get("points", ())
                if not entry.get("cached")
            ]
            if not remaining:
                return
            coords = {
                "dataset_fp": probe["dataset_fp"],
                "family": probe["family"],
                "engine_key": probe["engine_key"],
                "budget": probe["budget"],
                "monotone": probe.get("monotone", False),
            }
            gathered: List[dict] = []
            for sibling in self.ring.backends:
                if sibling == backend or not remaining:
                    continue
                if not self.health.is_alive(sibling):
                    continue
                try:
                    with self.pool.lease(sibling) as other:
                        fetched = other.call(
                            "cache_fetch", {**coords, "digests": remaining}
                        )
                except (OSError, ProtocolError, RemoteError):
                    continue
                filled = set()
                for digest, row in zip(remaining, fetched.get("rows") or ()):
                    if row:
                        gathered.append(
                            {
                                "digest": row["digest"],
                                "budget": row["stored_budget"],
                                "result": row["result"],
                            }
                        )
                        filled.add(digest)
                remaining = [d for d in remaining if d not in filled]
            if gathered:
                link.call(
                    "cache_ingest",
                    {
                        "dataset_fp": coords["dataset_fp"],
                        "family": coords["family"],
                        "engine_key": coords["engine_key"],
                        "rows": gathered,
                    },
                )
                _REPLICATION.inc(len(gathered), outcome="replicated")
            if remaining:
                _REPLICATION.inc(len(remaining), outcome="unfilled")
        except (OSError, ProtocolError, RemoteError) as error:
            events.emit(
                "router.replication_error",
                backend=backend,
                error_kind=events.classify_error(error),
            )

    # --------------------------------------------------------------- fan-out
    def _fan_out(self, op: str, params: dict) -> dict:
        """Run a management op on every live backend; results keyed by backend."""
        results: Dict[str, dict] = {}
        errors: Dict[str, dict] = {}
        for backend in self.ring.backends:
            if not self.health.is_alive(backend):
                errors[backend] = {"type": "BackendDown", "message": "marked dead"}
                continue
            try:
                with self.pool.lease(backend) as link:
                    results[backend] = link.call(op, params)
            except (OSError, ProtocolError) as error:
                self._note_dead(backend, op, error)
                errors[backend] = _error_payload(error)
            except RemoteError as error:
                errors[backend] = {"type": error.kind, "message": error.message}
        if not results and errors:
            raise RemoteError(
                "FanOutError",
                f"{op} failed on every backend: "
                + "; ".join(f"{b}: {e['message']}" for b, e in errors.items()),
            )
        return {"backends": results, "errors": errors}
