"""Consistent-hash ring: dataset shard key → backend server.

The router's placement function.  Each backend owns a set of virtual nodes
(:data:`VNODES` points on the SHA-256 keyspace circle); a shard key lands on
the first vnode clockwise from its own hash.  Virtual nodes smooth the
per-backend load (a single point per backend would make ownership arcs
wildly uneven) and keep reassignment minimal: adding or removing one backend
moves only the keys in its own arcs, so every *other* backend's warm state —
engine plans, shared-memory datasets, verdict-cache rows — stays exactly
where it is.

The shard key is the SHA-256 of the request's **dataset wire payload**
(canonical JSON), not the decoded dataset's content fingerprint: the router
routes without decoding inline arrays or resolving registry references.  The
trade-off is explicit — the inline and ref spellings of the same dataset
hash to different keys and may land on different shards; within one
spelling, placement is exact.  Servers key their own decoded-dataset LRU by
the identical digest (``CertificationServer.dataset_for``), so router and
backend agree on identity for free.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import List, Mapping, Sequence, Tuple

__all__ = ["HashRing", "VNODES", "shard_key"]

#: Virtual nodes per backend.  64 keeps the max/min ownership-arc ratio
#: under ~1.4 for small fleets while the ring stays tiny (a few KiB).
VNODES = 64


def shard_key(dataset_payload: Mapping) -> str:
    """The routing key of one request: hex SHA-256 of the dataset wire form."""
    canonical = json.dumps(dataset_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class HashRing:
    """An immutable consistent-hash ring over a static backend list.

    Ring positions depend only on the backend *names* (their addresses), so
    every router instance over the same backend list computes the same
    placement — no coordination protocol needed.
    """

    def __init__(self, backends: Sequence[str], *, vnodes: int = VNODES) -> None:
        if not backends:
            raise ValueError("a hash ring needs at least one backend")
        if len(set(backends)) != len(backends):
            raise ValueError(f"duplicate backend addresses: {sorted(backends)}")
        self.backends: Tuple[str, ...] = tuple(backends)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, str]] = []
        for backend in self.backends:
            for replica in range(self.vnodes):
                digest = hashlib.sha256(f"{backend}#{replica}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), backend))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [backend for _, backend in points]

    def primary(self, key: str) -> str:
        """The backend owning ``key`` (first vnode clockwise from its hash)."""
        return self.preference(key, count=1)[0]

    def preference(self, key: str, *, count: int = 2) -> List[str]:
        """The first ``count`` *distinct* backends clockwise from ``key``.

        Position 0 is the primary; positions 1+ are the failover order — the
        backends whose arcs would absorb this key if the ones before them
        died.  ``count`` is capped at the number of backends.
        """
        digest = hashlib.sha256(key.encode()).digest()
        start = bisect.bisect_right(self._hashes, int.from_bytes(digest[:8], "big"))
        count = min(int(count), len(self.backends))
        chosen: List[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen
