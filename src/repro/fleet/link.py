"""Pooled backend connections for the router.

A router handler thread needs a warm connection to the shard backend it is
relaying to; opening one per request would pay connect + hello on every
frame.  :class:`BackendPool` keeps a small per-backend free list of
:class:`~repro.service.client.CertificationClient` objects (the router uses
only their raw relay surface — ``call`` / ``stream_frames`` — so frames pass
through without dataset or result decoding).

Connections borrow/return through :meth:`BackendPool.lease`; a client that
marked itself ``broken`` (request timeout, protocol desync, dead peer) is
closed instead of returned, so the pool never hands out a poisoned
connection.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.service.client import CertificationClient

__all__ = ["BackendPool"]


class BackendPool:
    """Small per-backend free lists of connected clients.

    ``request_timeout`` is applied to every pooled connection — the
    router must never hang forever on a half-open backend (the client
    raises :class:`~repro.service.protocol.RequestTimeoutError` and the
    pool discards the connection).
    """

    def __init__(
        self,
        *,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = None,
        connect_retries: int = 2,
        max_idle_per_backend: int = 4,
    ) -> None:
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.connect_retries = connect_retries
        self.max_idle_per_backend = max_idle_per_backend
        self._idle: Dict[str, List[CertificationClient]] = {}
        self._lock = threading.Lock()
        self._closed = False

    def acquire(self, backend: str) -> CertificationClient:
        """A connected client for ``backend``: pooled if warm, fresh otherwise."""
        with self._lock:
            idle = self._idle.get(backend)
            if idle:
                return idle.pop()
        return CertificationClient(
            backend,
            connect_timeout=self.connect_timeout,
            connect_retries=self.connect_retries,
            request_timeout=self.request_timeout,
        )

    def release(self, backend: str, client: CertificationClient) -> None:
        """Return a client to the pool; broken/overflow connections close."""
        if client.broken:
            client.close()
            return
        with self._lock:
            if not self._closed:
                idle = self._idle.setdefault(backend, [])
                if len(idle) < self.max_idle_per_backend:
                    idle.append(client)
                    return
        client.close()

    @contextmanager
    def lease(self, backend: str) -> Iterator[CertificationClient]:
        """Borrow a connection for one operation, returning it on success.

        On *any* exception the connection is closed rather than pooled: the
        error may have left response frames in flight, and a desynchronized
        connection must never serve the next request.
        """
        client = self.acquire(backend)
        try:
            yield client
        except BaseException:
            client.close()
            raise
        else:
            self.release(backend, client)

    def invalidate(self, backend: str) -> None:
        """Drop every pooled connection to ``backend`` (it was seen dying)."""
        with self._lock:
            idle = self._idle.pop(backend, [])
        for client in idle:
            client.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pools = list(self._idle.values())
            self._idle.clear()
        for idle in pools:
            for client in idle:
                client.close()
