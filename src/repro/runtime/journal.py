"""Resumable run journals: crash-safe checkpoints for long batches.

A killed 10,000-point ``certify_batch`` used to mean 10,000 points redone.
The journal gives every batch a deterministic run id — derived from the
dataset fingerprint, the ordered point digests, the model family/budget, and
the engine key — and appends one JSON line per completed point to
``journal-<run id>.jsonl`` under the cache directory.  Restarting the same
batch with ``resume=True`` replays the completed verdicts and certifies only
the remainder; the reassembled report is identical to an uninterrupted run.

The format is append-only JSONL so that a crash mid-write costs at most the
last (truncated) line, which :meth:`RunJournal.load` tolerates and drops.
Journals only exist while their run is unfinished: once a batch completes,
its verdicts all live in the verdict cache and the runtime discards the
file, so the cache directory holds one journal per *in-flight* batch, not
one per batch ever run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.runtime.fingerprint import BudgetKey
from repro.verify.result import VerificationResult


def run_id(
    dataset_fp: str,
    point_digests: Sequence[str],
    family: str,
    budget: BudgetKey,
    engine_key: str,
) -> str:
    """Deterministic identity of one batch run (16 hex chars).

    ``budget`` is the resolved budget key of the threat model — an integer
    for the one-dimensional families, the ``(n_remove, n_flip)`` pair for
    the composite family.

    Two invocations with the same dataset content, the same points in the
    same order, the same threat model, and the same engine configuration get
    the same id — and therefore share journal state.
    """
    hasher = hashlib.sha256(b"repro-run-v1")
    hasher.update(dataset_fp.encode())
    hasher.update(f"{family}|{budget}|{engine_key}|{len(point_digests)}".encode())
    for digest in point_digests:
        hasher.update(digest.encode())
    return hasher.hexdigest()[:16]


class RunJournal:
    """Append-only progress log for one (resumable) batch run."""

    def __init__(self, cache_dir: Union[str, Path], run: str) -> None:
        self.run = run
        self.path = Path(cache_dir) / f"journal-{run}.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- state
    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Dict[int, VerificationResult]:
        """Return the completed ``index -> result`` entries of a prior run.

        Truncated or malformed trailing lines (a crash mid-append) are
        skipped; everything before them is recovered.
        """
        completed: Dict[int, VerificationResult] = {}
        if not self.path.exists():
            return completed
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if "index" in entry:
                        completed[int(entry["index"])] = VerificationResult.from_dict(
                            entry["result"]
                        )
                except (ValueError, KeyError, TypeError):
                    continue
        return completed

    def discard(self) -> None:
        """Delete any prior progress (a fresh, non-resuming run)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # --------------------------------------------------------------- writing
    def record(self, index: int, result: VerificationResult) -> None:
        """Append one completed point (flushed immediately for crash safety)."""
        line = json.dumps({"index": int(index), "result": result.to_dict()})
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
