"""Persistent, monotonicity-aware verdict cache.

Certification verdicts are pure functions of ``(dataset content, test point,
perturbation family + budget, engine configuration)`` — nothing about the
host, the process, or the wall clock can change whether a point is robust.
That makes them ideal cache entries: this module stores them in a sqlite
database under a cache directory, keyed by the content-addressed identities
of :mod:`repro.runtime.fingerprint`.

Beyond exact-key hits, the cache exploits **budget monotonicity** (the
perturbation spaces of the removal and label-flip families are nested in the
budget):

* a point proven ``robust`` at budget ``n`` answers every query at ``n' ≤ n``;
* a point left ``unknown`` at budget ``n`` answers every query at ``n' ≥ n``.

Budgets are stored as a pair ``(budget, budget_f)`` so the composite
removal+flip family — whose perturbation spaces are nested in the
*componentwise* order on ``(n_remove, n_flip)`` — derives along pair
dominance and never across non-nested pairs: ``robust`` at ``(r, f)``
answers ``(r' ≤ r, f' ≤ f)``; ``unknown`` at ``(r, f)`` answers
``(r' ≥ r, f' ≥ f)``.  One-dimensional families store ``budget_f = 0``,
which makes their pair queries degenerate to exactly the scalar rules above.

Only decisive verdicts (``robust`` / ``unknown``) are stored.  ``timeout``
and ``resource_exhausted`` outcomes depend on the machine and the configured
limits, so they are always recomputed.

Long-lived caches (serving fleets, daemons) are bounded by :meth:`gc`:
verdicts carry a ``last_used`` recency stamp (refreshed on every hit, flushed
in chunks alongside the normal commit cadence) and are evicted LRU-first —
preferring verdicts *derivable* from a surviving row (a robust verdict
dominated by another robust one, an unknown verdict dominating another
unknown one), whose eviction loses no answering power at all.
"""

from __future__ import annotations

import json
import math
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.runtime.fingerprint import BudgetKey
from repro.telemetry import metrics
from repro.verify.result import VerificationResult, VerificationStatus

#: Latency of the cache's sqlite operations, by operation.  Lookups are the
#: warm serving path's dominant cost, so this is the histogram to watch when
#: tuning chunk sizes or WAL settings.
_SQLITE_SECONDS = metrics.histogram(
    "cache_sqlite_seconds",
    "Wall seconds per verdict-cache sqlite operation.",
    labelnames=("op",),
)
_SQLITE_LOOKUP = _SQLITE_SECONDS.labels(op="lookup")
_SQLITE_STORE = _SQLITE_SECONDS.labels(op="store")
_SQLITE_COMMIT = _SQLITE_SECONDS.labels(op="commit")
_SQLITE_GC = _SQLITE_SECONDS.labels(op="gc")
_GC_EVICTED = metrics.counter(
    "cache_gc_evicted_total", "Verdicts evicted by cache garbage collection."
)

#: Statuses that are environment-independent facts about the proof problem.
#: Shared with the run journal: neither layer may persist a timeout or a
#: resource exhaustion, or a resumed/warm run would keep serving an outcome
#: that a faster machine (or a raised limit) would not reproduce.
CACHEABLE_STATUSES = (VerificationStatus.ROBUST, VerificationStatus.UNKNOWN)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    dataset_fp   TEXT    NOT NULL,
    point_digest TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    engine_key   TEXT    NOT NULL,
    budget       INTEGER NOT NULL,
    budget_f     INTEGER NOT NULL DEFAULT 0,
    status       TEXT    NOT NULL,
    payload      TEXT    NOT NULL,
    created_at   REAL    NOT NULL,
    last_used    REAL    NOT NULL DEFAULT 0,
    PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget, budget_f)
);
CREATE INDEX IF NOT EXISTS idx_verdicts_lookup
    ON verdicts (dataset_fp, point_digest, family, engine_key, status, budget, budget_f);
"""

#: Rebuild of a pre-composite (single-budget-column) database.  The old rows
#: migrate with ``budget_f = 0`` and keep answering exactly the queries they
#: answered before — except flip-family verdicts, which are dropped: they
#: were computed by the old Box-only flip path under the same
#: ``(family, engine_key)`` a ladder engine now resolves to, so keeping
#: their UNKNOWNs would permanently mask the flip-disjuncts precision on
#: warm caches.
_MIGRATE_V1 = """
DROP INDEX IF EXISTS idx_verdicts_lookup;
ALTER TABLE verdicts RENAME TO verdicts_v1;
CREATE TABLE verdicts (
    dataset_fp   TEXT    NOT NULL,
    point_digest TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    engine_key   TEXT    NOT NULL,
    budget       INTEGER NOT NULL,
    budget_f     INTEGER NOT NULL DEFAULT 0,
    status       TEXT    NOT NULL,
    payload      TEXT    NOT NULL,
    created_at   REAL    NOT NULL,
    last_used    REAL    NOT NULL DEFAULT 0,
    PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget, budget_f)
);
INSERT INTO verdicts
    SELECT dataset_fp, point_digest, family, engine_key, budget, 0,
           status, payload, created_at, created_at
    FROM verdicts_v1
    WHERE family NOT LIKE 'label-flip:%';
DROP TABLE verdicts_v1;
CREATE INDEX idx_verdicts_lookup
    ON verdicts (dataset_fp, point_digest, family, engine_key, status, budget, budget_f);
"""

#: In-place upgrade of a pair-budget (v2) database that predates the recency
#: stamp: existing rows inherit their creation time as the initial recency.
_MIGRATE_V2 = """
ALTER TABLE verdicts ADD COLUMN last_used REAL NOT NULL DEFAULT 0;
UPDATE verdicts SET last_used = created_at;
"""

#: How many refreshed recency stamps accumulate in memory before they are
#: flushed to the database.  Stamps also flush on every :meth:`commit`,
#: :meth:`close`, and :meth:`gc`, so the window only bounds how stale
#: ``last_used`` can be for a crash-killed pure-read workload.
_TOUCH_CHUNK = 64


def _budget_pair(budget: BudgetKey) -> Tuple[int, int]:
    """Normalize a budget key to the stored ``(budget, budget_f)`` pair."""
    if isinstance(budget, tuple):
        removals, flips = budget
        return int(removals), int(flips)
    return int(budget), 0


def _stored_budget(budget: int, budget_f: int) -> BudgetKey:
    """Present a stored pair the way the family keyed it (int for 1-D rows)."""
    return (int(budget), int(budget_f)) if budget_f else int(budget)


@dataclass(frozen=True)
class CacheHit:
    """One answered lookup: the stored verdict plus how it was derived.

    ``kind`` is ``"exact"`` for a same-budget row or ``"monotone"`` when the
    verdict was derived from a different budget; ``stored_budget`` records
    which budget actually produced the proof (a ``(n_remove, n_flip)`` pair
    for composite-family rows).
    """

    result: VerificationResult
    kind: str
    stored_budget: BudgetKey

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"


class CertificationCache:
    """On-disk verdict store shared by every run against a cache directory."""

    DB_NAME = "certcache.sqlite"

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.cache_dir / self.DB_NAME
        self._connection: Optional[sqlite3.Connection] = None
        # One connection shared by every thread of the process (the service
        # handler threads and the scheduler all hit the same cache), guarded
        # by a re-entrant lock; sqlite's own check is disabled at connect.
        self._lock = threading.RLock()
        # Recency stamps of rows served since the last flush, keyed by the
        # full primary key of the stored row.
        self._touches: Dict[Tuple[str, str, str, str, int, int], float] = {}

    # ------------------------------------------------------------ connection
    @property
    def _db(self) -> sqlite3.Connection:
        if self._connection is None:
            # WAL lets concurrent processes read while a batch writes, and
            # the 30s busy timeout rides out another writer's commit window.
            self._connection = sqlite3.connect(
                str(self.db_path), timeout=30.0, check_same_thread=False
            )
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.executescript(_SCHEMA)
            columns = {
                row[1]
                for row in self._connection.execute("PRAGMA table_info(verdicts)")
            }
            if "budget_f" not in columns:
                # A database created before the composite family: rebuild it
                # with the pair-budget primary key, preserving every verdict.
                self._connection.executescript(_MIGRATE_V1)
            elif "last_used" not in columns:
                # A pair-budget database from before the GC layer: add the
                # recency stamp in place, seeding it from the creation time.
                self._connection.executescript(_MIGRATE_V2)
        return self._connection

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._flush_touches_locked()
                self._connection.commit()
                self._connection.close()
                self._connection = None

    def __getstate__(self) -> dict:
        # sqlite connections and locks cannot cross process boundaries;
        # reconnect (and re-lock) lazily on the other side.
        state = dict(self.__dict__)
        state["_connection"] = None
        state["_lock"] = None
        state["_touches"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ---------------------------------------------------------------- lookup
    def lookup(
        self,
        dataset_fp: str,
        point_digest: str,
        family: str,
        engine_key: str,
        budget: BudgetKey,
        *,
        monotone: bool = True,
    ) -> Optional[CacheHit]:
        """Answer one verdict query, or return ``None`` on a miss.

        With ``monotone=True`` the lookup may derive the answer from a verdict
        stored at a different budget (see the module docstring); the caller is
        responsible for only enabling this for monotone model families.  For
        pair budgets the derivation ranges over componentwise dominance, so a
        verdict is never derived across non-nested ``(n_remove, n_flip)``
        pairs — both components must point the same (sound) way.
        """
        started = time.perf_counter()
        try:
            return self._lookup(
                dataset_fp, point_digest, family, engine_key, budget, monotone=monotone
            )
        finally:
            _SQLITE_LOOKUP.observe(time.perf_counter() - started)

    def _lookup(
        self,
        dataset_fp: str,
        point_digest: str,
        family: str,
        engine_key: str,
        budget: BudgetKey,
        *,
        monotone: bool,
    ) -> Optional[CacheHit]:
        base = (dataset_fp, point_digest, family, engine_key)
        removals, flips = _budget_pair(budget)
        with self._lock:
            row = self._db.execute(
                "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
                "point_digest=? AND family=? AND engine_key=? AND budget=? AND budget_f=?",
                base + (removals, flips),
            ).fetchone()
            if row is not None:
                return self._hit_locked(base, row, kind="exact")
            if not monotone:
                return None
            # Robust at a dominating budget (both components ≥) ⇒ robust here.
            row = self._db.execute(
                "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
                "point_digest=? AND family=? AND engine_key=? AND status=? AND "
                "budget>=? AND budget_f>=? ORDER BY budget ASC, budget_f ASC LIMIT 1",
                base + (VerificationStatus.ROBUST.value, removals, flips),
            ).fetchone()
            if row is not None:
                return self._hit_locked(base, row, kind="monotone")
            # Unknown at a dominated budget (both components ≤) ⇒ still unknown here.
            row = self._db.execute(
                "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
                "point_digest=? AND family=? AND engine_key=? AND status=? AND "
                "budget<=? AND budget_f<=? ORDER BY budget DESC, budget_f DESC LIMIT 1",
                base + (VerificationStatus.UNKNOWN.value, removals, flips),
            ).fetchone()
            if row is not None:
                return self._hit_locked(base, row, kind="monotone")
            return None

    def _hit_locked(self, base: Tuple[str, str, str, str], row, *, kind: str) -> CacheHit:
        """Build a hit and refresh the stored row's recency stamp (chunked).

        The ``_locked`` suffix is a contract: the caller holds ``self._lock``.
        """
        self._touches[base + (int(row[1]), int(row[2]))] = time.time()
        if len(self._touches) >= _TOUCH_CHUNK:
            self._flush_touches_locked()
            self._db.commit()
        return CacheHit(
            result=VerificationResult.from_dict(json.loads(row[0])),
            kind=kind,
            stored_budget=_stored_budget(row[1], row[2]),
        )

    def _flush_touches_locked(self) -> None:
        """Write buffered recency stamps (caller holds the lock, commits)."""
        if not self._touches:
            return
        self._db.executemany(
            "UPDATE verdicts SET last_used=? WHERE dataset_fp=? AND point_digest=? "
            "AND family=? AND engine_key=? AND budget=? AND budget_f=?",
            [(stamp,) + key for key, stamp in self._touches.items()],
        )
        self._touches.clear()

    # ----------------------------------------------------------------- store
    def store(
        self,
        dataset_fp: str,
        point_digest: str,
        family: str,
        engine_key: str,
        budget: BudgetKey,
        result: VerificationResult,
        *,
        commit: bool = True,
    ) -> bool:
        """Persist one verdict; returns whether it was cacheable.

        Batch writers pass ``commit=False`` and call :meth:`commit` in
        chunks — a per-verdict fsync on the hot path is wasted work when the
        run journal already provides crash-granularity recovery.  Chunked
        (rather than end-of-batch) commits matter for concurrency: an open
        write transaction blocks other writers of the same cache, so it must
        never be held for a whole multi-minute batch.
        """
        if result.status not in CACHEABLE_STATUSES:
            return False
        removals, flips = _budget_pair(budget)
        now = time.time()
        started = time.perf_counter()
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO verdicts VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    dataset_fp,
                    point_digest,
                    family,
                    engine_key,
                    removals,
                    flips,
                    result.status.value,
                    json.dumps(result.to_dict()),
                    now,
                    now,
                ),
            )
            if commit:
                self._db.commit()
        _SQLITE_STORE.observe(time.perf_counter() - started)
        return True

    def commit(self) -> None:
        """Flush verdicts stored with ``commit=False`` (and recency stamps)."""
        started = time.perf_counter()
        with self._lock:
            if self._connection is not None:
                self._flush_touches_locked()
                self._connection.commit()
        _SQLITE_COMMIT.observe(time.perf_counter() - started)

    # ------------------------------------------------------------ management
    def stats(self) -> dict:
        """Aggregate cache statistics for the ``cache stats`` CLI command."""
        with self._lock:
            total = self._db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
            by_status = dict(
                self._db.execute(
                    "SELECT status, COUNT(*) FROM verdicts GROUP BY status"
                ).fetchall()
            )
            datasets = self._db.execute(
                "SELECT COUNT(DISTINCT dataset_fp) FROM verdicts"
            ).fetchone()[0]
        return {
            "path": str(self.db_path),
            "verdicts": int(total),
            "by_status": {key: int(value) for key, value in by_status.items()},
            "datasets": int(datasets),
            "size_bytes": self.db_path.stat().st_size if self.db_path.exists() else 0,
        }

    def clear(self) -> int:
        """Delete every stored verdict and run journal; returns the verdict count.

        Journals must go too: a ``--resume`` after a clear would otherwise
        replay the supposedly-deleted verdicts, and the journal files are
        where most of the reclaimed disk lives.
        """
        with self._lock:
            removed = self._db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
            self._db.execute("DELETE FROM verdicts")
            self._touches.clear()
            self._db.commit()
        for journal in self.cache_dir.glob("journal-*.jsonl"):
            try:
                journal.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return int(removed)

    # -------------------------------------------------------------------- gc
    #: SQL truth-value of "this verdict is derivable from another stored row":
    #: a robust verdict strictly dominated by another robust one, or an
    #: unknown verdict strictly dominating another unknown one, answers no
    #: query the other row does not — evicting it loses nothing.
    _DERIVABLE_SQL = """
        CASE WHEN (
            v.status = 'robust' AND EXISTS (
                SELECT 1 FROM verdicts AS w
                WHERE w.dataset_fp = v.dataset_fp AND w.point_digest = v.point_digest
                  AND w.family = v.family AND w.engine_key = v.engine_key
                  AND w.status = 'robust'
                  AND w.budget >= v.budget AND w.budget_f >= v.budget_f
                  AND (w.budget > v.budget OR w.budget_f > v.budget_f)
            )
        ) OR (
            v.status = 'unknown' AND EXISTS (
                SELECT 1 FROM verdicts AS w
                WHERE w.dataset_fp = v.dataset_fp AND w.point_digest = v.point_digest
                  AND w.family = v.family AND w.engine_key = v.engine_key
                  AND w.status = 'unknown'
                  AND w.budget <= v.budget AND w.budget_f <= v.budget_f
                  AND (w.budget < v.budget OR w.budget_f < v.budget_f)
            )
        ) THEN 1 ELSE 0 END
    """

    def _evict(self, count: int) -> int:
        """Evict up to ``count`` verdicts: derivable rows first, then LRU.

        Caller holds the lock and commits.  Returns how many rows went.
        """
        if count <= 0:
            return 0
        victims = self._db.execute(
            f"SELECT v.rowid FROM verdicts AS v ORDER BY {self._DERIVABLE_SQL} DESC, "
            "v.last_used ASC, v.rowid ASC LIMIT ?",
            (count,),
        ).fetchall()
        if not victims:
            return 0
        self._db.executemany(
            "DELETE FROM verdicts WHERE rowid=?", victims
        )
        return len(victims)

    def _logical_size(self) -> int:
        """Size of the database proper (excluding not-yet-checkpointed WAL)."""
        page_count = self._db.execute("PRAGMA page_count").fetchone()[0]
        page_size = self._db.execute("PRAGMA page_size").fetchone()[0]
        return int(page_count) * int(page_size)

    def gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> dict:
        """Bound the cache by age, entry count, and/or on-disk size.

        * ``max_age`` drops every verdict not used (stored or served) within
          the last ``max_age`` seconds;
        * ``max_entries`` / ``max_bytes`` then evict least-recently-used
          verdicts — **derivable verdicts first**: a robust verdict dominated
          by a surviving robust row (or an unknown verdict dominating a
          surviving unknown row) answers nothing its dominator cannot, so its
          eviction costs zero future learner invocations.

        Returns a summary dict (``evicted``, ``remaining``, byte sizes, and
        ``repaired`` clock-skew stamps).  With no bound given this reports
        current sizes (and still repairs skewed stamps).
        """
        started = time.perf_counter()
        with self._lock:
            db = self._db
            self._flush_touches_locked()
            now = time.time()
            # Recency stamps come from the wall clock, which can step
            # backwards (NTP corrections, VM migrations).  A row stamped
            # while the clock was ahead carries ``last_used > now`` — a
            # negative age.  Left alone it sorts as the freshest row in the
            # LRU order *forever*, so under entry/size pressure genuinely
            # fresh verdicts get evicted as "oldest" while the ghost row
            # survives every pass.  Clamp negative ages to zero before
            # applying any bound; subsequent real hits stamp later times, so
            # a repaired row ages normally from here.
            repaired = db.execute(
                "UPDATE verdicts SET last_used=? WHERE last_used>?", (now, now)
            ).rowcount
            db.commit()
            size_before = self._logical_size()
            evicted = 0
            if max_age is not None:
                cursor = db.execute(
                    "DELETE FROM verdicts WHERE last_used < ?",
                    (now - float(max_age),),
                )
                evicted += cursor.rowcount
            if max_entries is not None:
                count = db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
                evicted += self._evict(int(count) - int(max_entries))
            # Commit even when nothing was evicted: a 0-row DELETE still
            # auto-begins a write transaction, which would make the VACUUMs
            # below fail (and, left dangling, lock out other connections).
            db.commit()
            if evicted:
                db.execute("VACUUM")
            if max_bytes is not None:
                if not evicted:
                    # Reclaim free pages from earlier deletes before
                    # measuring, or they count against the bound and force
                    # eviction of live verdicts VACUUM alone would save.
                    db.execute("VACUUM")
                size = self._logical_size()
                while size > int(max_bytes):
                    count = db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
                    if count == 0:
                        break
                    # Estimate how many rows must go to reach the bound and
                    # evict them in one round; re-measure after VACUUM in
                    # case variable-width payloads skewed the estimate.
                    per_row = max(1.0, size / count)
                    need = max(1, math.ceil((size - int(max_bytes)) / per_row))
                    removed = self._evict(min(need, int(count)))
                    if removed == 0:  # pragma: no cover - defensive
                        break
                    evicted += removed
                    db.commit()
                    db.execute("VACUUM")
                    size = self._logical_size()
            remaining = db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
            size_after = self._logical_size()
        if evicted:
            _GC_EVICTED.inc(evicted)
        _SQLITE_GC.observe(time.perf_counter() - started)
        return {
            "evicted": int(evicted),
            "remaining": int(remaining),
            "repaired": int(repaired),
            "size_bytes_before": int(size_before),
            "size_bytes_after": int(size_after),
        }
