"""Persistent, monotonicity-aware verdict cache.

Certification verdicts are pure functions of ``(dataset content, test point,
perturbation family + budget, engine configuration)`` — nothing about the
host, the process, or the wall clock can change whether a point is robust.
That makes them ideal cache entries: this module stores them in a sqlite
database under a cache directory, keyed by the content-addressed identities
of :mod:`repro.runtime.fingerprint`.

Beyond exact-key hits, the cache exploits **budget monotonicity** (the
perturbation spaces of the removal and label-flip families are nested in the
budget):

* a point proven ``robust`` at budget ``n`` answers every query at ``n' ≤ n``;
* a point left ``unknown`` at budget ``n`` answers every query at ``n' ≥ n``.

Budgets are stored as a pair ``(budget, budget_f)`` so the composite
removal+flip family — whose perturbation spaces are nested in the
*componentwise* order on ``(n_remove, n_flip)`` — derives along pair
dominance and never across non-nested pairs: ``robust`` at ``(r, f)``
answers ``(r' ≤ r, f' ≤ f)``; ``unknown`` at ``(r, f)`` answers
``(r' ≥ r, f' ≥ f)``.  One-dimensional families store ``budget_f = 0``,
which makes their pair queries degenerate to exactly the scalar rules above.

Only decisive verdicts (``robust`` / ``unknown``) are stored.  ``timeout``
and ``resource_exhausted`` outcomes depend on the machine and the configured
limits, so they are always recomputed.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.runtime.fingerprint import BudgetKey
from repro.verify.result import VerificationResult, VerificationStatus

#: Statuses that are environment-independent facts about the proof problem.
#: Shared with the run journal: neither layer may persist a timeout or a
#: resource exhaustion, or a resumed/warm run would keep serving an outcome
#: that a faster machine (or a raised limit) would not reproduce.
CACHEABLE_STATUSES = (VerificationStatus.ROBUST, VerificationStatus.UNKNOWN)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    dataset_fp   TEXT    NOT NULL,
    point_digest TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    engine_key   TEXT    NOT NULL,
    budget       INTEGER NOT NULL,
    budget_f     INTEGER NOT NULL DEFAULT 0,
    status       TEXT    NOT NULL,
    payload      TEXT    NOT NULL,
    created_at   REAL    NOT NULL,
    PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget, budget_f)
);
CREATE INDEX IF NOT EXISTS idx_verdicts_lookup
    ON verdicts (dataset_fp, point_digest, family, engine_key, status, budget, budget_f);
"""

#: Rebuild of a pre-composite (single-budget-column) database.  The old rows
#: migrate with ``budget_f = 0`` and keep answering exactly the queries they
#: answered before — except flip-family verdicts, which are dropped: they
#: were computed by the old Box-only flip path under the same
#: ``(family, engine_key)`` a ladder engine now resolves to, so keeping
#: their UNKNOWNs would permanently mask the flip-disjuncts precision on
#: warm caches.
_MIGRATE_V1 = """
DROP INDEX IF EXISTS idx_verdicts_lookup;
ALTER TABLE verdicts RENAME TO verdicts_v1;
CREATE TABLE verdicts (
    dataset_fp   TEXT    NOT NULL,
    point_digest TEXT    NOT NULL,
    family       TEXT    NOT NULL,
    engine_key   TEXT    NOT NULL,
    budget       INTEGER NOT NULL,
    budget_f     INTEGER NOT NULL DEFAULT 0,
    status       TEXT    NOT NULL,
    payload      TEXT    NOT NULL,
    created_at   REAL    NOT NULL,
    PRIMARY KEY (dataset_fp, point_digest, family, engine_key, budget, budget_f)
);
INSERT INTO verdicts
    SELECT dataset_fp, point_digest, family, engine_key, budget, 0,
           status, payload, created_at
    FROM verdicts_v1
    WHERE family NOT LIKE 'label-flip:%';
DROP TABLE verdicts_v1;
CREATE INDEX idx_verdicts_lookup
    ON verdicts (dataset_fp, point_digest, family, engine_key, status, budget, budget_f);
"""


def _budget_pair(budget: BudgetKey) -> Tuple[int, int]:
    """Normalize a budget key to the stored ``(budget, budget_f)`` pair."""
    if isinstance(budget, tuple):
        removals, flips = budget
        return int(removals), int(flips)
    return int(budget), 0


def _stored_budget(budget: int, budget_f: int) -> BudgetKey:
    """Present a stored pair the way the family keyed it (int for 1-D rows)."""
    return (int(budget), int(budget_f)) if budget_f else int(budget)


@dataclass(frozen=True)
class CacheHit:
    """One answered lookup: the stored verdict plus how it was derived.

    ``kind`` is ``"exact"`` for a same-budget row or ``"monotone"`` when the
    verdict was derived from a different budget; ``stored_budget`` records
    which budget actually produced the proof (a ``(n_remove, n_flip)`` pair
    for composite-family rows).
    """

    result: VerificationResult
    kind: str
    stored_budget: BudgetKey

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"


class CertificationCache:
    """On-disk verdict store shared by every run against a cache directory."""

    DB_NAME = "certcache.sqlite"

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.cache_dir / self.DB_NAME
        self._connection: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------ connection
    @property
    def _db(self) -> sqlite3.Connection:
        if self._connection is None:
            # WAL lets concurrent processes read while a batch writes, and
            # the 30s busy timeout rides out another writer's commit window.
            self._connection = sqlite3.connect(str(self.db_path), timeout=30.0)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.executescript(_SCHEMA)
            columns = {
                row[1]
                for row in self._connection.execute("PRAGMA table_info(verdicts)")
            }
            if "budget_f" not in columns:
                # A database created before the composite family: rebuild it
                # with the pair-budget primary key, preserving every verdict.
                self._connection.executescript(_MIGRATE_V1)
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __getstate__(self) -> dict:
        # sqlite connections cannot cross process boundaries; reconnect lazily.
        state = dict(self.__dict__)
        state["_connection"] = None
        return state

    # ---------------------------------------------------------------- lookup
    def lookup(
        self,
        dataset_fp: str,
        point_digest: str,
        family: str,
        engine_key: str,
        budget: BudgetKey,
        *,
        monotone: bool = True,
    ) -> Optional[CacheHit]:
        """Answer one verdict query, or return ``None`` on a miss.

        With ``monotone=True`` the lookup may derive the answer from a verdict
        stored at a different budget (see the module docstring); the caller is
        responsible for only enabling this for monotone model families.  For
        pair budgets the derivation ranges over componentwise dominance, so a
        verdict is never derived across non-nested ``(n_remove, n_flip)``
        pairs — both components must point the same (sound) way.
        """
        base = (dataset_fp, point_digest, family, engine_key)
        removals, flips = _budget_pair(budget)
        row = self._db.execute(
            "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
            "point_digest=? AND family=? AND engine_key=? AND budget=? AND budget_f=?",
            base + (removals, flips),
        ).fetchone()
        if row is not None:
            return CacheHit(
                result=VerificationResult.from_dict(json.loads(row[0])),
                kind="exact",
                stored_budget=_stored_budget(row[1], row[2]),
            )
        if not monotone:
            return None
        # Robust at a dominating budget (both components ≥) ⇒ robust here.
        row = self._db.execute(
            "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
            "point_digest=? AND family=? AND engine_key=? AND status=? AND "
            "budget>=? AND budget_f>=? ORDER BY budget ASC, budget_f ASC LIMIT 1",
            base + (VerificationStatus.ROBUST.value, removals, flips),
        ).fetchone()
        if row is not None:
            return CacheHit(
                result=VerificationResult.from_dict(json.loads(row[0])),
                kind="monotone",
                stored_budget=_stored_budget(row[1], row[2]),
            )
        # Unknown at a dominated budget (both components ≤) ⇒ still unknown here.
        row = self._db.execute(
            "SELECT payload, budget, budget_f FROM verdicts WHERE dataset_fp=? AND "
            "point_digest=? AND family=? AND engine_key=? AND status=? AND "
            "budget<=? AND budget_f<=? ORDER BY budget DESC, budget_f DESC LIMIT 1",
            base + (VerificationStatus.UNKNOWN.value, removals, flips),
        ).fetchone()
        if row is not None:
            return CacheHit(
                result=VerificationResult.from_dict(json.loads(row[0])),
                kind="monotone",
                stored_budget=_stored_budget(row[1], row[2]),
            )
        return None

    # ----------------------------------------------------------------- store
    def store(
        self,
        dataset_fp: str,
        point_digest: str,
        family: str,
        engine_key: str,
        budget: BudgetKey,
        result: VerificationResult,
        *,
        commit: bool = True,
    ) -> bool:
        """Persist one verdict; returns whether it was cacheable.

        Batch writers pass ``commit=False`` and call :meth:`commit` in
        chunks — a per-verdict fsync on the hot path is wasted work when the
        run journal already provides crash-granularity recovery.  Chunked
        (rather than end-of-batch) commits matter for concurrency: an open
        write transaction blocks other writers of the same cache, so it must
        never be held for a whole multi-minute batch.
        """
        if result.status not in CACHEABLE_STATUSES:
            return False
        removals, flips = _budget_pair(budget)
        self._db.execute(
            "INSERT OR REPLACE INTO verdicts VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                dataset_fp,
                point_digest,
                family,
                engine_key,
                removals,
                flips,
                result.status.value,
                json.dumps(result.to_dict()),
                time.time(),
            ),
        )
        if commit:
            self._db.commit()
        return True

    def commit(self) -> None:
        """Flush verdicts stored with ``commit=False``."""
        if self._connection is not None:
            self._connection.commit()

    # ------------------------------------------------------------ management
    def stats(self) -> dict:
        """Aggregate cache statistics for the ``cache stats`` CLI command."""
        total = self._db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
        by_status = dict(
            self._db.execute(
                "SELECT status, COUNT(*) FROM verdicts GROUP BY status"
            ).fetchall()
        )
        datasets = self._db.execute(
            "SELECT COUNT(DISTINCT dataset_fp) FROM verdicts"
        ).fetchone()[0]
        return {
            "path": str(self.db_path),
            "verdicts": int(total),
            "by_status": {key: int(value) for key, value in by_status.items()},
            "datasets": int(datasets),
            "size_bytes": self.db_path.stat().st_size if self.db_path.exists() else 0,
        }

    def clear(self) -> int:
        """Delete every stored verdict and run journal; returns the verdict count.

        Journals must go too: a ``--resume`` after a clear would otherwise
        replay the supposedly-deleted verdicts, and the journal files are
        where most of the reclaimed disk lives.
        """
        removed = self._db.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
        self._db.execute("DELETE FROM verdicts")
        self._db.commit()
        for journal in self.cache_dir.glob("journal-*.jsonl"):
            try:
                journal.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return int(removed)
