"""The certification runtime: dataset plane + verdict cache + run journal.

:class:`CertificationRuntime` is the service layer between the stateless
:class:`~repro.api.engine.CertificationEngine` and repeated, overlapping
certification traffic:

* it publishes datasets into the **shared-memory plane**
  (:mod:`repro.runtime.shm`) so process-pool workers attach zero-copy
  instead of unpickling a private copy of the training set;
* it answers repeat queries from the **persistent cache**
  (:mod:`repro.runtime.cache`), including budget-monotone derivations
  (robust at ``n`` ⇒ robust at ``n' ≤ n``; unknown at ``n`` ⇒ unknown at
  ``n' ≥ n``; for the composite removal+flip family the same rules over
  componentwise ``(n_remove, n_flip)`` dominance);
* it checkpoints batch progress in a **run journal**
  (:mod:`repro.runtime.journal`) so a killed batch resumes where it left
  off; and
* it resolves **budget sweeps** (the max certified ``n`` per point) with a
  cache-aware doubling/binary search seeded from prior verdicts.

Attach a runtime to an engine with ``CertificationEngine(runtime=...)``;
engines with no explicit runtime get a process-wide shared-memory-only
runtime automatically whenever ``n_jobs > 1``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace as _replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import PerturbationModel, resolve_model_classes
from repro.runtime.cache import CACHEABLE_STATUSES, CacheHit, CertificationCache
from repro.runtime.fingerprint import (
    engine_cache_key,
    fingerprint_dataset,
    model_cache_key,
    monotone_in_budget,
    point_digest,
)
from repro.runtime.journal import RunJournal, run_id
from repro.runtime.shm import DatasetStore, SharedDatasetHandle, default_store
from repro.telemetry import events, metrics
from repro.verify.result import VerificationResult

_CACHE_LOOKUPS = metrics.counter(
    "cache_lookups_total",
    "Verdict-cache lookups by result (exact hit, monotone derivation, miss).",
    labelnames=("result",),
)
_CACHE_HIT = _CACHE_LOOKUPS.labels(result="hit")
_CACHE_MONOTONE = _CACHE_LOOKUPS.labels(result="monotone")
_CACHE_MISS = _CACHE_LOOKUPS.labels(result="miss")
_JOURNAL_RESTORED = metrics.counter(
    "journal_restored_total", "Verdicts replayed from a resumable run journal."
)
_DEDUPLICATED = metrics.counter(
    "runtime_deduplicated_total",
    "Points answered by another point's work (in-batch dups + delivered leases).",
)


@dataclass
class BatchStats:
    """Counters for one batch (and, summed, for a runtime's lifetime).

    ``learner_invocations`` is the headline number: how many points actually
    ran the abstract learner.  A warm-cache rerun of an identical batch must
    report zero.
    """

    points: int = 0
    cache_hits: int = 0
    cache_monotone_hits: int = 0
    cache_misses: int = 0
    journal_restored: int = 0
    deduplicated: int = 0
    learner_invocations: int = 0
    shared_memory: bool = False
    truncated_at: Optional[int] = None
    # Box-learner filter steps of this batch's serial learner runs, and how
    # many were warm-started from a prior probe's ladder trace.  Pool workers
    # account their steps in `trace_warmstart_total` via the metric merge
    # plane, not here.
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def answered_without_learner(self) -> int:
        return (
            self.cache_hits
            + self.cache_monotone_hits
            + self.journal_restored
            + self.deduplicated
        )

    @property
    def hit_rate(self) -> Optional[float]:
        if self.points == 0:
            return None
        return self.answered_without_learner / self.points

    @property
    def trace_reuse_fraction(self) -> float:
        if self.trace_steps == 0:
            return 0.0
        return self.trace_reused / self.trace_steps

    def add(self, other: "BatchStats") -> None:
        self.points += other.points
        self.cache_hits += other.cache_hits
        self.cache_monotone_hits += other.cache_monotone_hits
        self.cache_misses += other.cache_misses
        self.journal_restored += other.journal_restored
        self.deduplicated += other.deduplicated
        self.learner_invocations += other.learner_invocations
        self.shared_memory = self.shared_memory or other.shared_memory
        self.trace_steps += other.trace_steps
        self.trace_reused += other.trace_reused

    def snapshot(self) -> dict:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_monotone_hits": self.cache_monotone_hits,
            "cache_misses": self.cache_misses,
            "journal_restored": self.journal_restored,
            "deduplicated": self.deduplicated,
            "learner_invocations": self.learner_invocations,
            "hit_rate": self.hit_rate,
            "shared_memory": self.shared_memory,
            "truncated_at": self.truncated_at,
            "trace_steps": self.trace_steps,
            "trace_reused": self.trace_reused,
            "trace_reuse_fraction": self.trace_reuse_fraction,
        }


@dataclass(frozen=True)
class BudgetSweepOutcome:
    """Per-point outcome of :meth:`CertificationRuntime.budget_sweep`.

    ``trace_steps`` / ``trace_reused`` count the Box-learner filter steps of
    this point's probes and how many were warm-started from a prior probe's
    ladder trace instead of re-running the split/join kernels.
    """

    max_certified_n: int
    attempts: int
    learner_invocations: int
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def trace_reuse_fraction(self) -> float:
        return self.trace_reused / self.trace_steps if self.trace_steps else 0.0

    @property
    def ever_certified(self) -> bool:
        return self.max_certified_n > 0


@dataclass(frozen=True)
class ParetoOutcome:
    """Per-point outcome of :meth:`CertificationRuntime.pareto_frontier`.

    ``frontier`` is the staircase of maximal certified ``(n_remove, n_flip)``
    pairs; ``attempted_pairs`` counts every pair the search decided, of which
    ``probes`` reached the verifier (the rest were derived from local pair
    dominance) and only ``learner_invocations`` actually ran the abstract
    learner (the rest were answered by the cache, exactly or by pair
    dominance).
    """

    frontier: tuple
    probes: int
    attempted_pairs: int
    learner_invocations: int
    trace_steps: int = 0
    trace_reused: int = 0

    @property
    def trace_reuse_fraction(self) -> float:
        return self.trace_reused / self.trace_steps if self.trace_steps else 0.0

    def to_dict(self) -> dict:
        """JSON rows shape-compatible with ``ParetoFrontierResult.to_dict``."""
        return {
            "frontier": [[r, f] for r, f in self.frontier],
            "probes": self.probes,
            "attempted_pairs": self.attempted_pairs,
            "learner_invocations": self.learner_invocations,
            "trace_steps": self.trace_steps,
            "trace_reused": self.trace_reused,
        }

    @property
    def ever_certified(self) -> bool:
        return bool(self.frontier)


#: How many uncommitted verdict stores a stream accumulates before flushing;
#: bounds both the fsync amortization and how long a concurrent writer of the
#: same cache can be made to wait.
_STORE_CHUNK = 16


class CertificationRuntime:
    """Shared-memory dataset plane + persistent verdict cache + run journal.

    Parameters
    ----------
    cache_dir:
        Directory for the sqlite verdict cache and the run journals.  ``None``
        disables both (the runtime then only provides the shared-memory
        plane).
    shared_memory:
        Whether to publish datasets into shared memory for pool workers
        (falls back to pickling automatically when the host has no usable
        shared-memory filesystem).
    resume:
        Whether :meth:`stream` replays a prior journal for the same run id
        (``False`` discards prior progress and starts fresh).
    max_new_points:
        If set, a batch stops after this many *new* learner invocations (the
        journal keeps the progress); used to bound the cost of one run and to
        exercise the interrupt/resume path deterministically.  A truncated
        batch yields (and reports) fewer results than requested points —
        check ``last_batch_stats.truncated_at`` (also exported as
        ``runtime_stats["truncated_at"]`` in the report) before treating a
        report as complete.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        *,
        shared_memory: bool = True,
        resume: bool = True,
        max_new_points: Optional[int] = None,
    ) -> None:
        if max_new_points is not None and cache_dir is None:
            # Without a journal the truncated remainder is unrecoverable: the
            # batch could never complete no matter how often it is rerun.
            raise ValueError("max_new_points requires a cache_dir to journal progress")
        self.cache: Optional[CertificationCache] = (
            CertificationCache(cache_dir) if cache_dir is not None else None
        )
        self.shared_memory = shared_memory
        self.resume = resume
        self.max_new_points = max_new_points
        self.stats = BatchStats()
        self._store: Optional[DatasetStore] = None
        # Lifetime counters are read/written by concurrent streams (service
        # handler threads, scheduler submissions); int += is not atomic.
        self._stats_lock = threading.Lock()
        # Per-batch counters are thread-local: concurrent streams (service
        # handlers, scheduler submissions) must not clobber each other's
        # report stats.  Readers consume the stream and read the stats on
        # the same thread.
        self._batch_local = threading.local()

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """Counters of the most recent batch streamed *on this thread*.

        ``None`` when this thread has not streamed a batch — including a
        batch whose points were all leased from another in-flight stream.
        """
        return getattr(self._batch_local, "stats", None)

    @last_batch_stats.setter
    def last_batch_stats(self, stats: Optional[BatchStats]) -> None:
        self._batch_local.stats = stats

    def _op_invocations(self) -> int:
        """Learner invocations of this thread's current sweep operation.

        Sweeps (:meth:`max_certified`, :meth:`pareto_frontier`) reset this
        thread-local counter before probing and report it afterwards; using
        the shared lifetime counter's delta instead would attribute other
        threads' concurrent work to this operation.
        """
        return int(getattr(self._batch_local, "op_invocations", 0))

    def _reset_op_counters(self) -> None:
        """Zero this thread's per-operation counters before a sweep's probes."""
        self._batch_local.op_invocations = 0
        self._batch_local.op_trace_steps = 0
        self._batch_local.op_trace_reused = 0

    def _op_trace(self) -> tuple:
        return (
            int(getattr(self._batch_local, "op_trace_steps", 0)),
            int(getattr(self._batch_local, "op_trace_reused", 0)),
        )

    # ------------------------------------------------------------- the plane
    def publish(self, dataset: Dataset) -> Optional[SharedDatasetHandle]:
        """Publish a dataset into shared memory (``None`` = unavailable/off)."""
        if not self.shared_memory:
            return None
        if self._store is None:
            self._store = default_store()
        return self._store.publish(dataset)

    # ------------------------------------------------------------- streaming
    def stream(
        self,
        engine,
        dataset: Dataset,
        model: PerturbationModel,
        rows: Sequence[np.ndarray],
        *,
        n_jobs: int = 1,
    ) -> Iterator[VerificationResult]:
        """Certify ``rows`` in order, answering from cache/journal when possible.

        Only cache misses reach the engine's learners; computed verdicts are
        written back to the cache and the journal as they arrive, so the
        stream is resumable at per-point granularity.
        """
        stats = BatchStats(points=len(rows))
        self.last_batch_stats = stats
        consume_trace = getattr(engine, "consume_trace_stats", None)
        if consume_trace is not None:
            # Drop trace-step residue a non-runtime caller may have left on
            # this thread, so this batch's reuse fraction is its own.
            consume_trace()

        fp = fingerprint_dataset(dataset)
        family, budget = model_cache_key(model, len(dataset))
        engine_key = engine_cache_key(engine)
        amount = model.nominal_amount(len(dataset))
        flips = model.nominal_flip_amount(len(dataset))
        log10_datasets = model.log10_num_neighbors(len(dataset))
        monotone = monotone_in_budget(model)
        digests = [point_digest(row) for row in rows]

        journal: Optional[RunJournal] = None
        restored: Dict[int, VerificationResult] = {}
        if self.cache is not None:
            journal = RunJournal(
                self.cache.cache_dir, run_id(fp, digests, family, budget, engine_key)
            )
            if self.resume:
                restored = journal.load()
            else:
                journal.discard()

        pending_stores = 0

        def store_chunked(digest: str, result: VerificationResult) -> None:
            nonlocal pending_stores
            assert self.cache is not None
            if self.cache.store(
                fp, digest, family, engine_key, budget, result, commit=False
            ):
                pending_stores += 1
                if pending_stores >= _STORE_CHUNK:
                    self.cache.commit()
                    pending_stores = 0

        resolved: Dict[int, VerificationResult] = {}
        miss_indices: List[int] = []
        # Duplicate rows within the batch (tiled/augmented test sets) share
        # one verdict: only the first occurrence reaches the learner, and
        # later occurrences copy its result as it lands.
        first_miss_for: Dict[str, int] = {}
        duplicate_of: Dict[int, str] = {}
        cutoff = len(rows)
        for index in range(len(rows)):
            if index in restored:
                # Journal entries are exact-budget verdicts, but the nominal
                # amount may differ (run ids key on the *resolved* budget), so
                # they are re-anchored like cache hits.  They are also written
                # back to the verdict cache: the journal is discarded once the
                # run completes, and a crash may have lost the original store.
                resolved[index] = self._adapt_hit(
                    CacheHit(restored[index], "exact", budget),
                    amount,
                    flips,
                    log10_datasets,
                )
                stats.journal_restored += 1
                _JOURNAL_RESTORED.inc()
                if self.cache is not None:
                    store_chunked(digests[index], resolved[index])
                continue
            if digests[index] in first_miss_for:
                duplicate_of[index] = digests[index]
                stats.deduplicated += 1
                _DEDUPLICATED.inc()
                continue
            if self.cache is not None:
                hit = self.cache.lookup(
                    fp, digests[index], family, engine_key, budget, monotone=monotone
                )
                if hit is not None:
                    resolved[index] = self._adapt_hit(hit, amount, flips, log10_datasets)
                    if hit.is_exact:
                        stats.cache_hits += 1
                    else:
                        stats.cache_monotone_hits += 1
                    continue
            if (
                self.max_new_points is not None
                and len(miss_indices) >= self.max_new_points
            ):
                # The stream stays in input order, so it stops at the first
                # miss it is no longer allowed to compute; later points are
                # neither looked up nor counted — the stats describe exactly
                # what this run served.
                cutoff = index
                stats.truncated_at = index
                break
            first_miss_for[digests[index]] = index
            miss_indices.append(index)
        stats.points = cutoff
        # Without a cache there is nothing to miss — only report cache
        # counters a persistent cache actually produced.
        stats.cache_misses = len(miss_indices) if self.cache is not None else 0
        # One amortized increment per batch, not one per point: the lookup
        # loop above is the warm hot path the <5% overhead budget guards.
        if stats.cache_hits:
            _CACHE_HIT.inc(stats.cache_hits)
        if stats.cache_monotone_hits:
            _CACHE_MONOTONE.inc(stats.cache_monotone_hits)
        if stats.cache_misses:
            _CACHE_MISS.inc(stats.cache_misses)
        # learner_invocations counts computed results as they arrive (below),
        # so an abandoned or failed stream does not overstate the work done.

        shared_handle = None
        if len(miss_indices) > 1 and n_jobs > 1:
            # A single miss runs serially inside _compute_stream, so don't
            # copy the dataset into shared memory (or claim we did) for it.
            shared_handle = self.publish(dataset)
            stats.shared_memory = shared_handle is not None

        computed: Iterator[VerificationResult] = iter(())
        if miss_indices:
            computed = engine._compute_stream(
                dataset,
                [rows[i] for i in miss_indices],
                model,
                n_jobs=n_jobs,
                shared_handle=shared_handle,
            )

        computed_by_digest: Dict[str, VerificationResult] = {}
        try:
            for index in range(cutoff):
                result = resolved.get(index)
                if result is None:
                    duplicated = duplicate_of.get(index)
                    if duplicated is not None:
                        # The first occurrence is always at a smaller index,
                        # so its verdict has already landed.
                        result = computed_by_digest[duplicated]
                    else:
                        result = next(computed)
                        stats.learner_invocations += 1
                        computed_by_digest[digests[index]] = result
                        if self.cache is not None:
                            store_chunked(digests[index], result)
                        if journal is not None and result.status in CACHEABLE_STATUSES:
                            # Timeouts / resource exhaustion are machine-
                            # dependent; a resumed run must re-attempt them,
                            # not replay them.
                            journal.record(index, result)
                yield result
        finally:
            if self.cache is not None:
                self.cache.commit()
            if consume_trace is not None:
                steps, reused = consume_trace()
                stats.trace_steps += steps
                stats.trace_reused += reused
            with self._stats_lock:
                self.stats.add(stats)
            events.emit("runtime.batch", **stats.snapshot())
        if journal is not None and cutoff == len(rows):
            # Once the run completes, every journaled verdict also lives in
            # the (now committed) cache — drop the journal so the cache
            # directory does not accumulate one file per finished batch.
            journal.discard()

    # ------------------------------------------------------------ point-wise
    def certify_point(
        self,
        engine,
        dataset: Dataset,
        x: Sequence[float],
        model: PerturbationModel,
    ) -> VerificationResult:
        """Cache-aware single-point certification (used by budget sweeps).

        Cache effectiveness is accounted in :attr:`stats` (budget sweeps
        measure their learner work as a ``learner_invocations`` delta).
        """
        # Budget-search probes reach this entry point directly (not through
        # CertificationRequest), so class-count-dependent families are
        # resolved here before their cache family key is computed.
        model = resolve_model_classes(model, dataset.n_classes)
        row = np.asarray(x, dtype=float)
        fp = fingerprint_dataset(dataset)
        family, budget = model_cache_key(model, len(dataset))
        engine_key = engine_cache_key(engine)
        amount = model.nominal_amount(len(dataset))
        flips = model.nominal_flip_amount(len(dataset))
        if self.cache is not None:
            hit = self.cache.lookup(
                fp,
                point_digest(row),
                family,
                engine_key,
                budget,
                monotone=monotone_in_budget(model),
            )
            if hit is not None:
                with self._stats_lock:
                    if hit.is_exact:
                        self.stats.cache_hits += 1
                        _CACHE_HIT.inc()
                    else:
                        self.stats.cache_monotone_hits += 1
                        _CACHE_MONOTONE.inc()
                return self._adapt_hit(
                    hit, amount, flips, model.log10_num_neighbors(len(dataset))
                )
        consume_trace = getattr(engine, "consume_trace_stats", None)
        if consume_trace is not None:
            consume_trace()
        result = engine._certify_one(
            dataset, row, model, engine._plan_for(dataset, model)
        )
        trace_steps, trace_reused = (
            consume_trace() if consume_trace is not None else (0, 0)
        )
        with self._stats_lock:
            self.stats.cache_misses += 1
            self.stats.learner_invocations += 1
            self.stats.trace_steps += trace_steps
            self.stats.trace_reused += trace_reused
        if self.cache is not None:
            _CACHE_MISS.inc()
        # Per-operation accounting for sweeps: thread-local, so concurrent
        # requests on a shared runtime cannot inflate each other's counts.
        self._batch_local.op_invocations = self._op_invocations() + 1
        self._batch_local.op_trace_steps = (
            int(getattr(self._batch_local, "op_trace_steps", 0)) + trace_steps
        )
        self._batch_local.op_trace_reused = (
            int(getattr(self._batch_local, "op_trace_reused", 0)) + trace_reused
        )
        if self.cache is not None:
            self.cache.store(fp, point_digest(row), family, engine_key, budget, result)
        return result

    # ---------------------------------------------------------- budget sweep
    def budget_sweep(
        self,
        engine,
        dataset: Dataset,
        points: np.ndarray,
        *,
        start: int = 1,
        max_budget: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> List[BudgetSweepOutcome]:
        """Max certified budget per point (doubling + binary search, cached).

        Every attempt flows through the verdict cache with monotone
        derivation enabled, so overlapping sweeps — and reruns of the same
        sweep — resolve from prior verdicts instead of re-running the
        learner.  ``model`` is the scalar-budget family template of
        :func:`repro.verify.search.max_certified_poisoning` (``None`` means
        the paper's ``Δn``).
        """
        return [
            self.max_certified(
                engine, dataset, row, start=start, max_budget=max_budget, model=model
            )
            for row in np.asarray(points, dtype=float)
        ]

    def max_certified(
        self,
        engine,
        dataset: Dataset,
        x: Sequence[float],
        *,
        start: int = 1,
        max_budget: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> BudgetSweepOutcome:
        """Largest budget in ``[1, max_budget]`` the point is certified for.

        The doubling/binary search itself is
        :func:`repro.verify.search.max_certified_poisoning`; this method only
        binds its attempts to this runtime's cache and counts how many of
        them actually ran the learner.
        """
        # Deferred: repro.verify.search pulls in the deprecated verifier shim.
        from repro.verify.search import max_certified_poisoning

        self._reset_op_counters()
        search = max_certified_poisoning(
            _CacheBoundVerifier(self, engine),
            dataset,
            x,
            start=start,
            max_n=max_budget,
            model=model,
        )
        trace_steps, trace_reused = self._op_trace()
        return BudgetSweepOutcome(
            max_certified_n=search.max_certified_n,
            attempts=len(search.attempts),
            learner_invocations=self._op_invocations(),
            trace_steps=trace_steps,
            trace_reused=trace_reused,
        )

    # Pre-generic-search name, kept for callers of the PR-2 API.
    max_certified_budget = max_certified

    # --------------------------------------------------------- pareto sweeps
    def pareto_frontier(
        self,
        engine,
        dataset: Dataset,
        x: Sequence[float],
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> ParetoOutcome:
        """Maximal certified ``(n_remove, n_flip)`` pairs of one point, cached.

        The staircase descent itself is
        :func:`repro.verify.search.pareto_frontier`; this method binds its
        probes to this runtime's cache — whose componentwise pair-dominance
        derivation answers dominated/dominating queries without the learner —
        and counts how many probes actually ran it.
        """
        from repro.verify.search import pareto_frontier

        self._reset_op_counters()
        outcome = pareto_frontier(
            _CacheBoundVerifier(self, engine),
            dataset,
            x,
            max_remove=max_remove,
            max_flip=max_flip,
            model=model,
        )
        trace_steps, trace_reused = self._op_trace()
        return ParetoOutcome(
            frontier=outcome.frontier,
            probes=outcome.probes,
            attempted_pairs=len(outcome.attempts),
            learner_invocations=self._op_invocations(),
            trace_steps=trace_steps,
            trace_reused=trace_reused,
        )

    def pareto_sweep(
        self,
        engine,
        dataset: Dataset,
        points: np.ndarray,
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> List[ParetoOutcome]:
        """Per-point cached Pareto frontiers for a batch of test points.

        Serial by design: the value of the runtime path is that every probe
        shares one verdict cache, so later points (and reruns) are answered
        by dominance derivation.  For cache-less parallel fan-out use
        :func:`repro.verify.search.pareto_sweep` with ``n_jobs``.
        """
        return [
            self.pareto_frontier(
                engine,
                dataset,
                row,
                max_remove=max_remove,
                max_flip=max_flip,
                model=model,
            )
            for row in np.asarray(points, dtype=float)
        ]

    # ----------------------------------------------------------------- misc
    @staticmethod
    def _adapt_hit(
        hit: CacheHit, amount: int, flips: int, log10_datasets: float
    ) -> VerificationResult:
        """Re-anchor a cached verdict to the budget the caller asked about.

        The stored result may come from a different nominal amount (exact
        hits share resolved budgets) or a different budget entirely (monotone
        hits); the status and certificate carry over, while the reported
        ``(amount, flips)`` pair and ``log10 |Δ(T)|`` reflect the current
        query.  Class intervals survive only where they stay sound: a
        *robust* verdict derived from a larger budget keeps its (wider,
        still over-approximating) intervals, but an *unknown* verdict
        derived from a smaller budget drops its intervals — they
        under-approximate what a larger budget can reach.

        ``elapsed_seconds`` / ``peak_memory_bytes`` deliberately keep their
        stored values: per-point numbers describe what the *proof* cost when
        it was computed (provenance), while the report's batch wall-clock
        describes the serving run — a warm rerun shows seconds-long per-point
        proofs under a near-zero batch wall-clock.
        """
        result = hit.result
        changes: dict = {}
        if result.poisoning_amount != amount:
            changes["poisoning_amount"] = amount
        if result.poisoning_flips != flips:
            changes["poisoning_flips"] = flips
        if result.log10_num_datasets != log10_datasets:
            changes["log10_num_datasets"] = log10_datasets
        if not hit.is_exact:
            changes["message"] = (
                f"derived from cached verdict at budget {hit.stored_budget}"
            )
            if not result.is_certified and result.class_intervals:
                changes["class_intervals"] = ()
        return _replace(result, **changes) if changes else result

    def record_coalesced(self, count: int) -> None:
        """Credit ``count`` points answered by another batch's in-flight work.

        Called by the :class:`~repro.api.scheduler.CertificationScheduler`
        when a batch leases points instead of computing (or cache-probing)
        them, so the lifetime ``deduplicated`` counter covers cross-batch
        coalescing as well as in-batch duplicates.
        """
        with self._stats_lock:
            self.stats.deduplicated += count
        _DEDUPLICATED.inc(count)

    def stats_snapshot(self) -> dict:
        """A consistent copy of the lifetime counters, taken under the lock.

        External readers (the service's ``stats`` op, the CLI summary lines)
        must come through here instead of reaching into ``self.stats`` so
        they never observe a batch's counters mid-update.
        """
        with self._stats_lock:
            return self.stats.snapshot()

    def __getstate__(self) -> dict:
        # Runtimes never travel to pool workers (the engine drops its
        # reference when pickled), but stay safe if someone pickles one:
        # neither the sqlite connection, the segment registry, nor the lock
        # survive.
        state = dict(self.__dict__)
        state["_store"] = None
        state["_stats_lock"] = None
        state["_batch_local"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()
        self._batch_local = threading.local()


class _CacheBoundVerifier:
    """Adapter letting `repro.verify.search` attempt budgets through a runtime.

    It exposes the one method the search protocol calls —
    ``certify_point(dataset, x, model)`` — and routes it through the
    runtime's cache, whether or not the engine itself has this (or any)
    runtime attached.
    """

    def __init__(self, runtime: CertificationRuntime, bound_engine) -> None:
        self._runtime = runtime
        self._engine = bound_engine

    def certify_point(self, dataset, x, model):
        return self._runtime.certify_point(self._engine, dataset, x, model)


_DEFAULT_RUNTIME: Optional[CertificationRuntime] = None


def default_runtime() -> CertificationRuntime:
    """The process-wide shared-memory-only runtime (no cache, no journal).

    This is what engines without an explicit ``runtime=`` use for
    ``n_jobs > 1`` batches, giving every parallel caller the zero-copy
    dataset plane by default.
    """
    global _DEFAULT_RUNTIME
    if _DEFAULT_RUNTIME is None:
        _DEFAULT_RUNTIME = CertificationRuntime()
    return _DEFAULT_RUNTIME
