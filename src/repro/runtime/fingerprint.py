"""Content-addressed keys for the runtime layer.

Every runtime feature — the shared-memory dataset plane, the persistent
certification cache, and the resumable run journal — needs stable identities
that survive process boundaries and interpreter restarts.  Python object
identity (``id()``) provides neither, so this module derives keys from
*content*:

* :func:`fingerprint_dataset` — SHA-256 over the feature matrix, the labels,
  the class count, and the feature kinds of a :class:`~repro.core.dataset.Dataset`.
  Cosmetic metadata (``name``, ``feature_names``, ``class_names``) is
  deliberately excluded: renaming a dataset must not invalidate its verdicts.
* :func:`point_digest` — SHA-256 of one test point's ``float64`` bytes.
* :func:`model_cache_key` — the ``(family, resolved budget)`` pair a
  perturbation model denotes against a given training size.  Two models that
  resolve to the same family and budget (e.g. ``RemovalPoisoningModel(1000)``
  and ``FractionalRemovalModel(0.5)`` on a 100-row set with budget 100 ≡ 50…
  when equal) share cached verdicts.
* :func:`engine_cache_key` — the engine configuration facets that can change
  a verdict (depth, domain, cprob method, disjunct budget, impurity,
  predicate pool).  ``timeout_seconds`` is excluded on purpose: timeouts are
  environment-dependent and are never cached.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import (
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)

#: Attribute used to memoize the fingerprint on the (frozen) dataset instance.
_FINGERPRINT_ATTR = "_content_fingerprint"

#: Version tag mixed into every digest so future key-schema changes cannot
#: collide with verdicts cached under the old schema.
_SCHEMA = b"repro-runtime-v1"


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())


def fingerprint_dataset(dataset: Dataset) -> str:
    """Return the content fingerprint of a dataset (hex SHA-256).

    The fingerprint covers ``X``, ``y``, ``n_classes``, and the feature
    kinds — everything that can influence a certification verdict — and
    nothing cosmetic.  It is memoized on the instance, so repeated calls are
    O(1) after the first.
    """
    cached = getattr(dataset, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256(_SCHEMA)
    _hash_array(hasher, dataset.X)
    _hash_array(hasher, dataset.y)
    hasher.update(str(dataset.n_classes).encode())
    hasher.update("|".join(kind.value for kind in dataset.feature_kinds).encode())
    fingerprint = hasher.hexdigest()
    # Dataset is a frozen dataclass; memoize through object.__setattr__ (the
    # same door its own __post_init__ uses).
    object.__setattr__(dataset, _FINGERPRINT_ATTR, fingerprint)
    return fingerprint


def point_digest(x: Sequence[float]) -> str:
    """Return the content digest of one test point (hex SHA-256)."""
    row = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    hasher = hashlib.sha256(_SCHEMA)
    hasher.update(str(row.shape).encode())
    hasher.update(row.tobytes())
    return hasher.hexdigest()


def model_cache_key(model: PerturbationModel, training_size: int) -> Tuple[str, int]:
    """Return ``(family, resolved_budget)`` for a model against a training set.

    The family string identifies the *semantics* of the perturbation space;
    the resolved budget is the integer the monotonicity argument ranges over.
    Removal-style models (``RemovalPoisoningModel``, ``FractionalRemovalModel``)
    share the ``"removal"`` family because they denote the same ``Δn`` space
    once the budget is resolved.
    """
    budget = model.resolve_budget(training_size)
    if isinstance(model, (RemovalPoisoningModel, FractionalRemovalModel)):
        return "removal", budget
    if isinstance(model, LabelFlipModel):
        return f"label-flip:k={model.n_classes}", budget
    # Unknown families fall back to a describing key; monotonicity is not
    # assumed for them (see monotone_in_budget).
    return f"{type(model).__name__}:{model.describe()}", budget


def monotone_in_budget(model: PerturbationModel) -> bool:
    """Whether certification for this model family is monotone in the budget.

    For removal and label-flip models the perturbation spaces are nested
    (``Δn'(T) ⊆ Δn(T)`` for ``n' ≤ n``), so a point proven robust at budget
    ``n`` is robust at every smaller budget, and a point *not* provable at
    ``n`` stays unprovable at every larger budget.  Unknown model families
    get no such assumption.
    """
    return isinstance(
        model, (RemovalPoisoningModel, FractionalRemovalModel, LabelFlipModel)
    )


def engine_cache_key(engine) -> str:
    """Return the verdict-relevant configuration key of a certification engine.

    Includes every knob that can change a (non-timeout) verdict; excludes
    ``timeout_seconds`` because timeout outcomes are never cached.
    """
    pool = getattr(engine, "predicate_pool", None)
    if pool is None:
        pool_key = "default"
    else:
        pool_key = hashlib.sha256(
            "|".join(repr(p) for p in pool).encode()
        ).hexdigest()[:16]
    return (
        f"depth={engine.max_depth}"
        f"|domain={engine.domain}"
        f"|cprob={engine.cprob_method}"
        f"|disjuncts={engine.max_disjuncts}"
        f"|impurity={engine.impurity}"
        f"|pool={pool_key}"
    )
