"""Content-addressed keys for the runtime layer.

Every runtime feature — the shared-memory dataset plane, the persistent
certification cache, and the resumable run journal — needs stable identities
that survive process boundaries and interpreter restarts.  Python object
identity (``id()``) provides neither, so this module derives keys from
*content*:

* :func:`fingerprint_dataset` — SHA-256 over the feature matrix, the labels,
  the class count, and the feature kinds of a :class:`~repro.core.dataset.Dataset`.
  Cosmetic metadata (``name``, ``feature_names``, ``class_names``) is
  deliberately excluded: renaming a dataset must not invalidate its verdicts.
* :func:`point_digest` — SHA-256 of one test point's ``float64`` bytes.
* :func:`model_cache_key` — the ``(family, resolved budget)`` pair a
  perturbation model denotes against a given training size.  Two models that
  resolve to the same family and budget (e.g. ``RemovalPoisoningModel(1000)``
  and ``FractionalRemovalModel(0.5)`` on a 100-row set with budget 100 ≡ 50…
  when equal) share cached verdicts.  The composite removal+flip family keys
  on the resolved *pair* ``(n_remove, n_flip)``; monotone derivation then
  ranges over pair dominance (robust at ``(r, f)`` answers every
  ``(r' ≤ r, f' ≤ f)``), never across non-nested pairs.
* :func:`engine_cache_key` — the engine configuration facets that can change
  a verdict (depth, domain, cprob method, disjunct budget, impurity,
  predicate pool).  ``timeout_seconds`` is excluded on purpose: timeouts are
  environment-dependent and are never cached.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)

#: A resolved cache budget: a single integer for the one-dimensional model
#: families, a ``(n_remove, n_flip)`` pair for the composite family.
BudgetKey = Union[int, Tuple[int, int]]

#: Attribute used to memoize the fingerprint on the (frozen) dataset instance.
_FINGERPRINT_ATTR = "_content_fingerprint"

#: Version tag mixed into every digest so future key-schema changes cannot
#: collide with verdicts cached under the old schema.
_SCHEMA = b"repro-runtime-v1"


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())


def fingerprint_dataset(dataset: Dataset) -> str:
    """Return the content fingerprint of a dataset (hex SHA-256).

    The fingerprint covers ``X``, ``y``, ``n_classes``, and the feature
    kinds — everything that can influence a certification verdict — and
    nothing cosmetic.  It is memoized on the instance, so repeated calls are
    O(1) after the first.
    """
    cached = getattr(dataset, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256(_SCHEMA)
    _hash_array(hasher, dataset.X)
    _hash_array(hasher, dataset.y)
    hasher.update(str(dataset.n_classes).encode())
    hasher.update("|".join(kind.value for kind in dataset.feature_kinds).encode())
    fingerprint = hasher.hexdigest()
    # Dataset is a frozen dataclass; memoize through object.__setattr__ (the
    # same door its own __post_init__ uses).
    object.__setattr__(dataset, _FINGERPRINT_ATTR, fingerprint)
    return fingerprint


def point_digest(x: Sequence[float]) -> str:
    """Return the content digest of one test point (hex SHA-256)."""
    row = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    hasher = hashlib.sha256(_SCHEMA)
    hasher.update(str(row.shape).encode())
    hasher.update(row.tobytes())
    return hasher.hexdigest()


def model_cache_key(
    model: PerturbationModel, training_size: int
) -> Tuple[str, BudgetKey]:
    """Return ``(family, resolved_budget)`` for a model against a training set.

    The family string identifies the *semantics* of the perturbation space;
    the resolved budget is what the monotonicity argument ranges over — an
    integer for the one-dimensional families, the resolved
    ``(n_remove, n_flip)`` pair for the composite family.  Removal-style
    models (``RemovalPoisoningModel``, ``FractionalRemovalModel``) share the
    ``"removal"`` family because they denote the same ``Δn`` space once the
    budget is resolved.  Flip-family keys include the resolved class count —
    the number of label alternatives changes ``Δ(T)`` itself — and raise
    while it is still unresolved rather than fragmenting the keyspace.
    """
    budget = model.resolve_budget(training_size)
    if isinstance(model, (RemovalPoisoningModel, FractionalRemovalModel)):
        return "removal", budget
    if isinstance(model, LabelFlipModel):
        return f"label-flip:k={model.resolved_classes}", budget
    if isinstance(model, CompositePoisoningModel):
        return (
            f"composite:k={model.resolved_classes}",
            model.resolve_budgets(training_size),
        )
    # Unknown families fall back to a describing key; monotonicity is not
    # assumed for them (see monotone_in_budget).
    return f"{type(model).__name__}:{model.describe()}", budget


def monotone_in_budget(model: PerturbationModel) -> bool:
    """Whether certification for this model family is monotone in the budget.

    For removal and label-flip models the perturbation spaces are nested
    (``Δn'(T) ⊆ Δn(T)`` for ``n' ≤ n``), so a point proven robust at budget
    ``n`` is robust at every smaller budget, and a point *not* provable at
    ``n`` stays unprovable at every larger budget.  The composite family is
    nested in the componentwise order on ``(n_remove, n_flip)`` pairs —
    ``Δ_{r',f'}(T) ⊆ Δ_{r,f}(T)`` iff ``r' ≤ r`` and ``f' ≤ f`` — which is
    exactly the dominance the cache's pair lookup implements.  Unknown model
    families get no such assumption.
    """
    return isinstance(
        model,
        (
            RemovalPoisoningModel,
            FractionalRemovalModel,
            LabelFlipModel,
            CompositePoisoningModel,
        ),
    )


def engine_cache_key(engine) -> str:
    """Return the verdict-relevant configuration key of a certification engine.

    Includes every knob that can change a (non-timeout) verdict; excludes
    ``timeout_seconds`` because timeout outcomes are never cached.
    """
    pool = getattr(engine, "predicate_pool", None)
    if pool is None:
        pool_key = "default"
    else:
        pool_key = hashlib.sha256(
            "|".join(repr(p) for p in pool).encode()
        ).hexdigest()[:16]
    return (
        f"depth={engine.max_depth}"
        f"|domain={engine.domain}"
        f"|cprob={engine.cprob_method}"
        f"|disjuncts={engine.max_disjuncts}"
        f"|impurity={engine.impurity}"
        f"|pool={pool_key}"
    )
