"""`repro.runtime` — the scaling layer under the certification engine.

Three cooperating pieces turn the one-shot :class:`~repro.api.CertificationEngine`
into a service that absorbs repeated, overlapping certification traffic:

* the **shared-memory dataset plane** (:class:`DatasetStore`,
  :class:`SharedDatasetHandle`): datasets are published once and attached
  zero-copy by pool workers instead of being pickled into each one;
* the **persistent certification cache** (:class:`CertificationCache`):
  verdicts keyed by content fingerprints, with budget-monotone derivation
  for removal/label-flip families;
* the **resumable run journal** (:class:`RunJournal`): per-point checkpoints
  that let a killed batch restart where it left off.

:class:`CertificationRuntime` is the facade binding them together; pass it to
``CertificationEngine(runtime=...)`` or let parallel batches pick up the
process-wide shared-memory default.
"""

from repro.runtime.cache import CacheHit, CertificationCache
from repro.runtime.fingerprint import (
    engine_cache_key,
    fingerprint_dataset,
    model_cache_key,
    monotone_in_budget,
    point_digest,
)
from repro.runtime.journal import RunJournal, run_id
from repro.runtime.runtime import (
    BatchStats,
    BudgetSweepOutcome,
    CertificationRuntime,
    ParetoOutcome,
    default_runtime,
)
from repro.runtime.shm import DatasetStore, SharedDatasetHandle, default_store

__all__ = [
    "BatchStats",
    "BudgetSweepOutcome",
    "CacheHit",
    "CertificationCache",
    "CertificationRuntime",
    "DatasetStore",
    "ParetoOutcome",
    "RunJournal",
    "SharedDatasetHandle",
    "default_runtime",
    "default_store",
    "engine_cache_key",
    "fingerprint_dataset",
    "model_cache_key",
    "monotone_in_budget",
    "point_digest",
    "run_id",
]
