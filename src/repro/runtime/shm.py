"""Zero-copy dataset sharing across worker processes.

``certify_batch(n_jobs=N)`` used to pickle the full training set into every
pool worker through the initializer arguments — O(dataset × workers) bytes
copied, serialized, and deserialized before the first point is certified.
This module publishes a :class:`~repro.core.dataset.Dataset`'s arrays once
into POSIX shared memory (:mod:`multiprocessing.shared_memory`) and hands
workers a tiny picklable :class:`SharedDatasetHandle` instead; each worker
*attaches* to the same physical pages and reconstructs a Dataset whose
``X``/``y`` are zero-copy views.

Lifecycle rules:

* the **publisher** (:class:`DatasetStore`) owns the segments: it keeps them
  alive for the duration of the process and unlinks them at :meth:`close`
  (registered with :mod:`atexit`);
* **attachers** only close their mapping; they never unlink.  On Python
  < 3.13 attaching also registers the segment with the resource tracker.
  Whether that registration must be undone depends on how the attacher was
  started: fork-started workers *share* the publisher's tracker process (the
  duplicate registration is an idempotent no-op, and unregistering would
  erase the publisher's own entry), while spawn-started workers run a
  private tracker that would unlink the segment when the worker exits.
  :func:`_attach_segment` detects which situation it is in and unregisters
  only from private trackers — mirroring the upstream ``track=False`` fix of
  Python 3.13 without its version requirement.

Hosts without a usable shared-memory filesystem (some sandboxes mount no
``/dev/shm``) make :meth:`DatasetStore.publish` return ``None``; callers fall
back to the pickled-dataset path.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.runtime.fingerprint import fingerprint_dataset
from repro.telemetry import events


#: Whether this process runs a *private* resource tracker (decided once, at
#: the first attach, before that attach can start one): ``None`` = undecided.
_PRIVATE_TRACKER: Optional[bool] = None


def _tracker_is_private() -> bool:
    """Whether attach-time tracker registrations belong to this process alone.

    A tracker pipe inherited from the parent (fork/forkserver) — or started
    by this process's own ``create=True`` segments — must keep the
    registration; a tracker this process is about to start just to record an
    attach must not, or it will unlink the publisher's segment on exit.
    """
    global _PRIVATE_TRACKER
    if _PRIVATE_TRACKER is None:
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            _PRIVATE_TRACKER = resource_tracker._resource_tracker._fd is None
        except (ImportError, AttributeError) as error:
            # The probe reaches into CPython internals (`_resource_tracker._fd`);
            # on an interpreter without them, assume the shared tracker.
            _PRIVATE_TRACKER = False
            events.emit(
                "shm_tracker_probe_failed",
                error_kind=events.classify_error(error),
                error=repr(error),
            )
    return _PRIVATE_TRACKER


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    private = _tracker_is_private()
    shm = shared_memory.SharedMemory(name=name)
    if private:
        try:  # pragma: no cover - spawn-started workers only
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except (ImportError, AttributeError, KeyError, OSError) as error:
            # Failing to unregister means this process's tracker will unlink
            # the publisher's segment at exit — survivable (the publisher
            # re-publishes) but worth an event instead of a silent pass.
            events.emit(
                "shm_tracker_unregister_failed",
                segment=name,
                error_kind=events.classify_error(error),
                error=repr(error),
            )
    return shm


@dataclass(frozen=True)
class SharedArraySpec:
    """Where and how to find one array inside a shared-memory segment."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str

    def read(self, shm: shared_memory.SharedMemory) -> np.ndarray:
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)


@dataclass(frozen=True)
class SharedDatasetHandle:
    """A picklable descriptor of a dataset published in shared memory.

    The handle is what travels through the process-pool initializer instead
    of the dataset itself: a few hundred bytes of names and shapes, however
    large the training set is.
    """

    fingerprint: str
    X_spec: SharedArraySpec
    y_spec: SharedArraySpec
    n_classes: int
    feature_kinds: Tuple[str, ...]
    feature_names: Tuple[str, ...]
    class_names: Tuple[str, ...]
    name: str

    def attach(self) -> Dataset:
        """Reconstruct the dataset as zero-copy views over the shared pages.

        Attached segments are cached per process (keyed by fingerprint) so a
        worker certifying many points maps the dataset exactly once.
        """
        cached = _ATTACHED_DATASETS.get(self.fingerprint)
        if cached is not None:
            return cached
        x_shm = _attach_segment(self.X_spec.segment)
        y_shm = _attach_segment(self.y_spec.segment)
        # Keep the mappings referenced for the life of the process: the numpy
        # views below borrow their buffers.
        _ATTACHED_SEGMENTS[self.X_spec.segment] = x_shm
        _ATTACHED_SEGMENTS[self.y_spec.segment] = y_shm
        dataset = Dataset(
            X=self.X_spec.read(x_shm),
            y=self.y_spec.read(y_shm),
            n_classes=self.n_classes,
            feature_kinds=tuple(FeatureKind(kind) for kind in self.feature_kinds),
            feature_names=self.feature_names,
            class_names=self.class_names,
            name=self.name,
        )
        # The views already carry the published content; stamp the known
        # fingerprint so workers skip rehashing the whole matrix.
        object.__setattr__(dataset, "_content_fingerprint", self.fingerprint)
        _ATTACHED_DATASETS[self.fingerprint] = dataset
        return dataset


#: Per-process registries keeping attached segments (and the datasets built
#: over them) alive; populated by SharedDatasetHandle.attach in pool workers.
_ATTACHED_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_ATTACHED_DATASETS: Dict[str, Dataset] = {}


class DatasetStore:
    """Publisher side of the shared-memory dataset plane.

    One store per process is enough: segments are cached by content
    fingerprint, so publishing the same dataset (or an equal copy of it)
    twice reuses the existing pages.  The store holds at most
    ``max_datasets`` published datasets — least-recently-used ones are
    unlinked as new ones arrive, so a long-lived service cycling through
    many datasets cannot fill the shared-memory filesystem.  (Unlinking is
    safe for batches already running: attached mappings survive the unlink;
    only a *new* attach of an evicted handle fails, and the engine then
    falls back to the pickled dataset.)
    """

    def __init__(self, max_datasets: int = 8) -> None:
        self.max_datasets = max_datasets
        # fingerprint -> (handle, its segments); insertion order is LRU order.
        self._published: Dict[
            str, Tuple[SharedDatasetHandle, Tuple[shared_memory.SharedMemory, ...]]
        ] = {}
        atexit.register(self.close)

    # ---------------------------------------------------------------- publish
    def publish(self, dataset: Dataset) -> Optional[SharedDatasetHandle]:
        """Publish a dataset's arrays; return its handle, or ``None``.

        ``None`` signals that shared memory is unusable on this host right
        now — the first attempt failed, and retrying after evicting every
        held segment failed too.
        """
        fingerprint = fingerprint_dataset(dataset)
        entry = self._published.get(fingerprint)
        if entry is not None:
            # Refresh LRU position.
            self._published[fingerprint] = self._published.pop(fingerprint)
            return entry[0]
        while len(self._published) >= self.max_datasets:
            self._evict_oldest()
        try:
            specs, segments = self._publish_arrays(dataset)
        except OSError:
            # Most likely the shared-memory filesystem is full; free our own
            # stale segments and retry once before giving up on this batch.
            while self._published:
                self._evict_oldest()
            try:
                specs, segments = self._publish_arrays(dataset)
            except OSError:
                return None
        handle = SharedDatasetHandle(
            fingerprint=fingerprint,
            X_spec=specs[0],
            y_spec=specs[1],
            n_classes=dataset.n_classes,
            feature_kinds=tuple(kind.value for kind in dataset.feature_kinds),
            feature_names=dataset.feature_names,
            class_names=dataset.class_names,
            name=dataset.name,
        )
        self._published[fingerprint] = (handle, segments)
        return handle

    def _publish_arrays(
        self, dataset: Dataset
    ) -> Tuple[Tuple[SharedArraySpec, ...], Tuple[shared_memory.SharedMemory, ...]]:
        """Publish X and y; on any failure, unlink whatever was created."""
        specs = []
        segments = []
        try:
            for array in (dataset.X, dataset.y):
                contiguous = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, contiguous.nbytes)
                )
                segments.append(shm)
                view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf)
                view[...] = contiguous
                specs.append(
                    SharedArraySpec(
                        segment=shm.name,
                        shape=tuple(contiguous.shape),
                        dtype=str(contiguous.dtype),
                    )
                )
        except OSError:
            self._unlink_segments(segments)
            raise
        return tuple(specs), tuple(segments)

    # ---------------------------------------------------------------- cleanup
    @staticmethod
    def _unlink_segments(segments) -> None:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already reclaimed by the OS
                pass

    def _evict_oldest(self) -> None:
        fingerprint = next(iter(self._published))
        _, segments = self._published.pop(fingerprint)
        self._unlink_segments(segments)

    @property
    def published_count(self) -> int:
        return len(self._published)

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        for _, segments in self._published.values():
            self._unlink_segments(segments)
        self._published.clear()


_DEFAULT_STORE: Optional[DatasetStore] = None


def default_store() -> DatasetStore:
    """The process-wide dataset store (created lazily)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = DatasetStore()
    return _DEFAULT_STORE
