"""Lightweight span tracing: nestable, thread-safe wall-time attribution.

Spans answer the question counters cannot: *where inside one request did the
time go?*  A traced certification run produces a tree like::

    engine.verify                      2.41s
      engine.certify_one               0.55s
        ladder.box                     0.12s
          transformer.best_split       0.08s
            splitter.split_table       0.05s
          transformer.filter           0.01s
        ladder.disjuncts               0.43s
          ...

Tracing is **opt-in** (:func:`enable_spans`, or the environment variable
``REPRO_TELEMETRY_SPANS=1``) because span bookkeeping costs a few
microseconds per span — negligible on the ~2 s/point cold path it is meant to
diagnose, but pure overhead on the warm cache-served path.  When disabled,
:func:`span` is a single module-flag check that yields ``None``.

Design notes:

* Span stacks are **thread-local**, so concurrent batches on scheduler or
  server threads never corrupt each other's trees.
* A span opened with no enclosing span becomes a *root*; finished roots are
  kept in a bounded process-wide deque (:func:`completed_roots`) so tests and
  diagnostics can observe spans stamped on worker threads they do not own.
* Process-pool workers trace into their own process's deque; span *trees* are
  not shipped to the parent (worker wall time still reaches the parent as
  merged ``worker_task_seconds`` / ``learner_phase_seconds`` metrics — see
  :meth:`repro.telemetry.metrics.MetricsRegistry.merge_snapshot`).  Use
  serial ``n_jobs=1`` runs for full in-process trees.
* Root spans are stamped with the thread's bound request id (see
  :mod:`repro.telemetry.events`), so a daemon's completed-roots ring can be
  searched by correlation id (:func:`find_root_by_request`, the ``trace``
  protocol op behind ``repro trace REQUEST_ID``).
* :meth:`SpanNode.to_dict` is JSON-safe, so the engine can attach a trace
  tree to ``CertificationReport.runtime_stats["trace"]``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Deque, Iterator, List, Optional

from repro.telemetry import events

__all__ = [
    "SpanNode",
    "span",
    "enable_spans",
    "spans_enabled",
    "completed_roots",
    "clear_completed",
    "find_span",
    "find_root_by_request",
]

_MAX_COMPLETED_ROOTS = 64

_enabled = os.environ.get("REPRO_TELEMETRY_SPANS", "0") not in ("0", "")
_local = threading.local()
_completed_lock = threading.Lock()
_completed: Deque["SpanNode"] = deque(maxlen=_MAX_COMPLETED_ROOTS)


class SpanNode:
    """One timed region; ``children`` are the spans opened while it was open."""

    __slots__ = ("name", "duration", "children", "request_id")

    def __init__(self, name: str) -> None:
        self.name = name
        self.duration: float = 0.0
        self.children: List["SpanNode"] = []
        self.request_id: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"

    def to_dict(self) -> dict:
        """JSON-safe tree form (attached to ``runtime_stats['trace']``)."""
        tree = {
            "name": self.name,
            "duration_seconds": self.duration,
            "children": [child.to_dict() for child in self.children],
        }
        if self.request_id is not None:
            tree["request_id"] = self.request_id
        return tree

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def attributed_fraction(self) -> float:
        """Fraction of this span's wall time covered by its child spans.

        The acceptance metric for "no big untracked residual": a well
        instrumented cold run keeps the root's fraction above 0.8.
        """
        if self.duration <= 0.0:
            return 1.0
        covered = sum(child.duration for child in self.children)
        return min(1.0, covered / self.duration)

    def render(self, indent: int = 0) -> str:
        """A human-readable tree (used by ``repro metrics``-style debugging)."""
        lines = [f"{'  ' * indent}{self.name:<40s} {self.duration * 1000.0:10.3f} ms"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def enable_spans(enabled: bool = True) -> None:
    """Turn span tracing on or off process-wide."""
    global _enabled
    _enabled = bool(enabled)


def spans_enabled() -> bool:
    return _enabled


def _stack() -> List[SpanNode]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def span(name: str) -> Iterator[Optional[SpanNode]]:
    """Time a region and attach it to the current thread's trace tree.

    Yields the :class:`SpanNode` (its ``duration`` is final once the context
    exits), or ``None`` when tracing is disabled — callers must not rely on
    the node being present.
    """
    if not _enabled:
        yield None
        return
    stack = _stack()
    node = SpanNode(name)
    parent = stack[-1] if stack else None
    if parent is not None:
        parent.children.append(node)
    else:
        node.request_id = events.current_request_id()
    stack.append(node)
    started = perf_counter()
    try:
        yield node
    finally:
        node.duration = perf_counter() - started
        if stack and stack[-1] is node:
            stack.pop()
        if parent is None:
            with _completed_lock:
                _completed.append(node)


def completed_roots() -> List[SpanNode]:
    """Recently finished root spans, oldest first (bounded ring buffer)."""
    with _completed_lock:
        return list(_completed)


def clear_completed() -> None:
    with _completed_lock:
        _completed.clear()


def find_span(name: str) -> Optional[SpanNode]:
    """Search completed roots (newest first) for a span with ``name``."""
    for root in reversed(completed_roots()):
        for node in root.walk():
            if node.name == name:
                return node
    return None


def find_root_by_request(request_id: str) -> Optional[SpanNode]:
    """Search completed roots (newest first) for one stamped ``request_id``."""
    for root in reversed(completed_roots()):
        if root.request_id == request_id:
            return root
    return None
