"""Request-correlated structured event log (JSON lines).

Metrics aggregate; the event log *narrates*.  One certification request
driven through ``repro --connect`` produces a handful of JSONL lines — one
at the client, one at the server dispatch, one per scheduler batch, one per
worker task — all carrying the same 16-hex-char **request id** minted where
the request entered the system (the CLI or :class:`CertificationClient`).
Grepping the log for that id reconstructs the request's path across
processes, which no per-process metric snapshot can do.

Every event is one JSON object per line::

    {"ts": 1754550000.123, "event": "server.dispatch", "rid": "9f86d081884c7d65",
     "pid": 4242, "op": "certify", "seconds": 0.41, "outcome": "ok"}

Common fields: ``ts`` (``time.time()``), ``event`` (dotted source.action),
``rid`` (request id, when one is bound), ``pid``.  Everything else is
event-specific.  Two cross-cutting behaviours:

* **Slow-request flagging** — events carrying a ``seconds`` field at or over
  the threshold (``REPRO_LOG_SLOW_SECONDS``, default 1.0) gain
  ``"slow": true``, so a one-line grep surfaces outliers.
* **Error taxonomy** — :func:`classify_error` maps exceptions onto a small
  closed vocabulary (``validation`` / ``protocol`` / ``timeout`` /
  ``resource`` / ``io`` / ``internal``) emitted as ``error_kind``, so error
  rates can be bucketed without parsing free-form messages.

The log is **off by default**.  Enable it with :func:`configure` (the CLI's
``--log-json PATH``) or the ``REPRO_LOG_JSON`` environment variable.
:func:`configure` also exports the path back into ``REPRO_LOG_JSON`` so
forked pool workers inherit the destination; writes are line-buffered
appends, safe for multiple processes on POSIX.

Request ids bind thread-locally (:func:`bind_request`), mirroring the span
stacks in :mod:`repro.telemetry.tracing`; cross-process propagation is
explicit — the service protocol carries the id in a frame's ``"rid"`` field
and the engine hands it to pool workers inside each task payload.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

__all__ = [
    "bind_request",
    "classify_error",
    "configure",
    "configured_path",
    "current_request_id",
    "emit",
    "new_request_id",
    "slow_threshold_seconds",
]

_DEFAULT_SLOW_SECONDS = 1.0

_lock = threading.Lock()
_local = threading.local()
_sink: Optional[TextIO] = None
_sink_path: Optional[str] = None
_env_checked = False


def new_request_id() -> str:
    """Mint a request id: 16 hex chars, unique enough for log correlation."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> Optional[str]:
    """The request id bound to this thread, or None outside any request."""
    return getattr(_local, "request_id", None)


@contextmanager
def bind_request(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``request_id`` to this thread for the duration of the context.

    Bindings nest (an inner bind shadows, then restores, the outer one) and
    ``bind_request(None)`` is a no-op passthrough, so call sites can bind
    unconditionally with whatever id they were (or were not) handed.
    """
    if request_id is None:
        yield None
        return
    previous = getattr(_local, "request_id", None)
    _local.request_id = request_id
    try:
        yield request_id
    finally:
        _local.request_id = previous


def configure(path: Optional[str]) -> None:
    """Open (or with ``None``, close) the JSONL sink at ``path``.

    The path is exported to ``REPRO_LOG_JSON`` so processes forked after
    this call — pool workers, a daemon's scheduler threads' pools — append
    to the same file.
    """
    global _sink, _sink_path, _env_checked
    with _lock:
        if _sink is not None:
            _sink.close()
            _sink = None
        _sink_path = path
        _env_checked = True
        if path is None:
            os.environ.pop("REPRO_LOG_JSON", None)
            return
        os.environ["REPRO_LOG_JSON"] = path
        _sink = open(path, "a", buffering=1, encoding="utf-8")


def configured_path() -> Optional[str]:
    """The active sink path (after lazy env pickup), or None when disabled."""
    _maybe_configure_from_env()
    # Snapshot read of an atomic reference; a racing configure() just means
    # the caller sees the path from one side of the switch.
    return _sink_path  # repro: ignore[lock-discipline]


def slow_threshold_seconds() -> float:
    raw = os.environ.get("REPRO_LOG_SLOW_SECONDS", "")
    try:
        return float(raw) if raw else _DEFAULT_SLOW_SECONDS
    except ValueError:
        return _DEFAULT_SLOW_SECONDS


def _maybe_configure_from_env() -> None:
    # Lazy one-shot pickup of REPRO_LOG_JSON: forked workers inherit the env
    # but not the parent's open file object, so the first emit() in a worker
    # opens its own append handle.
    global _sink, _sink_path, _env_checked
    # Double-checked fast path: a stale False only sends us into the locked
    # slow path, which re-tests under _lock.
    if _env_checked:  # repro: ignore[lock-discipline]
        return
    with _lock:
        if _env_checked:
            return
        path = os.environ.get("REPRO_LOG_JSON")
        if path:
            try:
                _sink = open(path, "a", buffering=1, encoding="utf-8")
                _sink_path = path
            except OSError:
                _sink = None
                _sink_path = None
        _env_checked = True


def emit(event: str, **fields: object) -> None:
    """Append one event line; a silent no-op when no sink is configured.

    ``rid`` defaults to the thread's bound request id; pass ``rid=...`` to
    override (workers receive the id inside their task payload rather than
    via a thread binding).  A ``seconds`` field at or above the slow
    threshold stamps ``"slow": true``.
    """
    _maybe_configure_from_env()
    # Snapshot the sink reference once so a concurrent configure(None) cannot
    # null it mid-emit; the write itself re-synchronizes on _lock below.
    sink = _sink  # repro: ignore[lock-discipline]
    if sink is None:
        return
    record: dict = {"ts": time.time(), "event": event, "pid": os.getpid()}
    rid = fields.pop("rid", None) or current_request_id()
    if rid is not None:
        record["rid"] = rid
    record.update(fields)
    seconds = record.get("seconds")
    if isinstance(seconds, (int, float)) and seconds >= slow_threshold_seconds():
        record["slow"] = True
    line = json.dumps(record, default=str) + "\n"
    with _lock:
        try:
            sink.write(line)
        except (OSError, ValueError):  # pragma: no cover - sink went away
            pass


def classify_error(exc: BaseException) -> str:
    """Map an exception to the closed error vocabulary for ``error_kind``.

    Matches on type *names* as well as types so service-layer errors
    (``ValidationError``, ``ProtocolError``) and engine budget stops
    (``DisjunctBudgetExceeded``) classify without importing their modules.
    """
    names = {cls.__name__ for cls in type(exc).__mro__}
    # Protocol first: ProtocolError and JSONDecodeError subclass ValueError,
    # so the validation bucket would otherwise shadow them.
    if "ProtocolError" in names or isinstance(exc, (json.JSONDecodeError,)):
        return "protocol"
    if isinstance(exc, (ValueError, TypeError, KeyError)) or "ValidationError" in names:
        return "validation"
    if isinstance(exc, TimeoutError) or "Timeout" in type(exc).__name__:
        return "timeout"
    if "DisjunctBudgetExceeded" in names or isinstance(exc, (MemoryError, RecursionError)):
        return "resource"
    if isinstance(exc, (OSError, EOFError, ConnectionError)):
        return "io"
    return "internal"


def _reset_for_tests() -> None:
    """Close the sink and forget env pickup (test isolation helper)."""
    global _sink, _sink_path, _env_checked
    with _lock:
        if _sink is not None:
            _sink.close()
        _sink = None
        _sink_path = None
        _env_checked = False
    if hasattr(_local, "request_id"):
        _local.request_id = None
