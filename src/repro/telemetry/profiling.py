"""Profiling hooks: attribute learner wall time to ladder stage × phase.

The engine certifies a point by walking a *domain ladder* (``box`` then
``disjuncts``, or their flip counterparts), and each rung spends its time in
a handful of transformer *phases* (``pure_exit``, ``best_split``, ``filter``,
``split_table``).  These hooks cross the two axes: the engine marks the
current ladder stage (:func:`ladder_stage`), and the instrumented hot loops
in :mod:`repro.verify.transformers`, :mod:`repro.verify.abstract_learner`,
and :mod:`repro.core.splitter` wrap their phases in :func:`phase`, which

* always (counters mode) observes ``learner_phase_seconds{stage,phase}`` in
  the process registry, and
* when span tracing is enabled, additionally stamps a
  ``transformer.<phase>`` span into the current trace tree.

Only the cold compute path reaches these hooks — warm (cache-served) points
never run the learner — so the attribution comes at no warm-path cost.  The
stage marker is thread-local, matching the thread-per-batch execution model
of the scheduler and server.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional

from repro.telemetry import metrics, tracing

__all__ = ["ladder_stage", "current_stage", "phase"]

_stage_local = threading.local()

#: Wall time per (ladder stage, transformer phase); the instrument panel for
#: the pooled-vs-serial gap recorded in BENCH_parallel.json.
PHASE_SECONDS = metrics.histogram(
    "learner_phase_seconds",
    "Wall seconds spent per abstract-learner phase, by ladder stage.",
    labelnames=("stage", "phase"),
)


@contextmanager
def ladder_stage(name: str) -> Iterator[None]:
    """Mark the active domain-ladder rung (e.g. ``box``, ``flip-disjuncts``)."""
    previous: Optional[str] = getattr(_stage_local, "stage", None)
    _stage_local.stage = name
    try:
        yield
    finally:
        _stage_local.stage = previous


def current_stage() -> str:
    """The active ladder rung, or ``"none"`` outside a ladder walk."""
    return getattr(_stage_local, "stage", None) or "none"


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time one transformer phase under the current ladder stage."""
    stage = current_stage()  # closed vocabulary: ladder rung names or "none"
    if tracing.spans_enabled():
        with tracing.span(f"transformer.{name}"):
            started = perf_counter()
            try:
                yield
            finally:
                PHASE_SECONDS.observe(perf_counter() - started, stage=stage, phase=name)
        return
    started = perf_counter()
    try:
        yield
    finally:
        PHASE_SECONDS.observe(perf_counter() - started, stage=stage, phase=name)
