"""Observability for the certification stack: metrics, spans, and profiling.

Three cooperating pieces (see the per-module docstrings for design details):

* :mod:`repro.telemetry.metrics` — a process-wide :class:`MetricsRegistry`
  of thread-safe counters, gauges, and fixed-bucket histograms with labeled
  series, exportable as a JSON snapshot or Prometheus text exposition.
  Counters are always on (cheap enough for the warm path) unless the
  registry is disabled with :func:`set_enabled` or ``REPRO_TELEMETRY=0``.
* :mod:`repro.telemetry.tracing` — a nestable, thread-safe span tracer.
  Opt-in via :func:`enable_spans` or ``REPRO_TELEMETRY_SPANS=1``; traced
  requests attach their tree to ``CertificationReport.runtime_stats["trace"]``.
* :mod:`repro.telemetry.profiling` — ladder-stage × transformer-phase wall
  time attribution hooks used by the cold abstract-learner loops.

The daemon serves the registry through the versioned ``metrics`` protocol
op; the CLI exposes it via ``repro metrics`` and ``--metrics-json PATH``.
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    get_registry,
    histogram,
    series_value,
    set_enabled,
)
from repro.telemetry.tracing import (
    SpanNode,
    clear_completed,
    completed_roots,
    enable_spans,
    find_span,
    span,
    spans_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanNode",
    "clear_completed",
    "completed_roots",
    "counter",
    "enable_spans",
    "enabled",
    "find_span",
    "gauge",
    "get_registry",
    "histogram",
    "series_value",
    "set_enabled",
    "span",
    "spans_enabled",
]
