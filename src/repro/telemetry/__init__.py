"""Observability for the certification stack: metrics, spans, events, profiling.

Four cooperating pieces (see the per-module docstrings for design details):

* :mod:`repro.telemetry.metrics` — a process-wide :class:`MetricsRegistry`
  of thread-safe counters, gauges, and fixed-bucket histograms with labeled
  series, exportable as a JSON snapshot or Prometheus text exposition.
  Counters are always on (cheap enough for the warm path) unless the
  registry is disabled with :func:`set_enabled` or ``REPRO_TELEMETRY=0``.
  Pool workers ship per-task delta snapshots back to the parent, which
  folds them in with :meth:`MetricsRegistry.merge_snapshot`.
* :mod:`repro.telemetry.tracing` — a nestable, thread-safe span tracer.
  Opt-in via :func:`enable_spans` or ``REPRO_TELEMETRY_SPANS=1``; traced
  requests attach their tree to ``CertificationReport.runtime_stats["trace"]``
  and root spans carry the bound request id.
* :mod:`repro.telemetry.events` — a request-correlated JSONL event log
  (off by default; ``--log-json PATH`` / ``REPRO_LOG_JSON``) with slow
  flagging and an error taxonomy.
* :mod:`repro.telemetry.profiling` — ladder-stage × transformer-phase wall
  time attribution hooks used by the cold abstract-learner loops.

The daemon serves the registry through the versioned ``metrics`` protocol
op; the CLI exposes it via ``repro metrics`` and ``--metrics-json PATH``.
"""

from repro.telemetry import events
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    diff_snapshots,
    enabled,
    gauge,
    get_registry,
    histogram,
    histogram_quantile,
    series_value,
    set_enabled,
)
from repro.telemetry.tracing import (
    SpanNode,
    clear_completed,
    completed_roots,
    enable_spans,
    find_root_by_request,
    find_span,
    span,
    spans_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanNode",
    "clear_completed",
    "completed_roots",
    "counter",
    "diff_snapshots",
    "enable_spans",
    "enabled",
    "events",
    "find_root_by_request",
    "find_span",
    "gauge",
    "get_registry",
    "histogram",
    "histogram_quantile",
    "series_value",
    "set_enabled",
    "span",
    "spans_enabled",
]
