"""Process-wide metrics registry: counters, gauges, and histograms.

The registry is the always-on half of the telemetry subsystem: counter
increments and histogram observations are a dict lookup plus a locked float
add, cheap enough to leave enabled on the warm serving path (the paired
``benchmarks/bench_telemetry.py`` keeps the overhead under 5%).  Span tracing,
the expensive half, lives in :mod:`repro.telemetry.tracing` and is opt-in.

Metrics are *labeled series*: one metric family (say
``cache_lookups_total``) owns one series per distinct label value combination
(``result="hit"``, ``result="miss"``, ...).  Hot call sites bind their labels
once at import time (:meth:`Counter.labels`) so the per-event cost is a single
lock/add.

Two export formats are supported:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict, served by the daemon's
  ``metrics`` op and written by the CLI's ``--metrics-json``;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (version 0.0.4), so a scraper can poll the daemon directly.

Everything here is standard library only and safe to import from pool
workers; each process has its own registry.  Worker registries do not die
with the worker: pool workers ship a per-task **delta snapshot**
(:func:`diff_snapshots`) back with each result, and the parent folds it into
its own registry with :meth:`MetricsRegistry.merge_snapshot` — commutative
(counters and histogram buckets add), idempotent per task id — so
``n_jobs > 1`` batches attribute ``learner_phase_seconds`` and friends
exactly like serial runs.
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "set_enabled",
    "enabled",
    "diff_snapshots",
    "histogram_quantile",
    "series_value",
]

LabelValues = Tuple[str, ...]

#: Default latency buckets (seconds).  They span sub-millisecond sqlite ops
#: up to the minutes-long cold disjunctive runs of the paper's evaluation.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints stay ints)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], labelvalues: LabelValues) -> str:
    if not labelnames:
        return ""
    escaped = (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        for value in labelvalues
    )
    pairs = ",".join(f'{name}="{value}"' for name, value in zip(labelnames, escaped))
    return "{" + pairs + "}"


class _Metric:
    """Base class for one metric family (shared bookkeeping)."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str, labelnames: Sequence[str]
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, object] = {}
        if not self.labelnames:
            # Unlabeled families expose their single series eagerly so a
            # snapshot shows 0 rather than an absent metric.
            self._series[()] = self._new_series()

    # -- subclass hooks ----------------------------------------------------
    def _new_series(self) -> object:
        raise NotImplementedError

    def _series_snapshot(self, state: object) -> dict:
        raise NotImplementedError

    def _series_exposition(self, labelvalues: LabelValues, state: object) -> List[str]:
        raise NotImplementedError

    def _merge_series(self, state: object, payload: Mapping) -> None:
        raise NotImplementedError

    # -- shared API --------------------------------------------------------
    def _resolve(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _state(self, labelvalues: LabelValues) -> object:
        # Double-checked fast path on the hot record() route: a missed racing
        # insert falls through to the locked setdefault.
        state = self._series.get(labelvalues)  # repro: ignore[lock-discipline]
        if state is None:
            with self._lock:
                state = self._series.setdefault(labelvalues, self._new_series())
        return state

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            if not self.labelnames:
                self._series[()] = self._new_series()

    def _family_extra(self) -> dict:
        """Extra family-level snapshot fields (histogram bucket bounds)."""
        return {}

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {
                    "labels": dict(zip(self.labelnames, labelvalues)),
                    **self._series_snapshot(state),
                }
                for labelvalues, state in sorted(self._series.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            **self._family_extra(),
            "series": series,
        }

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for labelvalues, state in sorted(self._series.items()):
                lines.extend(self._series_exposition(labelvalues, state))
        return lines


class _ScalarSeries:
    __slots__ = ("value", "lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.lock = threading.Lock()


class Counter(_Metric):
    """A monotonically increasing counter (optionally labeled)."""

    kind = "counter"

    def _new_series(self) -> _ScalarSeries:
        return _ScalarSeries()

    def labels(self, **labels: str) -> "BoundCounter":
        return BoundCounter(self, self._state(self._resolve(labels)))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value += amount

    def value(self, **labels: str) -> float:
        # Unlocked read of one series' float: tests and dashboards tolerate a
        # snapshot racing a concurrent inc.
        state = self._series.get(self._resolve(labels))  # repro: ignore[lock-discipline]
        return 0.0 if state is None else state.value

    def total(self) -> float:
        with self._lock:
            return sum(state.value for state in self._series.values())

    def _series_snapshot(self, state: _ScalarSeries) -> dict:
        return {"value": state.value}

    def _series_exposition(self, labelvalues: LabelValues, state: _ScalarSeries) -> List[str]:
        labels = _format_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_format_value(state.value)}"]

    def _merge_series(self, state: _ScalarSeries, payload: Mapping) -> None:
        amount = float(payload.get("value", 0.0))
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot merge a negative delta")
        with state.lock:
            state.value += amount


class BoundCounter:
    """A counter series with its labels pre-resolved (hot-path helper)."""

    __slots__ = ("_metric", "_state")

    def __init__(self, metric: Counter, state: _ScalarSeries) -> None:
        self._metric = metric
        self._state = state

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric._registry._enabled:
            return
        state = self._state
        with state.lock:
            state.value += amount


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, in-flight counts)."""

    kind = "gauge"

    def _new_series(self) -> _ScalarSeries:
        return _ScalarSeries()

    def set(self, value: float, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value += amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        # Same snapshot-read tolerance as Counter.value above.
        state = self._series.get(self._resolve(labels))  # repro: ignore[lock-discipline]
        return 0.0 if state is None else state.value

    def _series_snapshot(self, state: _ScalarSeries) -> dict:
        return {"value": state.value}

    def _series_exposition(self, labelvalues: LabelValues, state: _ScalarSeries) -> List[str]:
        labels = _format_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_format_value(state.value)}"]

    def _merge_series(self, state: _ScalarSeries, payload: Mapping) -> None:
        # Gauges describe the *sender's* current level, not an increment:
        # the merged value is last-writer-wins (deltas only ship changed
        # gauges, so a quiet worker never clobbers a parent gauge).
        with state.lock:
            state.value = float(payload.get("value", 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "lock")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.lock = threading.Lock()


class Histogram(_Metric):
    """A fixed-bucket histogram of observed values (typically seconds)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        super().__init__(registry, name, help, labelnames)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.buckets))

    def labels(self, **labels: str) -> "BoundHistogram":
        return BoundHistogram(self, self._state(self._resolve(labels)))

    def observe(self, value: float, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        index = bisect_left(self.buckets, value)
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1

    def _family_extra(self) -> dict:
        return {"buckets": list(self.buckets)}

    def _series_snapshot(self, state: _HistogramSeries) -> dict:
        cumulative = 0
        buckets = {}
        for bound, count in zip(self.buckets, state.counts):
            cumulative += count
            buckets[repr(bound)] = cumulative
        buckets["+Inf"] = state.count
        return {"count": state.count, "sum": state.sum, "buckets": buckets}

    def _merge_series(self, state: _HistogramSeries, payload: Mapping) -> None:
        """Fold one snapshot series into this one, bucket-wise.

        The wire form carries *cumulative* bucket counts (the Prometheus
        convention); cumulative counts of a delta are the deltas of the
        cumulative counts, so un-cumulating and adding per bucket is exact.
        """
        incoming = payload.get("buckets", {})
        expected = {repr(bound) for bound in self.buckets} | {"+Inf"}
        if incoming and set(incoming) != expected:
            raise ValueError(
                f"histogram {self.name!r} cannot merge a snapshot with "
                f"different bucket bounds"
            )
        count = int(payload.get("count", 0))
        total = float(payload.get("sum", 0.0))
        per_bucket = []
        previous = 0
        for bound in self.buckets:
            cumulative = int(incoming.get(repr(bound), previous))
            per_bucket.append(cumulative - previous)
            previous = cumulative
        per_bucket.append(count - previous)  # the +Inf bucket
        if any(increment < 0 for increment in per_bucket) or count < 0:
            raise ValueError(
                f"histogram {self.name!r} cannot merge a negative delta"
            )
        with state.lock:
            for index, increment in enumerate(per_bucket):
                state.counts[index] += increment
            state.sum += total
            state.count += count

    def _series_exposition(
        self, labelvalues: LabelValues, state: _HistogramSeries
    ) -> List[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, state.counts):
            cumulative += count
            labels = _format_labels(
                self.labelnames + ("le",), labelvalues + (repr(bound),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _format_labels(self.labelnames + ("le",), labelvalues + ("+Inf",))
        lines.append(f"{self.name}_bucket{labels} {state.count}")
        plain = _format_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{plain} {_format_value(state.sum)}")
        lines.append(f"{self.name}_count{plain} {state.count}")
        return lines


class BoundHistogram:
    """A histogram series with its labels pre-resolved (hot-path helper)."""

    __slots__ = ("_metric", "_state")

    def __init__(self, metric: Histogram, state: _HistogramSeries) -> None:
        self._metric = metric
        self._state = state

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        state = self._state
        index = bisect_left(metric.buckets, value)
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1


class MetricsRegistry:
    """A named collection of metric families, one per process by default.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    modules can each ask for the same family and share its series.  The
    registry can be globally disabled (``set_enabled(False)``) to measure the
    zero-telemetry baseline; disabled increments are a single attribute check.
    """

    #: Bound on remembered merge task ids (idempotence window).  Far larger
    #: than any in-flight pool batch; FIFO-evicted beyond that.
    MERGED_TASKS_LIMIT = 8192

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._enabled = os.environ.get("REPRO_TELEMETRY", "1") != "0"
        self._merged_tasks: "OrderedDict[str, None]" = OrderedDict()

    # -- registration ------------------------------------------------------
    def _register(self, cls: type, name: str, **kwargs: object) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                labelnames = tuple(kwargs.get("labelnames", ()))
                if labelnames != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {labelnames}"
                    )
                return existing
            metric = cls(self, name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help=help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- enablement --------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def reset(self) -> None:
        """Zero every series (registrations survive).  Intended for tests."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    # -- cross-process merge ------------------------------------------------
    def merge_snapshot(
        self, snapshot: Mapping[str, Mapping], task_id: Optional[str] = None
    ) -> bool:
        """Fold a (delta) snapshot from another process into this registry.

        Families absent here are created from the snapshot's own ``type`` /
        ``help`` / ``labelnames`` (and ``buckets`` for histograms), so a
        worker can ship series the parent never registered.  Counters and
        histograms *add* — merging is commutative across workers — while
        gauges are last-writer-wins.  When ``task_id`` is given, a repeat
        merge of the same id is a no-op (idempotence for at-least-once
        delivery); the remembered-id window is bounded by
        :attr:`MERGED_TASKS_LIMIT`.  Returns True when the snapshot was
        applied, False when skipped (registry disabled or duplicate task).
        """
        if not self._enabled:
            return False
        if task_id is not None:
            with self._lock:
                if task_id in self._merged_tasks:
                    return False
                self._merged_tasks[task_id] = None
                while len(self._merged_tasks) > self.MERGED_TASKS_LIMIT:
                    self._merged_tasks.popitem(last=False)
        for name, family in snapshot.items():
            kind = family.get("type")
            labelnames = tuple(family.get("labelnames", ()))
            help_text = str(family.get("help", ""))
            if kind == "counter":
                metric: _Metric = self.counter(name, help=help_text, labelnames=labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help=help_text, labelnames=labelnames)
            elif kind == "histogram":
                buckets = tuple(family.get("buckets", ())) or DEFAULT_BUCKETS
                metric = self.histogram(
                    name, help=help_text, labelnames=labelnames, buckets=buckets
                )
            else:
                raise ValueError(f"cannot merge metric {name!r} of type {kind!r}")
            for series in family.get("series", []):
                labels = series.get("labels", {})
                labelvalues = tuple(str(labels[label]) for label in metric.labelnames)
                metric._merge_series(metric._state(labelvalues), series)
        return True

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """A JSON-safe dict: ``{metric_name: {type, help, labelnames, series}}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def snapshot_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (content type text/plain)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _, metric in metrics:
            lines.extend(metric.exposition())
        return "\n".join(lines) + "\n" if lines else ""


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
    return _REGISTRY.counter(name, help=help, labelnames=labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help=help, labelnames=labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    return _REGISTRY.histogram(name, help=help, labelnames=labelnames, buckets=buckets)


def set_enabled(enabled: bool) -> None:
    _REGISTRY.set_enabled(enabled)


def enabled() -> bool:
    return _REGISTRY.enabled


def diff_snapshots(
    before: Mapping[str, Mapping], after: Mapping[str, Mapping]
) -> Dict[str, dict]:
    """The delta between two snapshots of the *same* registry.

    This is the wire form a pool worker ships back with each task result:
    snapshot at task start, snapshot at task end, diff.  Counters and
    histograms subtract (only positive deltas are kept); gauges are included
    only when their value changed, carrying the ``after`` level.  Families
    and series with no activity between the two snapshots are dropped, so a
    quiet task ships an empty dict.
    """
    delta: Dict[str, dict] = {}
    for name, family in after.items():
        kind = family.get("type")
        base = before.get(name, {})
        base_series = {
            tuple(sorted(series.get("labels", {}).items())): series
            for series in base.get("series", [])
        }
        changed = []
        for series in family.get("series", []):
            key = tuple(sorted(series.get("labels", {}).items()))
            prior = base_series.get(key)
            if kind == "counter":
                increment = series.get("value", 0.0) - (
                    prior.get("value", 0.0) if prior else 0.0
                )
                if increment > 0:
                    changed.append({"labels": series.get("labels", {}), "value": increment})
            elif kind == "gauge":
                value = series.get("value", 0.0)
                if prior is None or value != prior.get("value", 0.0):
                    changed.append({"labels": series.get("labels", {}), "value": value})
            elif kind == "histogram":
                prior_count = prior.get("count", 0) if prior else 0
                count = series.get("count", 0) - prior_count
                if count <= 0:
                    continue
                prior_buckets = prior.get("buckets", {}) if prior else {}
                # Cumulative counts of the delta are deltas of the
                # cumulative counts, so bucket-wise subtraction is exact.
                buckets = {
                    bound: cumulative - prior_buckets.get(bound, 0)
                    for bound, cumulative in series.get("buckets", {}).items()
                }
                changed.append(
                    {
                        "labels": series.get("labels", {}),
                        "count": count,
                        "sum": series.get("sum", 0.0)
                        - (prior.get("sum", 0.0) if prior else 0.0),
                        "buckets": buckets,
                    }
                )
        if changed:
            delta[name] = {
                "type": kind,
                "help": family.get("help", ""),
                "labelnames": list(family.get("labelnames", ())),
                **(
                    {"buckets": list(family.get("buckets", ()))}
                    if kind == "histogram" and family.get("buckets")
                    else {}
                ),
                "series": changed,
            }
    return delta


def histogram_quantile(series: Mapping, q: float) -> Optional[float]:
    """Estimate the q-quantile of one snapshot histogram series.

    Standard Prometheus-style estimate: find the bucket the target rank
    falls in and interpolate linearly inside it.  Ranks landing in the
    ``+Inf`` bucket clamp to the highest finite bound.  Returns None for an
    empty series.
    """
    count = series.get("count", 0)
    if count <= 0:
        return None
    buckets = series.get("buckets", {})
    finite = sorted(
        (float(bound), cumulative)
        for bound, cumulative in buckets.items()
        if bound != "+Inf"
    )
    if not finite:
        return None
    rank = q * count
    previous_bound = 0.0
    previous_cumulative = 0
    for bound, cumulative in finite:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cumulative) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_cumulative = bound, cumulative
    return finite[-1][0]


def series_value(
    snapshot: Mapping[str, dict], name: str, **labels: str
) -> Union[float, int]:
    """Read one series value out of a :meth:`MetricsRegistry.snapshot` dict.

    Convenience for tests and CI assertions: returns 0 when the metric or
    series is absent; for histograms returns the observation count.
    """
    family = snapshot.get(name)
    if family is None:
        return 0
    for series in family.get("series", []):
        if series.get("labels", {}) == labels:
            if family.get("type") == "histogram":
                return series.get("count", 0)
            return series.get("value", 0)
    return 0
