"""Process-wide metrics registry: counters, gauges, and histograms.

The registry is the always-on half of the telemetry subsystem: counter
increments and histogram observations are a dict lookup plus a locked float
add, cheap enough to leave enabled on the warm serving path (the paired
``benchmarks/bench_telemetry.py`` keeps the overhead under 5%).  Span tracing,
the expensive half, lives in :mod:`repro.telemetry.tracing` and is opt-in.

Metrics are *labeled series*: one metric family (say
``cache_lookups_total``) owns one series per distinct label value combination
(``result="hit"``, ``result="miss"``, ...).  Hot call sites bind their labels
once at import time (:meth:`Counter.labels`) so the per-event cost is a single
lock/add.

Two export formats are supported:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict, served by the daemon's
  ``metrics`` op and written by the CLI's ``--metrics-json``;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (version 0.0.4), so a scraper can poll the daemon directly.

Everything here is standard library only and safe to import from pool
workers; each process has its own registry (a worker's counters die with the
worker — per-process attribution is a documented limitation).
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "set_enabled",
    "enabled",
]

LabelValues = Tuple[str, ...]

#: Default latency buckets (seconds).  They span sub-millisecond sqlite ops
#: up to the minutes-long cold disjunctive runs of the paper's evaluation.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints stay ints)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], labelvalues: LabelValues) -> str:
    if not labelnames:
        return ""
    escaped = (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        for value in labelvalues
    )
    pairs = ",".join(f'{name}="{value}"' for name, value in zip(labelnames, escaped))
    return "{" + pairs + "}"


class _Metric:
    """Base class for one metric family (shared bookkeeping)."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str, labelnames: Sequence[str]
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, object] = {}
        if not self.labelnames:
            # Unlabeled families expose their single series eagerly so a
            # snapshot shows 0 rather than an absent metric.
            self._series[()] = self._new_series()

    # -- subclass hooks ----------------------------------------------------
    def _new_series(self) -> object:
        raise NotImplementedError

    def _series_snapshot(self, state: object) -> dict:
        raise NotImplementedError

    def _series_exposition(self, labelvalues: LabelValues, state: object) -> List[str]:
        raise NotImplementedError

    # -- shared API --------------------------------------------------------
    def _resolve(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _state(self, labelvalues: LabelValues) -> object:
        state = self._series.get(labelvalues)
        if state is None:
            with self._lock:
                state = self._series.setdefault(labelvalues, self._new_series())
        return state

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            if not self.labelnames:
                self._series[()] = self._new_series()

    def snapshot(self) -> dict:
        with self._lock:
            series = [
                {
                    "labels": dict(zip(self.labelnames, labelvalues)),
                    **self._series_snapshot(state),
                }
                for labelvalues, state in sorted(self._series.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for labelvalues, state in sorted(self._series.items()):
                lines.extend(self._series_exposition(labelvalues, state))
        return lines


class _ScalarSeries:
    __slots__ = ("value", "lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.lock = threading.Lock()


class Counter(_Metric):
    """A monotonically increasing counter (optionally labeled)."""

    kind = "counter"

    def _new_series(self) -> _ScalarSeries:
        return _ScalarSeries()

    def labels(self, **labels: str) -> "BoundCounter":
        return BoundCounter(self, self._state(self._resolve(labels)))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value += amount

    def value(self, **labels: str) -> float:
        state = self._series.get(self._resolve(labels))
        return 0.0 if state is None else state.value

    def total(self) -> float:
        with self._lock:
            return sum(state.value for state in self._series.values())

    def _series_snapshot(self, state: _ScalarSeries) -> dict:
        return {"value": state.value}

    def _series_exposition(self, labelvalues: LabelValues, state: _ScalarSeries) -> List[str]:
        labels = _format_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_format_value(state.value)}"]


class BoundCounter:
    """A counter series with its labels pre-resolved (hot-path helper)."""

    __slots__ = ("_metric", "_state")

    def __init__(self, metric: Counter, state: _ScalarSeries) -> None:
        self._metric = metric
        self._state = state

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric._registry._enabled:
            return
        state = self._state
        with state.lock:
            state.value += amount


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, in-flight counts)."""

    kind = "gauge"

    def _new_series(self) -> _ScalarSeries:
        return _ScalarSeries()

    def set(self, value: float, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        with state.lock:
            state.value += amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        state = self._series.get(self._resolve(labels))
        return 0.0 if state is None else state.value

    def _series_snapshot(self, state: _ScalarSeries) -> dict:
        return {"value": state.value}

    def _series_exposition(self, labelvalues: LabelValues, state: _ScalarSeries) -> List[str]:
        labels = _format_labels(self.labelnames, labelvalues)
        return [f"{self.name}{labels} {_format_value(state.value)}"]


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "lock")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.lock = threading.Lock()


class Histogram(_Metric):
    """A fixed-bucket histogram of observed values (typically seconds)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        super().__init__(registry, name, help, labelnames)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.buckets))

    def labels(self, **labels: str) -> "BoundHistogram":
        return BoundHistogram(self, self._state(self._resolve(labels)))

    def observe(self, value: float, **labels: str) -> None:
        if not self._registry._enabled:
            return
        state = self._state(self._resolve(labels))
        index = bisect_left(self.buckets, value)
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1

    def _series_snapshot(self, state: _HistogramSeries) -> dict:
        cumulative = 0
        buckets = {}
        for bound, count in zip(self.buckets, state.counts):
            cumulative += count
            buckets[repr(bound)] = cumulative
        buckets["+Inf"] = state.count
        return {"count": state.count, "sum": state.sum, "buckets": buckets}

    def _series_exposition(
        self, labelvalues: LabelValues, state: _HistogramSeries
    ) -> List[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, state.counts):
            cumulative += count
            labels = _format_labels(
                self.labelnames + ("le",), labelvalues + (repr(bound),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _format_labels(self.labelnames + ("le",), labelvalues + ("+Inf",))
        lines.append(f"{self.name}_bucket{labels} {state.count}")
        plain = _format_labels(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{plain} {_format_value(state.sum)}")
        lines.append(f"{self.name}_count{plain} {state.count}")
        return lines


class BoundHistogram:
    """A histogram series with its labels pre-resolved (hot-path helper)."""

    __slots__ = ("_metric", "_state")

    def __init__(self, metric: Histogram, state: _HistogramSeries) -> None:
        self._metric = metric
        self._state = state

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._registry._enabled:
            return
        state = self._state
        index = bisect_left(metric.buckets, value)
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1


class MetricsRegistry:
    """A named collection of metric families, one per process by default.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    modules can each ask for the same family and share its series.  The
    registry can be globally disabled (``set_enabled(False)``) to measure the
    zero-telemetry baseline; disabled increments are a single attribute check.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._enabled = os.environ.get("REPRO_TELEMETRY", "1") != "0"

    # -- registration ------------------------------------------------------
    def _register(self, cls: type, name: str, **kwargs: object) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                labelnames = tuple(kwargs.get("labelnames", ()))
                if labelnames != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {labelnames}"
                    )
                return existing
            metric = cls(self, name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help=help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- enablement --------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def reset(self) -> None:
        """Zero every series (registrations survive).  Intended for tests."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """A JSON-safe dict: ``{metric_name: {type, help, labelnames, series}}``."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def snapshot_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (content type text/plain)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _, metric in metrics:
            lines.extend(metric.exposition())
        return "\n".join(lines) + "\n" if lines else ""


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
    return _REGISTRY.counter(name, help=help, labelnames=labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
    return _REGISTRY.gauge(name, help=help, labelnames=labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    return _REGISTRY.histogram(name, help=help, labelnames=labelnames, buckets=buckets)


def set_enabled(enabled: bool) -> None:
    _REGISTRY.set_enabled(enabled)


def enabled() -> bool:
    return _REGISTRY.enabled


def series_value(
    snapshot: Mapping[str, dict], name: str, **labels: str
) -> Union[float, int]:
    """Read one series value out of a :meth:`MetricsRegistry.snapshot` dict.

    Convenience for tests and CI assertions: returns 0 when the metric or
    series is absent; for histograms returns the observation count.
    """
    family = snapshot.get(name)
    if family is None:
        return 0
    for series in family.get("series", []):
        if series.get("labels", {}) == labels:
            if family.get("type") == "histogram":
                return series.get("count", 0)
            return series.get("value", 0)
    return 0
