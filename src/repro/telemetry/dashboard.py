"""Render metric snapshots as a live terminal dashboard (``repro top``).

Pure functions from :meth:`MetricsRegistry.snapshot` dicts to text — no
sockets, no timers, no terminal control — so the renderer is unit-testable
and the CLI loop (connect, snapshot, clear screen, print, sleep) stays
trivial.  Rates come from differencing two consecutive snapshots; latency
quantiles come from the cumulative histogram buckets every snapshot carries
(:func:`repro.telemetry.metrics.histogram_quantile`).

The same module renders fetched span trees for ``repro trace REQUEST_ID``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from repro.telemetry.metrics import histogram_quantile, series_value
from repro.utils.tables import TextTable

__all__ = ["render_dashboard", "render_trace"]


def _family_series(snapshot: Mapping, name: str) -> List[Mapping]:
    return list(snapshot.get(name, {}).get("series", []))


def _counter_total(snapshot: Mapping, name: str) -> float:
    return sum(series.get("value", 0.0) for series in _family_series(snapshot, name))


def _rate(now: float, before: Optional[float], interval: Optional[float]) -> str:
    if before is None or not interval or interval <= 0:
        return "-"
    return f"{max(0.0, now - before) / interval:.2f}/s"


def _quantiles(series: Mapping) -> Tuple[str, str]:
    p50 = histogram_quantile(series, 0.5)
    p95 = histogram_quantile(series, 0.95)
    fmt = lambda value: "-" if value is None else f"{value * 1000:.1f}ms"  # noqa: E731
    return fmt(p50), fmt(p95)


def _merged_histogram(snapshot: Mapping, name: str) -> Optional[Mapping]:
    """All series of one histogram family folded into a single series dict."""
    series = _family_series(snapshot, name)
    if not series:
        return None
    merged: dict = {"count": 0, "sum": 0.0, "buckets": {}}
    for entry in series:
        merged["count"] += entry.get("count", 0)
        merged["sum"] += entry.get("sum", 0.0)
        for bound, cumulative in entry.get("buckets", {}).items():
            merged["buckets"][bound] = merged["buckets"].get(bound, 0) + cumulative
    return merged if merged["count"] else None


def render_dashboard(
    snapshot: Mapping,
    previous: Optional[Mapping] = None,
    *,
    interval: Optional[float] = None,
    source: str = "local",
) -> str:
    """One frame of ``repro top``: requests, cache, latency, workers."""
    sections: List[str] = [f"repro top — {source}"]

    # -- requests ---------------------------------------------------------
    ops = _family_series(snapshot, "server_requests_total")
    if ops:
        table = TextTable(["op", "total", "rate", "p50", "p95"])
        for entry in sorted(ops, key=lambda e: -e.get("value", 0.0)):
            op = entry.get("labels", {}).get("op", "?")
            total = entry.get("value", 0.0)
            before = (
                series_value(previous, "server_requests_total", op=op)
                if previous is not None
                else None
            )
            latency = next(
                (
                    s
                    for s in _family_series(snapshot, "server_op_seconds")
                    if s.get("labels", {}).get("op") == op
                ),
                None,
            )
            p50, p95 = _quantiles(latency) if latency else ("-", "-")
            table.add_row([op, int(total), _rate(total, before, interval), p50, p95])
        sections.append("requests\n" + table.render())

    # -- cache ------------------------------------------------------------
    lookups = _family_series(snapshot, "cache_lookups_total")
    if lookups:
        by_result = {
            entry.get("labels", {}).get("result", "?"): entry.get("value", 0.0)
            for entry in lookups
        }
        served = by_result.get("hit", 0.0) + by_result.get("monotone", 0.0)
        total = served + by_result.get("miss", 0.0)
        ratio = f"{served / total:.1%}" if total else "-"
        table = TextTable(["lookups", "hit", "monotone", "miss", "hit ratio"])
        table.add_row(
            [
                int(total),
                int(by_result.get("hit", 0.0)),
                int(by_result.get("monotone", 0.0)),
                int(by_result.get("miss", 0.0)),
                ratio,
            ]
        )
        sections.append("cache\n" + table.render())

    # -- certification latency -------------------------------------------
    certify = _merged_histogram(snapshot, "certify_seconds")
    learner = _counter_total(snapshot, "learner_invocations_total")
    if certify or learner:
        table = TextTable(["learner runs", "rate", "p50", "p95"])
        before = (
            _counter_total(previous, "learner_invocations_total")
            if previous is not None
            else None
        )
        p50, p95 = _quantiles(certify) if certify else ("-", "-")
        table.add_row([int(learner), _rate(learner, before, interval), p50, p95])
        sections.append("certification\n" + table.render())

    # -- workers ----------------------------------------------------------
    workers = _family_series(snapshot, "worker_task_seconds")
    if workers:
        utilization = {
            entry.get("labels", {}).get("worker", "?"): entry.get("value", 0.0)
            for entry in _family_series(snapshot, "worker_utilization")
        }
        table = TextTable(["worker", "tasks", "busy", "p50", "p95"])
        for entry in sorted(workers, key=lambda e: e.get("labels", {}).get("worker", "")):
            worker = entry.get("labels", {}).get("worker", "?")
            p50, p95 = _quantiles(entry)
            busy = utilization.get(worker)
            table.add_row(
                [
                    worker,
                    entry.get("count", 0),
                    "-" if busy is None else f"{busy:.0%}",
                    p50,
                    p95,
                ]
            )
        dispatch = _merged_histogram(snapshot, "dispatch_overhead_seconds")
        lines = "workers\n" + table.render()
        if dispatch:
            p50, p95 = _quantiles(dispatch)
            lines += f"\ndispatch overhead: p50 {p50}, p95 {p95}"
        sections.append(lines)

    if len(sections) == 1:
        sections.append("(no activity recorded yet)")
    return "\n\n".join(sections)


def render_trace(tree: Mapping, indent: int = 0) -> str:
    """A fetched span tree (``trace`` op payload) as an indented text tree."""
    line = (
        f"{'  ' * indent}{tree.get('name', '?'):<40s} "
        f"{tree.get('duration_seconds', 0.0) * 1000.0:10.3f} ms"
    )
    lines = [line]
    for child in tree.get("children", ()):
        lines.append(render_trace(child, indent + 1))
    return "\n".join(lines)
