"""Project-invariant static analysis for the repro codebase.

``repro.analysis`` turns the invariants this project keeps re-auditing by
hand — lock discipline on shared runtimes, the abstract/concrete soundness
boundary, telemetry cardinality, wire/cache schema agreement, and the closed
error taxonomy — into mechanical AST checks with file:line findings, inline
``# repro: ignore[rule]`` suppressions, and a committed baseline for
grandfathered findings.

Entry points:

- :func:`repro.analysis.core.run_analysis` — programmatic runner.
- ``repro analyze`` — the CLI front end (see :mod:`repro.cli`).
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Project,
    SourceModule,
    all_rules,
    load_baseline,
    register,
    rule_names,
    run_analysis,
    write_baseline,
)

# Importing the rules package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Project",
    "SourceModule",
    "all_rules",
    "load_baseline",
    "register",
    "rule_names",
    "run_analysis",
    "write_baseline",
]
