"""metric-hygiene: bounded-cardinality, greppable telemetry series.

Two checks:

1. **Definition sites.**  Calls that create series — ``counter(...)``,
   ``gauge(...)``, ``histogram(...)`` (module-level API or on a registry
   object) — must pass a *literal* snake_case name and, when present, a
   *literal* tuple/list of snake_case label keys.  A computed name or key
   set cannot be grepped, documented, or aggregated across processes.

2. **Call sites.**  Label *values* passed to ``.inc()/.dec()/.set()/
   .observe()`` on a metric handle must not be f-strings, string
   concatenations, or call expressions: each is a one-way ticket to
   unbounded series cardinality (request ids, paths, timestamps...).
   Plain variables are allowed — boundedness of a variable is not
   syntactically decidable.

``telemetry/metrics.py`` itself is exempt: ``merge_snapshot`` re-creates
series from wire names by design.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence, Tuple

from repro.analysis.core import Finding, Project, SourceModule, register

RULE_NAME = "metric-hygiene"

SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

FACTORY_NAMES = frozenset({"counter", "gauge", "histogram"})
RECORD_METHODS = frozenset({"inc", "dec", "set", "observe"})
# Kwargs on record calls that are values, not labels.
NON_LABEL_KWARGS = frozenset({"amount", "value"})
# Receivers whose names mark them as registries.
_REGISTRY_HINT = re.compile(r"(registry|metrics)", re.IGNORECASE)
# Metric handles are module-level UPPER_CASE constants in this codebase.
_HANDLE_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

DEFAULT_EXEMPT: Tuple[str, ...] = ("repro/telemetry/metrics.py",)

_DYNAMIC_VALUE_TYPES = (ast.JoinedStr, ast.BinOp, ast.Call)


def _imports_factories(module: SourceModule) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if "telemetry" in node.module and any(
                alias.name in FACTORY_NAMES for alias in node.names
            ):
                return True
    return False


def _is_factory_call(node: ast.Call, bare_names_active: bool) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return bare_names_active and func.id in FACTORY_NAMES
    if isinstance(func, ast.Attribute) and func.attr in FACTORY_NAMES:
        receiver = func.value
        terminal = None
        if isinstance(receiver, ast.Name):
            terminal = receiver.id
        elif isinstance(receiver, ast.Attribute):
            terminal = receiver.attr
        elif isinstance(receiver, ast.Call):
            # e.g. get_registry().counter(...)
            inner = receiver.func
            terminal = inner.attr if isinstance(inner, ast.Attribute) else (
                inner.id if isinstance(inner, ast.Name) else None
            )
        return terminal is not None and bool(_REGISTRY_HINT.search(terminal))
    return False


@register
class MetricHygieneRule:
    name = RULE_NAME
    description = (
        "series created with literal snake_case names and label keys; no "
        "dynamic label values at record sites"
    )

    def __init__(self, exempt: Sequence[str] = DEFAULT_EXEMPT) -> None:
        self.exempt = tuple(exempt)

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            if any(suffix in module.path for suffix in self.exempt):
                continue
            bare_names_active = _imports_factories(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _is_factory_call(node, bare_names_active):
                    yield from self._check_definition(module, node)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in RECORD_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and _HANDLE_NAME.match(node.func.value.id)
                ):
                    yield from self._check_record_site(module, node)

    # -- definition sites ------------------------------------------------
    def _check_definition(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        name_arg: ast.AST | None = None
        if node.args:
            name_arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_arg = kw.value
        if name_arg is None:
            return
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            yield Finding(
                rule=self.name,
                path=module.path,
                line=node.lineno,
                message="metric created with a non-literal name",
                hint="pass a literal snake_case string so series are greppable",
            )
        elif not SNAKE_CASE.match(name_arg.value):
            yield Finding(
                rule=self.name,
                path=module.path,
                line=node.lineno,
                message=f"metric name {name_arg.value!r} is not snake_case",
                hint="rename to ^[a-z][a-z0-9_]*$",
            )
        for kw in node.keywords:
            if kw.arg != "labelnames":
                continue
            yield from self._check_labelnames(module, kw.value)

    def _check_labelnames(self, module: SourceModule, value: ast.AST) -> Iterator[Finding]:
        if not isinstance(value, (ast.Tuple, ast.List)):
            yield Finding(
                rule=self.name,
                path=module.path,
                line=value.lineno,
                message="labelnames is not a literal tuple/list",
                hint="declare the fixed label keys inline at the definition site",
            )
            return
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=element.lineno,
                    message="label key is not a string literal",
                    hint="label keys are part of the schema; spell them out",
                )
            elif not SNAKE_CASE.match(element.value):
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=element.lineno,
                    message=f"label key {element.value!r} is not snake_case",
                    hint="rename to ^[a-z][a-z0-9_]*$",
                )

    # -- record sites ----------------------------------------------------
    def _check_record_site(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg is None or kw.arg in NON_LABEL_KWARGS:
                continue
            if isinstance(kw.value, _DYNAMIC_VALUE_TYPES):
                kind = {
                    ast.JoinedStr: "an f-string",
                    ast.BinOp: "a computed expression",
                    ast.Call: "a call expression",
                }[type(kw.value)]
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"label value for `{kw.arg}` is {kind} — unbounded "
                        "series cardinality"
                    ),
                    hint=(
                        "bind the value to a variable drawn from a closed "
                        "vocabulary, or drop the label"
                    ),
                )
