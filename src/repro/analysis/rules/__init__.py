"""Built-in analysis rules; importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401  (imports register the rules)
    exception_taxonomy,
    lock_discipline,
    metric_hygiene,
    schema_drift,
    soundness,
)

__all__ = [
    "exception_taxonomy",
    "lock_discipline",
    "metric_hygiene",
    "schema_drift",
    "soundness",
]
