"""soundness-boundary: keep the abstract side abstract, and oracle-backed.

Three checks, all rooted in the paper's core obligation (the abstract
learner must over-approximate every concrete poisoned run):

1. **No concrete-learner imports in abstract code.**  Modules under
   ``verify/`` and ``domains/`` that implement abstract transformers must
   not import or reference the concrete learner
   (``DecisionTreeLearner``/``TraceLearner``/``learn_trace``/
   ``evaluate_accuracy``) — concrete results leaking into a transformer
   silently breaks over-approximation.  Driver modules that *intentionally*
   bridge the two worlds (robustness drivers, enumeration oracles) are
   exempt.

2. **No raw float comparisons on Interval bounds.**  ``iv.hi <= x`` in a
   transformer hand-rolls domain logic the ``Interval`` type owns; bound
   ordering decisions must go through named helpers (``upper_at_most``,
   ``dominates``, ``is_subset_of``, ...) so the soundness argument lives in
   one audited place.  ``domains/interval.py`` itself is exempt — it *is*
   the audited place.

3. **Every vectorized kernel has a registered scalar oracle.**  Each entry
   in the kernel registry names a numpy kernel, its scalar reference
   implementation, and the property-test module that must exercise both.
   A kernel whose oracle or test disappears (or a new kernel added without
   registering one) is a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.analysis.core import Finding, Project, SourceModule, register

RULE_NAME = "soundness-boundary"

# Abstract-side scopes (path prefixes, repo-relative under the scan roots).
DEFAULT_SCOPES: Tuple[str, ...] = (
    "repro/verify/",
    "repro/domains/",
    "repro/poisoning/label_flip.py",
)

# Drivers and oracles that intentionally touch the concrete learner.
# label_flip.py hosts the flip family's *driver* (predicted-class computation
# runs the concrete TraceLearner) alongside its transformers; its kernels are
# still covered by the bound-comparison and oracle-registry checks below.
DEFAULT_IMPORT_EXEMPT: Tuple[str, ...] = (
    "repro/verify/robustness.py",
    "repro/verify/search.py",
    "repro/verify/enumeration.py",
    "repro/verify/result.py",
    "repro/poisoning/label_flip.py",
)

# The Interval implementation itself compares raw bounds by definition.
DEFAULT_COMPARE_EXEMPT: Tuple[str, ...] = ("repro/domains/interval.py",)

BANNED_MODULES: Tuple[str, ...] = ("repro.core.learner", "repro.core.trace_learner")
BANNED_NAMES: Tuple[str, ...] = (
    "DecisionTreeLearner",
    "TraceLearner",
    "learn_trace",
    "evaluate_accuracy",
)

BOUND_ATTRS = frozenset({"lo", "hi"})
_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@dataclass(frozen=True)
class KernelSpec:
    """A vectorized kernel, its scalar oracle, and the test proving parity."""

    module: str  # path suffix of the defining module
    kernel: str
    oracle: str
    test: str  # repo-relative path of the property-test module


DEFAULT_KERNELS: Tuple[KernelSpec, ...] = (
    KernelSpec(
        "repro/verify/transformers.py",
        "_side_score_bounds",
        "_side_score_bounds_reference",
        "tests/verify/test_vectorized_kernels.py",
    ),
    KernelSpec(
        "repro/poisoning/label_flip.py",
        "_flip_split_score_bounds",
        "_flip_split_score_bounds_reference",
        "tests/verify/test_vectorized_kernels.py",
    ),
    KernelSpec(
        "repro/core/splitter.py",
        "_score_table",
        "_score_table_reference",
        "tests/core/test_splitter_oracle.py",
    ),
)


def _in_scope(path: str, scopes: Sequence[str]) -> bool:
    return any(scope in path for scope in scopes)


def _defined_functions(module: SourceModule) -> set:
    return {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _referenced_names(module: SourceModule) -> set:
    names = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
    return names


@register
class SoundnessBoundaryRule:
    name = RULE_NAME
    description = (
        "abstract transformers stay concrete-free, bound comparisons go through "
        "Interval helpers, vectorized kernels keep scalar oracles under test"
    )

    def __init__(
        self,
        scopes: Sequence[str] = DEFAULT_SCOPES,
        import_exempt: Sequence[str] = DEFAULT_IMPORT_EXEMPT,
        compare_exempt: Sequence[str] = DEFAULT_COMPARE_EXEMPT,
        kernels: Sequence[KernelSpec] = DEFAULT_KERNELS,
    ) -> None:
        self.scopes = tuple(scopes)
        self.import_exempt = tuple(import_exempt)
        self.compare_exempt = tuple(compare_exempt)
        self.kernels = tuple(kernels)

    # ------------------------------------------------------------------ check
    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            if not _in_scope(module.path, self.scopes):
                continue
            if not _in_scope(module.path, self.import_exempt):
                yield from self._check_concrete_imports(module)
            if not _in_scope(module.path, self.compare_exempt):
                yield from self._check_bound_comparisons(module)
        yield from self._check_kernel_registry(project)

    # -- 1. concrete-learner leakage ------------------------------------
    def _check_concrete_imports(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if any(node.module.startswith(banned) for banned in BANNED_MODULES):
                    yield self._import_finding(module, node.lineno, node.module)
                else:
                    for alias in node.names:
                        if alias.name in BANNED_NAMES:
                            yield self._import_finding(module, node.lineno, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if any(alias.name.startswith(banned) for banned in BANNED_MODULES):
                        yield self._import_finding(module, node.lineno, alias.name)

    def _import_finding(self, module: SourceModule, line: int, what: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=line,
            message=f"abstract-side module imports concrete learner `{what}`",
            hint=(
                "abstract transformers must not call the concrete learner; move "
                "the bridge into verify/robustness.py or verify/enumeration.py"
            ),
        )

    # -- 2. raw bound comparisons ---------------------------------------
    def _check_bound_comparisons(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, _ORDER_OPS) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                if isinstance(operand, ast.Attribute) and operand.attr in BOUND_ATTRS:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"raw float comparison on Interval bound `.{operand.attr}`"
                        ),
                        hint=(
                            "use an Interval helper (upper_at_most/lower_at_least/"
                            "dominates/is_subset_of) so bound logic stays in the "
                            "audited domain type"
                        ),
                    )
                    break  # one finding per comparison

    # -- 3. kernel/oracle registry --------------------------------------
    def _check_kernel_registry(self, project: Project) -> Iterator[Finding]:
        for spec in self.kernels:
            module = project.find_module(spec.module)
            if module is None:
                yield Finding(
                    rule=self.name,
                    path=spec.module,
                    line=1,
                    message=f"kernel registry names missing module {spec.module}",
                    hint="update DEFAULT_KERNELS in repro/analysis/rules/soundness.py",
                )
                continue
            defined = _defined_functions(module)
            for role, func in (("kernel", spec.kernel), ("scalar oracle", spec.oracle)):
                if func not in defined:
                    yield Finding(
                        rule=self.name,
                        path=module.path,
                        line=1,
                        message=f"registered {role} `{func}` not defined in module",
                        hint="re-add the function or update the kernel registry",
                    )
            test_module = project.load(spec.test)
            if test_module is None:
                yield Finding(
                    rule=self.name,
                    path=spec.test,
                    line=1,
                    message=f"kernel parity test module {spec.test} is missing",
                    hint=f"add a property test comparing {spec.kernel} to {spec.oracle}",
                )
                continue
            referenced = _referenced_names(test_module)
            for func in (spec.kernel, spec.oracle):
                if func not in referenced:
                    yield Finding(
                        rule=self.name,
                        path=test_module.path,
                        line=1,
                        message=(
                            f"parity test never references `{func}` "
                            f"(registered for {spec.module})"
                        ),
                        hint="exercise both the kernel and its scalar oracle in the test",
                    )
