"""lock-discipline: guarded state must be touched under its lock.

The project's shared planes — engine plan cache, scheduler lease table,
runtime lifetime stats, sqlite-cache LRU touches, metrics registry, the
server's engine/dataset maps, and module-level telemetry sinks — each
declare a guard lock.  This rule flags any read or write of a registered
attribute (``self.<attr>`` inside the owning class, or a module global)
that is not lexically inside a ``with <lock>:`` block.

It is a *lexical* race lint, not a model checker: constructor/pickle
plumbing is exempt, and deliberate unlocked fast paths (double-checked
initialisation, snapshot reads of atomic references) carry an inline
``# repro: ignore[lock-discipline]`` with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.analysis.core import Finding, Project, SourceModule, register

RULE_NAME = "lock-discipline"

# Methods where unguarded access is fine: the object is not yet shared
# (construction) or is being rebuilt on one thread (unpickling, teardown).
EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__getstate__", "__setstate__", "__del__"}
)

# Naming convention: a method whose name ends in ``_locked`` declares that
# its caller must already hold the guard — the suffix is the contract, so
# the body is exempt from the lexical check.
LOCKED_SUFFIX = "_locked"


@dataclass(frozen=True)
class AttrGuard:
    """``self.<attr>`` on the named classes must be used under ``self.<lock>``."""

    path: str  # module path suffix, e.g. "api/engine.py"
    classes: Tuple[str, ...]
    attrs: Tuple[str, ...]
    lock: str


@dataclass(frozen=True)
class GlobalGuard:
    """Module-global names guarded by a module-level lock."""

    path: str
    names: Tuple[str, ...]
    lock: str


DEFAULT_ATTR_GUARDS: Tuple[AttrGuard, ...] = (
    AttrGuard(
        "api/engine.py", ("CertificationEngine",), ("_plan_cache", "_scheduler"), "_plan_lock"
    ),
    AttrGuard(
        "api/scheduler.py",
        ("CertificationScheduler",),
        ("_inflight", "_executor", "stats"),
        "_lock",
    ),
    AttrGuard("runtime/runtime.py", ("CertificationRuntime",), ("stats",), "_stats_lock"),
    AttrGuard("runtime/cache.py", ("CertificationCache",), ("_touches",), "_lock"),
    AttrGuard("telemetry/metrics.py", ("MetricsRegistry",), ("_metrics", "_merged_tasks"), "_lock"),
    AttrGuard(
        "telemetry/metrics.py",
        ("_Metric", "Counter", "Gauge", "Histogram"),
        ("_series",),
        "_lock",
    ),
    AttrGuard(
        "service/server.py",
        ("CertificationServer",),
        ("_engines", "_datasets", "_active_ops", "requests_served"),
        "_lock",
    ),
    AttrGuard("fleet/link.py", ("BackendPool",), ("_idle", "_closed"), "_lock"),
    AttrGuard("fleet/health.py", ("HealthMonitor",), ("_alive",), "_lock"),
    AttrGuard("fleet/batching.py", ("MicroBatcher",), ("_windows",), "_lock"),
)

DEFAULT_GLOBAL_GUARDS: Tuple[GlobalGuard, ...] = (
    GlobalGuard("telemetry/events.py", ("_sink", "_sink_path", "_env_checked"), "_lock"),
    GlobalGuard("telemetry/tracing.py", ("_completed",), "_completed_lock"),
)


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _with_holds(item_expr: ast.AST, lock: str, *, on_self: bool) -> bool:
    if on_self:
        return _is_self_attr(item_expr, lock)
    return isinstance(item_expr, ast.Name) and item_expr.id == lock


def _under_lock(module: SourceModule, node: ast.AST, lock: str, *, on_self: bool) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _with_holds(item.context_expr, lock, on_self=on_self):
                    return True
    return False


@register
class LockDisciplineRule:
    name = RULE_NAME
    description = "registered shared state must be accessed under its guard lock"

    def __init__(
        self,
        attr_guards: Sequence[AttrGuard] = DEFAULT_ATTR_GUARDS,
        global_guards: Sequence[GlobalGuard] = DEFAULT_GLOBAL_GUARDS,
    ) -> None:
        self.attr_guards = tuple(attr_guards)
        self.global_guards = tuple(global_guards)

    # ------------------------------------------------------------------ check
    def check(self, project: Project) -> Iterator[Finding]:
        for guard in self.attr_guards:
            module = project.find_module(guard.path)
            if module is None:
                continue
            yield from self._check_attr_guard(module, guard)
        for guard in self.global_guards:
            module = project.find_module(guard.path)
            if module is None:
                continue
            yield from self._check_global_guard(module, guard)

    def _check_attr_guard(self, module: SourceModule, guard: AttrGuard) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in guard.classes:
                continue
            for attr_node in ast.walk(node):
                if not isinstance(attr_node, ast.Attribute):
                    continue
                if attr_node.attr not in guard.attrs:
                    continue
                if not (
                    isinstance(attr_node.value, ast.Name) and attr_node.value.id == "self"
                ):
                    continue
                function = module.enclosing_function(attr_node)
                if function is None or function.name in EXEMPT_METHODS:
                    continue
                if function.name.endswith(LOCKED_SUFFIX):
                    continue
                if module.enclosing_class(attr_node) is not node:
                    continue  # nested class: not this guard's scope
                if _under_lock(module, attr_node, guard.lock, on_self=True):
                    continue
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=attr_node.lineno,
                    message=(
                        f"{node.name}.{attr_node.attr} accessed in "
                        f"{function.name}() outside `with self.{guard.lock}:`"
                    ),
                    hint=(
                        f"wrap the access in `with self.{guard.lock}:`, or mark a "
                        "deliberate fast path with `# repro: ignore[lock-discipline]` "
                        "plus a justification"
                    ),
                )

    def _check_global_guard(self, module: SourceModule, guard: GlobalGuard) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Name) or node.id not in guard.names:
                continue
            function = module.enclosing_function(node)
            if function is None:
                continue  # import-time initialisation is single-threaded
            if function.name.endswith(LOCKED_SUFFIX):
                continue
            if _under_lock(module, node, guard.lock, on_self=False):
                continue
            yield Finding(
                rule=self.name,
                path=module.path,
                line=node.lineno,
                message=(
                    f"module global {node.id} accessed in {function.name}() "
                    f"outside `with {guard.lock}:`"
                ),
                hint=(
                    f"wrap the access in `with {guard.lock}:`, or mark a deliberate "
                    "fast path with `# repro: ignore[lock-discipline]`"
                ),
            )
