"""exception-taxonomy: broad catches must classify, propagate, or be boundaries.

``except Exception`` (or broader) anywhere except a declared protocol
boundary must do one of:

- **re-raise** (``raise`` somewhere in the handler body),
- **propagate to a waiter** (``<future>.set_exception(...)``), or
- **map into the closed error taxonomy** — call
  :func:`repro.telemetry.events.classify_error` (directly or via an
  ``events.emit(..., error_kind=classify_error(e))`` site).

Anything else is a silent swallow: the failure disappears from telemetry,
dashboards, and the event log.  Declared boundaries (the server's
per-connection ``handle`` loop, the scheduler's lease-fallback arm) absorb
*foreign* failures by design and are whitelisted here with the reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Project, SourceModule, register

RULE_NAME = "exception-taxonomy"

BROAD_NAMES = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class Boundary:
    """A (module suffix, function name) pair allowed to absorb broad failures."""

    path: str
    function: str
    reason: str


DEFAULT_BOUNDARIES: Tuple[Boundary, ...] = (
    Boundary(
        "service/server.py",
        "handle",
        "per-connection protocol boundary: converts any failure into an "
        "error frame for the client",
    ),
    Boundary(
        "api/scheduler.py",
        "stream_rows",
        "lease fallback: a stranger's failed batch must not fail this one; "
        "the point is recomputed locally and counted in lease_fallbacks",
    ),
    Boundary(
        "fleet/router.py",
        "handle",
        "per-connection protocol boundary: converts any failure into an "
        "error frame for the client",
    ),
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare except:
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in BROAD_NAMES for e in node.elts)
    return False


def _handler_disposition(handler: ast.ExceptHandler) -> Optional[str]:
    """How the handler deals with the failure, or None if it swallows it."""

    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return "re-raises"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "classify_error":
                    return "classifies"
                if func.attr == "set_exception":
                    return "propagates to waiters"
            elif isinstance(func, ast.Name) and func.id == "classify_error":
                return "classifies"
    return None


@register
class ExceptionTaxonomyRule:
    name = RULE_NAME
    description = (
        "broad except handlers re-raise, propagate, or classify into the "
        "telemetry.events error taxonomy"
    )

    def __init__(self, boundaries: Sequence[Boundary] = DEFAULT_BOUNDARIES) -> None:
        self.boundaries = tuple(boundaries)

    def _is_boundary(self, module: SourceModule, handler: ast.ExceptHandler) -> bool:
        function = module.enclosing_function(handler)
        if function is None:
            return False
        for boundary in self.boundaries:
            if boundary.function == function.name and module.path.endswith(boundary.path):
                return True
        return False

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad(node):
                    continue
                if _handler_disposition(node) is not None:
                    continue
                if self._is_boundary(module, node):
                    continue
                caught = "bare except" if node.type is None else "broad except"
                yield Finding(
                    rule=self.name,
                    path=module.path,
                    line=node.lineno,
                    message=f"{caught} handler swallows the failure silently",
                    hint=(
                        "narrow the exception types, re-raise, or emit an event "
                        "with error_kind=events.classify_error(exc); declared "
                        "protocol boundaries belong in DEFAULT_BOUNDARIES"
                    ),
                )
