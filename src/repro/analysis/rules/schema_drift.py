"""schema-drift: serialized schemas must agree across module boundaries.

Four cross-file invariants, each checked by extracting literals from both
sides and diffing:

1. ``CSV_FIELDS`` (api/report.py) ⊇ ``VerificationResult.to_dict()`` keys
   (verify/result.py): a result field missing from the CSV column order is
   silently dropped from every export.
2. ``VerificationResult.from_dict()`` must read every key ``to_dict()``
   writes — a write-only field vanishes on the first cache or socket
   round-trip.
3. ``ENGINE_CONFIG_FIELDS`` (service/protocol.py) minus the declared
   non-cached fields must all be read by ``engine_cache_key``
   (runtime/fingerprint.py), and vice versa: a verdict-affecting engine
   knob missing from the cache key is a cache-poisoning bug (two configs
   sharing one verdict), while a key component that is not a wire field
   fragments the cache for no reason.
4. The threat-model families ``model_to_wire`` emits must equal the
   families ``model_from_wire`` decodes — an asymmetric family is a
   one-way trip over the socket.

If any anchor (function, tuple literal) cannot be located, that is itself
a finding: the invariant silently going unchecked is the failure mode this
rule exists to prevent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.core import Finding, Project, SourceModule, register

RULE_NAME = "schema-drift"


@dataclass(frozen=True)
class SchemaSpec:
    """Paths + declared exceptions for the four schema checks."""

    result_module: str = "repro/verify/result.py"
    report_module: str = "repro/api/report.py"
    protocol_module: str = "repro/service/protocol.py"
    fingerprint_module: str = "repro/runtime/fingerprint.py"
    csv_fields_name: str = "CSV_FIELDS"
    engine_fields_name: str = "ENGINE_CONFIG_FIELDS"
    # Wire fields deliberately absent from the cache key (timeout outcomes
    # are never cached) and key components deliberately absent from the wire
    # (predicate pools are not representable over the socket).
    non_cached_fields: Tuple[str, ...] = ("timeout_seconds",)
    extra_key_fields: Tuple[str, ...] = ("predicate_pool",)


# ------------------------------------------------------------- AST extractors
def _find_function(module: SourceModule, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _find_tuple_literal(module: SourceModule, name: str) -> Optional[Tuple[int, Set[str]]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            values = {
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
            return node.lineno, values
    return None


def _dict_return_keys(func: ast.FunctionDef) -> Optional[Set[str]]:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            return {
                k.value
                for k in node.value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
    return None


def _mapping_reads(func: ast.FunctionDef, param: str) -> Set[str]:
    reads: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.add(node.args[0].value)
    return reads


def _param_attr_reads(func: ast.FunctionDef) -> Set[str]:
    """Attributes read off the function's first parameter (incl. getattr)."""

    if not func.args.args:
        return set()
    param = func.args.args[0].arg
    attrs: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            attrs.add(node.attr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == param
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            attrs.add(node.args[1].value)
    return attrs


def _emitted_families(func: ast.FunctionDef) -> Set[str]:
    families: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "family"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                families.add(value.value)
    return families


def _decoded_families(func: ast.FunctionDef) -> Set[str]:
    families: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if not any(
            isinstance(o, ast.Name) and o.id == "family" for o in operands
        ):
            continue
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(operand.value, str):
                families.add(operand.value)
    return families


@register
class SchemaDriftRule:
    name = RULE_NAME
    description = (
        "CSV columns, wire round-trips, cache keys, and threat-model families "
        "stay in sync across modules"
    )

    def __init__(self, spec: SchemaSpec = SchemaSpec()) -> None:
        self.spec = spec

    # ------------------------------------------------------------------ check
    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_csv_and_roundtrip(project)
        yield from self._check_cache_key(project)
        yield from self._check_model_families(project)

    def _anchor_missing(self, path: str, what: str) -> Finding:
        return Finding(
            rule=self.name,
            path=path,
            line=1,
            message=f"schema-drift anchor not found: {what}",
            hint=(
                "the checked definition moved or was renamed; update SchemaSpec "
                "in repro/analysis/rules/schema_drift.py so the invariant stays "
                "checked"
            ),
        )

    # -- checks 1 + 2 -----------------------------------------------------
    def _check_csv_and_roundtrip(self, project: Project) -> Iterator[Finding]:
        spec = self.spec
        result_mod = project.find_module(spec.result_module)
        report_mod = project.find_module(spec.report_module)
        if result_mod is None:
            yield self._anchor_missing(spec.result_module, "VerificationResult module")
            return
        to_dict = _find_function(result_mod, "to_dict")
        to_dict_keys = _dict_return_keys(to_dict) if to_dict else None
        if not to_dict_keys:
            yield self._anchor_missing(
                result_mod.path, "VerificationResult.to_dict dict-literal return"
            )
            return

        if report_mod is None:
            yield self._anchor_missing(spec.report_module, "report module")
        else:
            csv_fields = _find_tuple_literal(report_mod, spec.csv_fields_name)
            if csv_fields is None:
                yield self._anchor_missing(
                    report_mod.path, f"{spec.csv_fields_name} tuple literal"
                )
            else:
                line, fields = csv_fields
                for missing in sorted(to_dict_keys - fields):
                    yield Finding(
                        rule=self.name,
                        path=report_mod.path,
                        line=line,
                        message=(
                            f"result field {missing!r} is missing from "
                            f"{spec.csv_fields_name} — dropped from every CSV export"
                        ),
                        hint=f"add {missing!r} to {spec.csv_fields_name} and bump SCHEMA_VERSION",
                    )

        from_dict = _find_function(result_mod, "from_dict")
        if from_dict is None or len(from_dict.args.args) < 2:
            yield self._anchor_missing(result_mod.path, "VerificationResult.from_dict")
            return
        payload_param = from_dict.args.args[1].arg  # (cls, payload)
        reads = _mapping_reads(from_dict, payload_param)
        for missing in sorted(to_dict_keys - reads):
            yield Finding(
                rule=self.name,
                path=result_mod.path,
                line=from_dict.lineno,
                message=(
                    f"from_dict never reads {missing!r} written by to_dict — "
                    "the field vanishes on the first round-trip"
                ),
                hint=f"decode {missing!r} in from_dict (with a default for old payloads)",
            )

    # -- check 3 ----------------------------------------------------------
    def _check_cache_key(self, project: Project) -> Iterator[Finding]:
        spec = self.spec
        protocol_mod = project.find_module(spec.protocol_module)
        fingerprint_mod = project.find_module(spec.fingerprint_module)
        if protocol_mod is None:
            yield self._anchor_missing(spec.protocol_module, "protocol module")
            return
        if fingerprint_mod is None:
            yield self._anchor_missing(spec.fingerprint_module, "fingerprint module")
            return
        fields_lit = _find_tuple_literal(protocol_mod, spec.engine_fields_name)
        if fields_lit is None:
            yield self._anchor_missing(
                protocol_mod.path, f"{spec.engine_fields_name} tuple literal"
            )
            return
        key_func = _find_function(fingerprint_mod, "engine_cache_key")
        if key_func is None:
            yield self._anchor_missing(fingerprint_mod.path, "engine_cache_key()")
            return
        _, fields = fields_lit
        accessed = _param_attr_reads(key_func)
        for missing in sorted(fields - set(spec.non_cached_fields) - accessed):
            yield Finding(
                rule=self.name,
                path=fingerprint_mod.path,
                line=key_func.lineno,
                message=(
                    f"engine config field {missing!r} is not part of "
                    "engine_cache_key — two engines differing only in it share "
                    "cached verdicts (cache poisoning)"
                ),
                hint=(
                    f"fold {missing!r} into engine_cache_key, or declare it in "
                    "SchemaSpec.non_cached_fields with a soundness argument"
                ),
            )
        for extra in sorted(accessed - fields - set(spec.extra_key_fields)):
            yield Finding(
                rule=self.name,
                path=fingerprint_mod.path,
                line=key_func.lineno,
                message=(
                    f"engine_cache_key reads {extra!r} which is not an "
                    f"{spec.engine_fields_name} wire field"
                ),
                hint=(
                    f"add {extra!r} to {spec.engine_fields_name} or to "
                    "SchemaSpec.extra_key_fields if it is deliberately unwireable"
                ),
            )

    # -- check 4 ----------------------------------------------------------
    def _check_model_families(self, project: Project) -> Iterator[Finding]:
        spec = self.spec
        protocol_mod = project.find_module(spec.protocol_module)
        if protocol_mod is None:
            return  # already reported by _check_cache_key
        to_wire = _find_function(protocol_mod, "model_to_wire")
        from_wire = _find_function(protocol_mod, "model_from_wire")
        if to_wire is None or from_wire is None:
            yield self._anchor_missing(
                protocol_mod.path, "model_to_wire/model_from_wire pair"
            )
            return
        emitted = _emitted_families(to_wire)
        decoded = _decoded_families(from_wire)
        if not emitted or not decoded:
            yield self._anchor_missing(
                protocol_mod.path, "threat-model family literals"
            )
            return
        for family in sorted(emitted - decoded):
            yield Finding(
                rule=self.name,
                path=protocol_mod.path,
                line=from_wire.lineno,
                message=(
                    f"family {family!r} is encoded by model_to_wire but never "
                    "decoded by model_from_wire"
                ),
                hint="add the decode branch (or retire the encoder)",
            )
        for family in sorted(decoded - emitted):
            yield Finding(
                rule=self.name,
                path=protocol_mod.path,
                line=to_wire.lineno,
                message=(
                    f"family {family!r} is decoded by model_from_wire but never "
                    "produced by model_to_wire"
                ),
                hint="add the encode branch (or retire the decoder)",
            )
