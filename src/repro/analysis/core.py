"""Framework for project-invariant static analysis.

The pieces, from the bottom up:

- :class:`SourceModule` — one parsed file: source text, AST, a parent map
  (``ast`` has no parent pointers), and the set of suppressed lines.
- :class:`Project` — a lazily-loaded view of the repository; rules ask it
  for modules by repo-relative path or iterate everything under the
  scanned roots.
- :class:`Finding` — one diagnostic with a stable fingerprint so baselines
  survive unrelated line drift.
- the rule registry (:func:`register` / :func:`all_rules`) — rules are
  plain classes with ``name``, ``description`` and ``check(project)``.
- baselines (:func:`load_baseline` / :func:`write_baseline`) — committed
  JSON grandfathering known findings; anything not baselined fails CI.
- :func:`run_analysis` — ties it together and returns an
  :class:`AnalysisReport`.

Suppressions: a finding is silenced when its line — or an immediately
preceding comment-only line — carries ``# repro: ignore`` (every rule) or
``# repro: ignore[rule-a, rule-b]`` (listed rules only).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "AnalysisReport",
    "Finding",
    "Project",
    "SourceModule",
    "all_rules",
    "load_baseline",
    "register",
    "rule_names",
    "run_analysis",
    "write_baseline",
]

BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


# --------------------------------------------------------------------- findings
@dataclass(frozen=True)
class Finding:
    """One diagnostic: which rule fired, where, and how to fix it."""

    rule: str
    path: str  # repo-relative POSIX path
    line: int
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


def _fingerprint(finding: Finding, ordinal: int) -> str:
    """Stable identity for baseline matching.

    Deliberately excludes the line number so unrelated edits above a
    grandfathered finding do not invalidate the baseline; the ordinal
    disambiguates repeated identical messages within one file.
    """

    raw = f"{finding.rule}|{finding.path}|{finding.message}|{ordinal}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: Sequence[Finding]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its fingerprint (ordinal-aware)."""

    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        out.append((finding, _fingerprint(finding, ordinal)))
    return out


# ---------------------------------------------------------------- source model
class SourceModule:
    """A parsed source file plus the indexes rules need."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressions = self._parse_suppressions()

    # -- structure -------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # -- suppressions ----------------------------------------------------
    def _parse_suppressions(self) -> Dict[int, Optional[Set[str]]]:
        """Map line number -> suppressed rule names (None = all rules)."""

        table: Dict[int, Optional[Set[str]]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules_blob = match.group("rules")
            if rules_blob is None:
                table[lineno] = None
            else:
                names = {part.strip() for part in rules_blob.split(",") if part.strip()}
                table[lineno] = names or None
        return table

    def is_suppressed(self, line: int, rule: str) -> bool:
        for candidate in (line, line - 1):
            if candidate not in self._suppressions:
                continue
            if candidate == line - 1:
                # A preceding-line suppression must be a comment-only line;
                # otherwise it belongs to that line's own code.
                text = self.lines[candidate - 1] if candidate - 1 < len(self.lines) else ""
                if not _COMMENT_ONLY_RE.match(text):
                    continue
            rules = self._suppressions[candidate]
            if rules is None or rule in rules:
                return True
        return False


class Project:
    """Lazy view of the repository rooted at *root*.

    ``paths`` are the scan roots (repo-relative); :meth:`iter_modules`
    walks them.  Rules may additionally :meth:`load` any file under the
    repo root (e.g. a test module referenced by a kernel registry) even
    when it is outside the scan roots.
    """

    def __init__(self, root: Path, paths: Sequence[str] = ("src",)) -> None:
        self.root = Path(root)
        self.paths = tuple(paths)
        self._modules: Dict[str, Optional[SourceModule]] = {}
        self.parse_errors: List[Finding] = []

    def load(self, relpath: str) -> Optional[SourceModule]:
        relpath = Path(relpath).as_posix()
        if relpath in self._modules:
            return self._modules[relpath]
        full = self.root / relpath
        module: Optional[SourceModule] = None
        if full.is_file():
            try:
                module = SourceModule(relpath, full.read_text(encoding="utf-8"))
            except SyntaxError as error:
                self.parse_errors.append(
                    Finding(
                        rule="parse-error",
                        path=relpath,
                        line=error.lineno or 1,
                        message=f"could not parse module: {error.msg}",
                    )
                )
        self._modules[relpath] = module
        return module

    def iter_modules(self) -> Iterator[SourceModule]:
        for rel in self._scan_files():
            module = self.load(rel)
            if module is not None:
                yield module

    def _scan_files(self) -> List[str]:
        files: List[str] = []
        for base in self.paths:
            full = self.root / base
            if full.is_file() and full.suffix == ".py":
                files.append(Path(base).as_posix())
            elif full.is_dir():
                for path in sorted(full.rglob("*.py")):
                    if "__pycache__" in path.parts:
                        continue
                    files.append(path.relative_to(self.root).as_posix())
        return files

    def find_module(self, suffix: str) -> Optional[SourceModule]:
        """Load the first scanned file whose path ends with *suffix*."""

        suffix = Path(suffix).as_posix()
        for rel in self._scan_files():
            if rel == suffix or rel.endswith("/" + suffix):
                return self.load(rel)
        return None


# -------------------------------------------------------------------- registry
REGISTRY: Dict[str, Type] = {}


def register(rule_cls: Type) -> Type:
    """Class decorator adding a rule to the global registry."""

    name = getattr(rule_cls, "name", None)
    if not name:
        raise ValueError(f"rule class {rule_cls!r} has no name")
    REGISTRY[name] = rule_cls
    return rule_cls


def rule_names() -> List[str]:
    return sorted(REGISTRY)


def all_rules(names: Optional[Sequence[str]] = None) -> List[object]:
    """Instantiate the selected rules (all registered rules by default)."""

    selected = rule_names() if names is None else list(names)
    instances = []
    for name in selected:
        if name not in REGISTRY:
            known = ", ".join(rule_names())
            raise KeyError(f"unknown rule {name!r} (known rules: {known})")
        instances.append(REGISTRY[name]())
    return instances


# -------------------------------------------------------------------- baseline
def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """Load a baseline file; returns ``{fingerprint: entry}``."""

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    entries: Dict[str, Dict[str, object]] = {}
    for entry in payload.get("findings", []):
        entries[str(entry["fingerprint"])] = dict(entry)
    return entries


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    justification: str = "grandfathered by --write-baseline",
) -> None:
    pairs = fingerprint_findings(findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "justification": justification,
            }
            for finding, fingerprint in pairs
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------- runner
@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.new_findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": self.suppressed_count,
            "stale_baseline": list(self.stale_baseline),
        }


def run_analysis(
    root: Path,
    paths: Sequence[str] = ("src",),
    rules: Optional[Sequence[object]] = None,
    baseline: Optional[Dict[str, Dict[str, object]]] = None,
) -> AnalysisReport:
    """Run *rules* over the project and classify findings against *baseline*."""

    project = Project(Path(root), paths)
    instances = list(rules) if rules is not None else all_rules()

    # Eagerly parse every scanned file so syntax errors surface as findings
    # even when no rule happens to visit the broken module.
    for _ in project.iter_modules():
        pass

    report = AnalysisReport()
    raw: List[Finding] = []
    for rule in instances:
        raw.extend(rule.check(project))
    raw.extend(project.parse_errors)
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    kept: List[Finding] = []
    for finding in raw:
        module = project.load(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.rule):
            report.suppressed_count += 1
            continue
        kept.append(finding)
    report.findings = kept

    baseline = baseline or {}
    used: Set[str] = set()
    for finding, fingerprint in fingerprint_findings(kept):
        if fingerprint in baseline:
            used.add(fingerprint)
            report.baselined.append(finding)
        else:
            report.new_findings.append(finding)
    report.stale_baseline = sorted(set(baseline) - used)
    return report
