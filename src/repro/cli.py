"""Command-line interface for the reproduction.

The CLI exposes the main workflows without writing any Python:

* ``repro-antidote datasets`` — list the benchmark datasets (Table 1 metadata);
* ``repro-antidote verify <dataset> --n 8 --depth 2 --point 0`` — certify one
  test point against ``Δn`` poisoning;
* ``repro-antidote certify <dataset> --model removal --n 4 --points 16
  --n-jobs 4`` — batch-certify test points against a chosen threat model
  (removal, fractional removal, label flips, or the composite removal+flip
  model via ``--model composite --n-remove R --n-flip F``) on the unified
  :class:`repro.api.CertificationEngine`, streaming per-point verdicts and
  printing an aggregate report (optionally exported as JSON/CSV); with
  ``--cache-dir`` the run goes through the persistent certification cache
  and a resumable journal (``--resume`` continues an interrupted batch);
* ``repro-antidote cache stats|clear --cache-dir DIR`` — inspect or empty a
  certification cache;
* ``repro-antidote table1`` — regenerate Table 1;
* ``repro-antidote figure6`` — regenerate the Figure 6 series;
* ``repro-antidote figure <dataset>`` — regenerate the dataset's performance
  figure (Figures 7–11);
* ``repro-antidote ablation domains|cprob`` — run the §6.3 / footnote-6
  ablations.

Every command prints the rendered table to stdout and optionally saves it
with ``--save NAME``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.api import CertificationEngine, CertificationReport, CertificationRequest
from repro.datasets.registry import dataset_summaries, list_datasets, load_dataset
from repro.experiments.ablations import (
    compare_cprob_transformers,
    compare_domains,
    render_cprob_ablation,
    render_domain_ablation,
)
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.figure6 import compute_figure6, render_figure6
from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact
from repro.experiments.table1 import compute_table1, render_table1
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)
from repro.runtime import CertificationCache, CertificationRuntime
from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-antidote",
        description="Certify data-poisoning robustness of decision-tree learners "
        "(reproduction of Drews, Albarghouthi, D'Antoni, PLDI 2020).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the benchmark datasets")

    verify = subparsers.add_parser("verify", help="certify one test point")
    verify.add_argument("dataset", choices=list_datasets())
    verify.add_argument("--n", type=int, default=1, help="poisoning budget")
    verify.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    verify.add_argument("--domain", choices=("box", "disjuncts", "either"), default="either")
    verify.add_argument("--point", type=int, default=0, help="test-set index to certify")
    verify.add_argument("--scale", type=float, default=None, help="dataset scale (1.0 = paper size)")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--timeout", type=float, default=60.0)

    certify = subparsers.add_parser(
        "certify", help="batch-certify test points against a threat model"
    )
    certify.add_argument("dataset", choices=list_datasets())
    certify.add_argument(
        "--model",
        choices=("removal", "fraction", "label-flip", "composite"),
        default="removal",
        help="threat model: element removal (Δn), fractional removal, label "
        "flips, or combined removal+flip (Δ_{r,f})",
    )
    certify.add_argument("--n", type=int, default=1,
                         help="budget for the removal / label-flip models")
    certify.add_argument("--fraction", type=float, default=0.01,
                         help="budget for the fractional-removal model")
    certify.add_argument("--n-remove", type=int, default=1, metavar="R",
                         help="removal budget of the composite model")
    certify.add_argument("--n-flip", type=int, default=1, metavar="F",
                         help="label-flip budget of the composite model")
    certify.add_argument("--points", type=int, default=8,
                         help="number of test points to certify (from index 0)")
    certify.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    certify.add_argument("--domain", choices=("box", "disjuncts", "either"), default="either")
    certify.add_argument("--n-jobs", type=int, default=1,
                         help="worker processes for the batch (1 = serial)")
    certify.add_argument("--scale", type=float, default=None,
                         help="dataset scale (1.0 = paper size)")
    certify.add_argument("--seed", type=int, default=0)
    certify.add_argument("--timeout", type=float, default=60.0)
    certify.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full report as JSON")
    certify.add_argument("--csv", default=None, metavar="PATH",
                         help="also write per-point results as CSV")
    certify.add_argument("--quiet", action="store_true",
                         help="suppress the per-point streaming lines")
    certify.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent certification cache + run journal directory")
    certify.add_argument("--resume", action="store_true",
                         help="continue an interrupted run from its journal "
                         "(requires --cache-dir)")
    certify.add_argument("--max-new-points", type=int, default=None, metavar="N",
                         help="stop after N uncached points (exit code 3; rerun "
                         "with --resume to continue)")
    certify.add_argument("--no-shared-memory", action="store_true",
                         help="disable the shared-memory dataset plane for "
                         "pool workers (pickle the dataset instead)")

    cache = subparsers.add_parser(
        "cache", help="inspect or clear a persistent certification cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache-dir", required=True, metavar="DIR")

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    _add_experiment_arguments(table1)

    figure6 = subparsers.add_parser("figure6", help="regenerate Figure 6")
    _add_experiment_arguments(figure6)
    figure6.add_argument("--datasets", nargs="*", default=None, choices=list_datasets())

    figure = subparsers.add_parser("figure", help="regenerate a performance figure (Figures 7-11)")
    figure.add_argument("dataset", choices=list_datasets())
    _add_experiment_arguments(figure)

    ablation = subparsers.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("kind", choices=("domains", "cprob"))
    ablation.add_argument("--dataset", default="mnist17-binary", choices=list_datasets())
    _add_experiment_arguments(ablation)

    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced-scale benchmark configuration")
    parser.add_argument("--save", default=None, metavar="NAME",
                        help="also save the rendered output under benchmarks/results/NAME.txt")


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    if getattr(args, "quick", False):
        return quick_config(seed=args.seed)
    return ExperimentConfig(seed=args.seed)


def _emit(text: str, args: argparse.Namespace) -> None:
    print(text)
    save_name = getattr(args, "save", None)
    if save_name:
        path = save_artifact(save_name, text)
        print(f"\n[saved to {path}]", file=sys.stderr)


def _command_datasets(args: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "paper train", "paper test", "features", "type", "classes", "default scale"]
    )
    for row in dataset_summaries():
        table.add_row(
            [
                row["name"],
                row["paper_train_size"],
                row["paper_test_size"],
                row["n_features"],
                row["feature_type"],
                row["n_classes"],
                row["default_scale"],
            ]
        )
    _emit(table.render(), args)
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    split = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if not 0 <= args.point < len(split.test):
        print(
            f"error: --point must be in [0, {len(split.test)}) for this dataset",
            file=sys.stderr,
        )
        return 2
    engine = CertificationEngine(
        max_depth=args.depth, domain=args.domain, timeout_seconds=args.timeout
    )
    result = engine.certify_point(split.train, split.test.X[args.point], args.n)
    print(split.describe())
    print(f"test point #{args.point}: {result.describe()}")
    if result.is_certified:
        print(
            f"certified: no attacker contributing up to {args.n} of the "
            f"{len(split.train)} training elements can change this prediction "
            f"(~10^{result.log10_num_datasets:.0f} poisoned training sets covered)."
        )
    return 0 if result.is_certified else 1


def _threat_model(args: argparse.Namespace, n_classes: int) -> PerturbationModel:
    # Flip-family models leave n_classes unset: the engine resolves it from
    # the dataset at request time (and would reject a mismatch).
    del n_classes
    if args.model == "removal":
        return RemovalPoisoningModel(args.n)
    if args.model == "fraction":
        return FractionalRemovalModel(args.fraction)
    if args.model == "composite":
        return CompositePoisoningModel(args.n_remove, args.n_flip)
    return LabelFlipModel(args.n)


def _command_certify(args: argparse.Namespace) -> int:
    split = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    count = max(0, min(args.points, len(split.test)))
    try:
        model = _threat_model(args, split.train.n_classes)
    except ValueError as error:
        print(f"error: invalid threat-model budget: {error}", file=sys.stderr)
        return 2
    if args.cache_dir is None and (args.resume or args.max_new_points is not None):
        # Without a journal there is nothing to resume and an interrupted run
        # could never make progress — refuse rather than loop forever.
        print(
            "error: --resume and --max-new-points require --cache-dir",
            file=sys.stderr,
        )
        return 2
    runtime = None
    if args.cache_dir is not None or args.no_shared_memory:
        runtime = CertificationRuntime(
            args.cache_dir,
            shared_memory=not args.no_shared_memory,
            resume=args.resume,
            max_new_points=args.max_new_points,
        )
    engine = CertificationEngine(
        max_depth=args.depth,
        domain=args.domain,
        timeout_seconds=args.timeout,
        runtime=runtime,
    )
    request = CertificationRequest(split.train, split.test.X[:count], model)
    print(split.describe())
    print(request.describe())

    watch = Stopwatch().start()
    results = []
    for index, result in enumerate(
        engine.certify_stream(request, n_jobs=args.n_jobs)
    ):
        results.append(result)
        if not args.quiet:
            print(f"  point {index:3d}: {result.describe()}")
    batch_stats = runtime.last_batch_stats if runtime is not None else None
    report = CertificationReport(
        results=results,
        model_description=model.describe(),
        dataset_name=split.train.name,
        total_seconds=watch.elapsed(),
        runtime_stats=None if batch_stats is None else batch_stats.snapshot(),
    )
    print()
    print(report.render())
    print(report.describe())
    if args.json:
        Path(args.json).write_text(report.to_json(indent=2), encoding="utf-8")
        print(f"[report JSON written to {args.json}]", file=sys.stderr)
    if args.csv:
        Path(args.csv).write_text(report.to_csv(), encoding="utf-8")
        print(f"[per-point CSV written to {args.csv}]", file=sys.stderr)
    if batch_stats is not None and batch_stats.truncated_at is not None:
        print(
            f"interrupted after {batch_stats.learner_invocations} new point(s) "
            f"({len(results)}/{count} done); rerun with --resume to continue",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir).expanduser()
    if not (cache_dir / CertificationCache.DB_NAME).is_file():
        # Inspection commands must not fabricate a database: a typo'd path
        # would silently report an empty cache instead of the mistake.
        print(f"error: no certification cache at {cache_dir}", file=sys.stderr)
        return 2
    cache = CertificationCache(cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached verdict(s) from {cache.db_path}")
        return 0
    stats = cache.stats()
    table = TextTable(["metric", "value"])
    table.add_row(["path", stats["path"]])
    table.add_row(["verdicts", stats["verdicts"]])
    for status, count in sorted(stats["by_status"].items()):
        table.add_row([f"status: {status}", count])
    table.add_row(["datasets", stats["datasets"]])
    table.add_row(["size (bytes)", stats["size_bytes"]])
    print(table.render())
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    rows = compute_table1(config)
    _emit(render_table1(rows), args)
    return 0


def _command_figure6(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    series = compute_figure6(config, datasets=args.datasets)
    _emit(render_figure6(series), args)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    points = compute_performance_figure(args.dataset, config)
    _emit(render_performance_figure(points), args)
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    if args.kind == "domains":
        _emit(render_domain_ablation(compare_domains(args.dataset, config)), args)
    else:
        _emit(render_cprob_ablation(compare_cprob_transformers(args.dataset, config)), args)
    return 0


_COMMANDS = {
    "datasets": _command_datasets,
    "verify": _command_verify,
    "certify": _command_certify,
    "cache": _command_cache,
    "table1": _command_table1,
    "figure6": _command_figure6,
    "figure": _command_figure,
    "ablation": _command_ablation,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
