"""Command-line interface for the reproduction.

The CLI exposes the main workflows without writing any Python:

* ``repro-antidote datasets`` — list the benchmark datasets (Table 1 metadata);
* ``repro-antidote verify <dataset> --n 8 --depth 2 --point 0`` — certify one
  test point against ``Δn`` poisoning;
* ``repro-antidote certify <dataset> --model removal --n 4 --points 16
  --n-jobs 4`` — batch-certify test points against a chosen threat model
  (removal, fractional removal, label flips, or the composite removal+flip
  model via ``--model composite --n-remove R --n-flip F``) on the unified
  :class:`repro.api.CertificationEngine`, streaming per-point verdicts and
  printing an aggregate report (optionally exported as JSON/CSV); with
  ``--cache-dir`` the run goes through the persistent certification cache
  and a resumable journal (``--resume`` continues an interrupted batch);
* ``repro-antidote sweep <dataset> --model removal --max-n 64`` — the §6.1
  certified-budget search (doubling + binary search) per test point, for any
  scalar-budget threat model; with ``--model composite --frontier
  --max-remove R --max-flip F`` it computes the per-point **Pareto frontier**
  of maximal certified ``(n_remove, n_flip)`` pairs instead (staircase
  descent over the pair lattice, probes answered through the cache's pair
  dominance when ``--cache-dir`` is given);
* ``repro-antidote cache stats|clear|gc --cache-dir DIR`` — inspect, empty,
  or garbage-collect a certification cache (``gc --max-bytes/--max-age/
  --max-entries`` evicts LRU-first, derivable verdicts before underivable
  ones);
* ``repro-antidote serve SOCKET --cache-dir DIR`` — run the certification
  daemon: one warm runtime (published datasets, warm request plans, open
  verdict cache) serving the versioned JSON-lines protocol over a
  Unix-domain socket — or over TCP with ``--tcp HOST:PORT`` — with optional
  micro-batching of concurrent single-point frames (``--batch-window``);
  point ``verify``/``certify``/``sweep`` at it with ``--connect ADDRESS``
  (socket path or ``host:port``) to certify against the warm remote runtime
  instead of a cold local engine;
* ``repro-antidote route --tcp HOST:PORT --backend ADDR ...`` — run the
  fleet router: shards requests across backends by dataset fingerprint
  (consistent hashing), health-checks them, fails over mid-request, and
  replicates derivable verdict rows between their caches
  (:mod:`repro.fleet`);
* ``repro-antidote metrics [--connect SOCKET] [--format prometheus]`` — dump
  the telemetry registry (:mod:`repro.telemetry`) of this process or of a
  running daemon, as a JSON snapshot or Prometheus text exposition;
  ``verify``/``certify``/``sweep`` additionally accept ``--metrics-json PATH``
  (write the local registry after the command) and ``verify``/``certify``
  accept ``--trace`` (enable span tracing on the local engine);
* ``repro-antidote table1`` — regenerate Table 1;
* ``repro-antidote figure6`` — regenerate the Figure 6 series;
* ``repro-antidote figure <dataset>`` — regenerate the dataset's performance
  figure (Figures 7–11);
* ``repro-antidote ablation domains|cprob`` — run the §6.3 / footnote-6
  ablations.

Every command prints the rendered table to stdout and optionally saves it
with ``--save NAME``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.api import CertificationEngine, CertificationReport, CertificationRequest
from repro.datasets.registry import dataset_summaries, list_datasets, load_dataset
from repro.experiments.ablations import (
    compare_cprob_transformers,
    compare_domains,
    render_cprob_ablation,
    render_domain_ablation,
)
from repro.experiments.config import ExperimentConfig, quick_config
from repro.experiments.figure6 import compute_figure6, render_figure6
from repro.experiments.perf_figures import (
    compute_performance_figure,
    render_performance_figure,
)
from repro.experiments.reporting import save_artifact
from repro.experiments.table1 import compute_table1, render_table1
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)
from repro.runtime import CertificationCache, CertificationRuntime
from repro.service.protocol import METRICS_VERSION
from repro.telemetry import events as telemetry_events
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry import tracing
from repro.utils.tables import TextTable
from repro.utils.timing import Stopwatch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-antidote",
        description="Certify data-poisoning robustness of decision-tree learners "
        "(reproduction of Drews, Albarghouthi, D'Antoni, PLDI 2020).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the benchmark datasets")

    verify = subparsers.add_parser("verify", help="certify one test point")
    verify.add_argument("dataset", choices=list_datasets())
    verify.add_argument("--n", type=int, default=1, help="poisoning budget")
    verify.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    verify.add_argument("--domain", choices=("box", "disjuncts", "either"), default="either")
    verify.add_argument("--point", type=int, default=0, help="test-set index to certify")
    verify.add_argument("--scale", type=float, default=None, help="dataset scale (1.0 = paper size)")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--timeout", type=float, default=60.0)
    verify.add_argument("--connect", default=None, metavar="ADDRESS",
                        help="certify through a running `repro-antidote serve` "
                        "daemon or `route` router instead of a local engine "
                        "(a Unix socket path or host:port)")
    verify.add_argument("--trace", action="store_true",
                        help="enable span tracing and print the wall-time "
                        "trace tree (local engine only)")
    verify.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write this process's telemetry snapshot as JSON "
                        "after the command")
    verify.add_argument("--log-json", default=None, metavar="PATH",
                        help="append request-correlated JSONL events to PATH "
                        "(also enabled by REPRO_LOG_JSON)")

    certify = subparsers.add_parser(
        "certify", help="batch-certify test points against a threat model"
    )
    certify.add_argument("dataset", choices=list_datasets())
    certify.add_argument(
        "--model",
        choices=("removal", "fraction", "label-flip", "composite"),
        default="removal",
        help="threat model: element removal (Δn), fractional removal, label "
        "flips, or combined removal+flip (Δ_{r,f})",
    )
    certify.add_argument("--n", type=int, default=1,
                         help="budget for the removal / label-flip models")
    certify.add_argument("--fraction", type=float, default=0.01,
                         help="budget for the fractional-removal model")
    certify.add_argument("--n-remove", type=int, default=1, metavar="R",
                         help="removal budget of the composite model")
    certify.add_argument("--n-flip", type=int, default=1, metavar="F",
                         help="label-flip budget of the composite model")
    certify.add_argument("--points", type=int, default=8,
                         help="number of test points to certify (from index 0)")
    certify.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    certify.add_argument("--domain", choices=("box", "disjuncts", "either"), default="either")
    certify.add_argument("--n-jobs", type=int, default=1,
                         help="worker processes for the batch (1 = serial)")
    certify.add_argument("--scale", type=float, default=None,
                         help="dataset scale (1.0 = paper size)")
    certify.add_argument("--seed", type=int, default=0)
    certify.add_argument("--timeout", type=float, default=60.0)
    certify.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full report as JSON")
    certify.add_argument("--csv", default=None, metavar="PATH",
                         help="also write per-point results as CSV")
    certify.add_argument("--quiet", action="store_true",
                         help="suppress the per-point streaming lines")
    certify.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent certification cache + run journal directory")
    certify.add_argument("--resume", action="store_true",
                         help="continue an interrupted run from its journal "
                         "(requires --cache-dir)")
    certify.add_argument("--max-new-points", type=int, default=None, metavar="N",
                         help="stop after N uncached points (exit code 3; rerun "
                         "with --resume to continue)")
    certify.add_argument("--no-shared-memory", action="store_true",
                         help="disable the shared-memory dataset plane for "
                         "pool workers (pickle the dataset instead)")
    certify.add_argument("--connect", default=None, metavar="ADDRESS",
                         help="certify through a running `repro-antidote serve` "
                         "daemon or `route` router — a Unix socket path or "
                         "host:port (the server owns cache and parallelism; "
                         "incompatible with --cache-dir/--resume/"
                         "--max-new-points)")
    certify.add_argument("--trace", action="store_true",
                         help="enable span tracing; the report's runtime_stats "
                         "carries the wall-time trace tree (local engine only)")
    certify.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write this process's telemetry snapshot as JSON "
                         "after the command")
    certify.add_argument("--log-json", default=None, metavar="PATH",
                         help="append request-correlated JSONL events to PATH "
                         "(also enabled by REPRO_LOG_JSON)")

    sweep = subparsers.add_parser(
        "sweep",
        help="search the largest certified budget per point (§6.1), or the "
        "composite (r, f) Pareto frontier",
    )
    sweep.add_argument("dataset", choices=list_datasets())
    sweep.add_argument(
        "--model",
        choices=("removal", "fraction", "label-flip", "composite"),
        default="removal",
        help="threat-model family to sweep; composite requires --frontier",
    )
    sweep.add_argument("--start", type=int, default=1,
                       help="first budget probed by the doubling phase")
    sweep.add_argument("--max-n", type=int, default=None, metavar="N",
                       help="cap of the scalar budget search (default: |T|)")
    sweep.add_argument("--frontier", action="store_true",
                       help="compute the set of maximal certified "
                       "(n_remove, n_flip) pairs per point (composite model only)")
    sweep.add_argument("--max-remove", type=int, default=None, metavar="R",
                       help="removal-budget cap of the frontier grid (default: |T|)")
    sweep.add_argument("--max-flip", type=int, default=None, metavar="F",
                       help="flip-budget cap of the frontier grid (default: |T|)")
    sweep.add_argument("--points", type=int, default=8,
                       help="number of test points to sweep (from index 0)")
    sweep.add_argument("--depth", type=int, default=2, help="decision-tree depth")
    sweep.add_argument("--domain", choices=("box", "disjuncts", "either"), default="either")
    sweep.add_argument("--n-jobs", type=int, default=1,
                       help="worker processes for cache-less frontier sweeps "
                       "(adaptive scalar searches and cached sweeps run serially)")
    sweep.add_argument("--scale", type=float, default=None,
                       help="dataset scale (1.0 = paper size)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--timeout", type=float, default=60.0)
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent certification cache the probes flow "
                       "through (repeat sweeps derive from prior verdicts)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="also write the sweep outcome as JSON")
    sweep.add_argument("--csv", default=None, metavar="PATH",
                       help="also write the per-point outcome rows as CSV")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress the per-point lines")
    sweep.add_argument("--connect", default=None, metavar="ADDRESS",
                       help="probe through a running `repro-antidote serve` "
                       "daemon (its cache answers repeat probes; "
                       "incompatible with --cache-dir)")
    sweep.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="write this process's telemetry snapshot as JSON "
                       "after the command")
    sweep.add_argument("--log-json", default=None, metavar="PATH",
                       help="append request-correlated JSONL events to PATH "
                       "(also enabled by REPRO_LOG_JSON)")

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="dump a telemetry registry (this process's, or a daemon's via "
        "--connect)",
    )
    metrics_cmd.add_argument("--connect", default=None, metavar="ADDRESS",
                             help="fetch the registry of a running "
                             "`repro-antidote serve` daemon through the "
                             "versioned `metrics` op (default: the — mostly "
                             "empty — local process registry)")
    metrics_cmd.add_argument("--format", choices=("json", "prometheus"),
                             default="json",
                             help="json snapshot (default) or Prometheus text "
                             "exposition")
    metrics_cmd.add_argument("--json", default=None, metavar="PATH",
                             help="also write the output to PATH")

    top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a telemetry registry (this "
        "process's, or a daemon's via --connect)",
    )
    top.add_argument("--connect", default=None, metavar="ADDRESS",
                     help="watch a running `repro-antidote serve` daemon "
                     "through the versioned `metrics` op")
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                     help="refresh period (default: 2s)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (default 0: run until "
                     "Ctrl-C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen "
                     "(for logs and tests)")

    trace_cmd = subparsers.add_parser(
        "trace",
        help="fetch and render the stored span tree of one request id",
    )
    trace_cmd.add_argument("request_id", metavar="REQUEST_ID",
                           help="correlation id printed by the issuing "
                           "command ('[request id ...]' on stderr)")
    trace_cmd.add_argument("--connect", default=None, metavar="ADDRESS",
                           help="query a running `repro-antidote serve` "
                           "daemon (it must run with --trace); default: "
                           "this process's completed-roots ring")

    cache = subparsers.add_parser(
        "cache", help="inspect, clear, or garbage-collect a certification cache"
    )
    cache.add_argument("action", choices=("stats", "clear", "gc"))
    cache.add_argument("--cache-dir", required=True, metavar="DIR")
    cache.add_argument("--max-bytes", type=int, default=None, metavar="BYTES",
                       help="gc: evict LRU verdicts (derivable first) until "
                       "the database is at most this many bytes")
    cache.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                       help="gc: evict verdicts not used within the last "
                       "SECONDS seconds")
    cache.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="gc: keep at most N verdicts (derivable evicted "
                       "first, then least recently used)")

    serve = subparsers.add_parser(
        "serve", help="run the certification daemon (Unix socket or TCP)"
    )
    serve.add_argument("socket", metavar="SOCKET", nargs="?", default=None,
                       help="filesystem path of the Unix-domain socket to bind "
                       "(omit when using --tcp)")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="bind a TCP listener instead of a Unix socket "
                       "(fleet mode: reachable by `repro-antidote route` "
                       "backends on other hosts)")
    serve.add_argument("--batch-window", type=float, default=0.0,
                       metavar="SECONDS",
                       help="coalesce concurrent single-point certify frames "
                       "for the same (dataset, model, engine) into pooled "
                       "scheduler batches, holding each window open this long "
                       "(default: 0, batching off)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent verdict cache served to every client "
                       "(default: an ephemeral cache living as long as the "
                       "server)")
    serve.add_argument("--no-shared-memory", action="store_true",
                       help="disable the shared-memory dataset plane for "
                       "pool workers")
    serve.add_argument("--max-engines", type=int, default=8, metavar="N",
                       help="how many engine configurations to keep warm")
    serve.add_argument("--trace", action="store_true",
                       help="enable span tracing server-wide so `repro trace "
                       "REQUEST_ID --connect` can fetch stored request traces")
    serve.add_argument("--log-json", default=None, metavar="PATH",
                       help="append request-correlated JSONL events to PATH "
                       "(also enabled by REPRO_LOG_JSON)")

    route = subparsers.add_parser(
        "route",
        help="run the fleet router: shard certification requests across "
        "`repro-antidote serve` backends by dataset fingerprint",
    )
    route.add_argument("socket", metavar="SOCKET", nargs="?", default=None,
                       help="Unix-domain socket to listen on (omit when "
                       "using --tcp)")
    route.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="TCP address to listen on")
    route.add_argument("--backend", action="append", default=None,
                       metavar="ADDRESS", dest="backends",
                       help="backend server address (host:port or Unix "
                       "socket path); repeat once per backend",)
    route.add_argument("--no-replicate", action="store_true",
                       help="disable cross-server replication of derivable "
                       "verdict rows")
    route.add_argument("--health-interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="seconds between backend health probes")
    route.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request timeout on backend calls (a backend "
                       "that stops answering triggers failover instead of "
                       "hanging the client)")
    route.add_argument("--log-json", default=None, metavar="PATH",
                       help="append request-correlated JSONL events to PATH "
                       "(also enabled by REPRO_LOG_JSON)")

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    _add_experiment_arguments(table1)

    figure6 = subparsers.add_parser("figure6", help="regenerate Figure 6")
    _add_experiment_arguments(figure6)
    figure6.add_argument("--datasets", nargs="*", default=None, choices=list_datasets())

    figure = subparsers.add_parser("figure", help="regenerate a performance figure (Figures 7-11)")
    figure.add_argument("dataset", choices=list_datasets())
    _add_experiment_arguments(figure)

    ablation = subparsers.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("kind", choices=("domains", "cprob"))
    ablation.add_argument("--dataset", default="mnist17-binary", choices=list_datasets())
    _add_experiment_arguments(ablation)

    analyze = subparsers.add_parser(
        "analyze",
        help="run the project-invariant static analysis (repro.analysis)",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    analyze.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    analyze.add_argument("--format", choices=("text", "json"), default="text")
    analyze.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline JSON of grandfathered findings "
        "(default: analysis_baseline.json when it exists)",
    )
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file to cover every current finding",
    )
    analyze.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )

    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced-scale benchmark configuration")
    parser.add_argument("--save", default=None, metavar="NAME",
                        help="also save the rendered output under benchmarks/results/NAME.txt")


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    if getattr(args, "quick", False):
        return quick_config(seed=args.seed)
    return ExperimentConfig(seed=args.seed)


def _emit(text: str, args: argparse.Namespace) -> None:
    print(text)
    save_name = getattr(args, "save", None)
    if save_name:
        path = save_artifact(save_name, text)
        print(f"\n[saved to {path}]", file=sys.stderr)


def _command_datasets(args: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "paper train", "paper test", "features", "type", "classes", "default scale"]
    )
    for row in dataset_summaries():
        table.add_row(
            [
                row["name"],
                row["paper_train_size"],
                row["paper_test_size"],
                row["n_features"],
                row["feature_type"],
                row["n_classes"],
                row["default_scale"],
            ]
        )
    _emit(table.render(), args)
    return 0


def _dataset_ref(args: argparse.Namespace) -> dict:
    """The registry reference `--connect` requests send instead of arrays."""
    return {"name": args.dataset, "scale": args.scale, "seed": args.seed}


def _connect_client(args: argparse.Namespace):
    """A service client configured like the local engine the command builds."""
    from repro.service import CertificationClient

    return CertificationClient(
        args.connect,
        max_depth=args.depth,
        domain=args.domain,
        timeout_seconds=args.timeout,
    )


def _command_verify(args: argparse.Namespace) -> int:
    split = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if not 0 <= args.point < len(split.test):
        print(
            f"error: --point must be in [0, {len(split.test)}) for this dataset",
            file=sys.stderr,
        )
        return 2
    if args.connect:
        with _connect_client(args) as client:
            result = client.certify_point(
                _dataset_ref(args), split.test.X[args.point], args.n
            )
    else:
        engine = CertificationEngine(
            max_depth=args.depth, domain=args.domain, timeout_seconds=args.timeout
        )
        with tracing.span("cli.verify") as trace_root:
            result = engine.certify_point(
                split.train, split.test.X[args.point], args.n
            )
        if trace_root is not None:
            print(trace_root.render(), file=sys.stderr)
    print(split.describe())
    print(f"test point #{args.point}: {result.describe()}")
    if result.is_certified:
        print(
            f"certified: no attacker contributing up to {args.n} of the "
            f"{len(split.train)} training elements can change this prediction "
            f"(~10^{result.log10_num_datasets:.0f} poisoned training sets covered)."
        )
    return 0 if result.is_certified else 1


def _threat_model(args: argparse.Namespace, n_classes: int) -> PerturbationModel:
    # Flip-family models leave n_classes unset: the engine resolves it from
    # the dataset at request time (and would reject a mismatch).
    del n_classes
    if args.model == "removal":
        return RemovalPoisoningModel(args.n)
    if args.model == "fraction":
        return FractionalRemovalModel(args.fraction)
    if args.model == "composite":
        return CompositePoisoningModel(args.n_remove, args.n_flip)
    return LabelFlipModel(args.n)


def _command_certify(args: argparse.Namespace) -> int:
    split = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    count = max(0, min(args.points, len(split.test)))
    try:
        model = _threat_model(args, split.train.n_classes)
    except ValueError as error:
        print(f"error: invalid threat-model budget: {error}", file=sys.stderr)
        return 2
    if args.cache_dir is None and (args.resume or args.max_new_points is not None):
        # Without a journal there is nothing to resume and an interrupted run
        # could never make progress — refuse rather than loop forever.
        print(
            "error: --resume and --max-new-points require --cache-dir",
            file=sys.stderr,
        )
        return 2
    if args.connect:
        if args.cache_dir is not None or args.no_shared_memory:
            # The server owns its cache and dataset plane; a client cannot
            # re-point either.
            print(
                "error: --connect is incompatible with --cache-dir and "
                "--no-shared-memory (the server owns the runtime)",
                file=sys.stderr,
            )
            return 2
        return _certify_connected(args, split, count, model)
    runtime = None
    if args.cache_dir is not None or args.no_shared_memory:
        runtime = CertificationRuntime(
            args.cache_dir,
            shared_memory=not args.no_shared_memory,
            resume=args.resume,
            max_new_points=args.max_new_points,
        )
    engine = CertificationEngine(
        max_depth=args.depth,
        domain=args.domain,
        timeout_seconds=args.timeout,
        runtime=runtime,
    )
    request = CertificationRequest(split.train, split.test.X[:count], model)
    print(split.describe())
    print(request.describe())

    watch = Stopwatch().start()
    results = []
    with tracing.span("cli.certify") as trace_root:
        for index, result in enumerate(
            engine.certify_stream(request, n_jobs=args.n_jobs)
        ):
            results.append(result)
            if not args.quiet:
                print(f"  point {index:3d}: {result.describe()}")
    batch_stats = runtime.last_batch_stats if runtime is not None else None
    runtime_stats = None if batch_stats is None else batch_stats.snapshot()
    if trace_root is not None:
        runtime_stats = dict(runtime_stats or {})
        runtime_stats["trace"] = trace_root.to_dict()
    report = CertificationReport(
        results=results,
        model_description=model.describe(),
        dataset_name=split.train.name,
        total_seconds=watch.elapsed(),
        runtime_stats=runtime_stats,
    )
    print()
    print(report.render())
    print(report.describe())
    if args.json:
        Path(args.json).write_text(report.to_json(indent=2), encoding="utf-8")
        print(f"[report JSON written to {args.json}]", file=sys.stderr)
    if args.csv:
        Path(args.csv).write_text(report.to_csv(), encoding="utf-8")
        print(f"[per-point CSV written to {args.csv}]", file=sys.stderr)
    if batch_stats is not None and batch_stats.truncated_at is not None:
        print(
            f"interrupted after {batch_stats.learner_invocations} new point(s) "
            f"({len(results)}/{count} done); rerun with --resume to continue",
            file=sys.stderr,
        )
        return 3
    return 0


def _certify_connected(args, split, count, model) -> int:
    """The `certify --connect` path: one warm-runtime round trip per batch."""
    request_points = split.test.X[:count]
    print(split.describe())
    print(
        f"certify {len(request_points)} point(s) of {split.train.name!r} "
        f"(|T|={len(split.train)}) against {model.describe()} "
        f"via {args.connect}"
    )
    with _connect_client(args) as client:
        report = client.certify_batch(
            _dataset_ref(args), request_points, model, n_jobs=args.n_jobs
        )
    if not args.quiet:
        for index, result in enumerate(report.results):
            print(f"  point {index:3d}: {result.describe()}")
    print()
    print(report.render())
    print(report.describe())
    if args.json:
        Path(args.json).write_text(report.to_json(indent=2), encoding="utf-8")
        print(f"[report JSON written to {args.json}]", file=sys.stderr)
    if args.csv:
        Path(args.csv).write_text(report.to_csv(), encoding="utf-8")
        print(f"[per-point CSV written to {args.csv}]", file=sys.stderr)
    return 0


def _sweep_template(args: argparse.Namespace) -> Optional[PerturbationModel]:
    """The family template a ``sweep`` run rebinds budgets on.

    ``None`` selects the paper's ``Δn`` (the default of the search layer);
    fractional removal denotes the same family once resolved, so it sweeps
    over explicit element counts too.
    """
    if args.model == "label-flip":
        return LabelFlipModel(0)
    if args.model == "composite":
        return CompositePoisoningModel(0, 0)
    return None


def _command_sweep(args: argparse.Namespace) -> int:
    if args.frontier and args.model != "composite":
        print(
            "error: --frontier sweeps the (n_remove, n_flip) pair lattice and "
            "requires --model composite",
            file=sys.stderr,
        )
        return 2
    if args.model == "composite" and not args.frontier:
        print(
            "error: the composite model has no scalar budget to search; "
            "pass --frontier for the (n_remove, n_flip) Pareto frontier",
            file=sys.stderr,
        )
        return 2
    if args.connect and args.cache_dir is not None:
        print(
            "error: --connect is incompatible with --cache-dir (probes flow "
            "through the server's cache)",
            file=sys.stderr,
        )
        return 2
    split = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    count = max(0, min(args.points, len(split.test)))
    points = split.test.X[:count]
    template = _sweep_template(args)
    client = None
    engine = None
    runtime = None
    if args.connect:
        client = _connect_client(args)
    else:
        if args.cache_dir is not None:
            runtime = CertificationRuntime(args.cache_dir)
        engine = CertificationEngine(
            max_depth=args.depth,
            domain=args.domain,
            timeout_seconds=args.timeout,
            runtime=runtime,
        )
    print(split.describe())

    watch = Stopwatch().start()
    try:
        if args.frontier:
            exit_code = _run_frontier_sweep(
                args, split, points, template, engine, runtime, watch, client
            )
        else:
            exit_code = _run_scalar_sweep(
                args, split, points, template, engine, runtime, watch, client
            )
    finally:
        if client is not None:
            client.close()
    return exit_code


def _run_scalar_sweep(
    args, split, points, template, engine, runtime, watch, client=None
) -> int:
    """The §6.1 protocol per point: doubling + binary search over one budget."""
    family = (
        "removal" if args.model in ("removal", "fraction") else args.model
    )
    print(
        f"searching the largest certified {family} budget for {len(points)} "
        f"point(s) of {split.train.name!r} (|T|={len(split.train)}, "
        f"max budget {args.max_n if args.max_n is not None else len(split.train)})"
    )
    if args.n_jobs > 1:
        print(
            "note: the scalar budget search probes adaptively and runs "
            "serially; --n-jobs ignored",
            file=sys.stderr,
        )
    outcomes = []
    for index, x in enumerate(points):
        if client is not None or runtime is not None:
            if client is not None:
                outcome = client.max_certified(
                    _dataset_ref(args), x,
                    start=args.start, max_budget=args.max_n, model=template,
                )
            else:
                outcome = runtime.max_certified(
                    engine, split.train, x,
                    start=args.start, max_budget=args.max_n, model=template,
                )
            row = {
                "index": index,
                "max_certified_n": outcome.max_certified_n,
                "attempts": outcome.attempts,
                "learner_invocations": outcome.learner_invocations,
                "trace_steps": getattr(outcome, "trace_steps", 0),
                "trace_reused": getattr(outcome, "trace_reused", 0),
                "trace_reuse_fraction": getattr(
                    outcome, "trace_reuse_fraction", 0.0
                ),
            }
        else:
            search = engine.max_certified(
                split.train, x, model=template, start=args.start, max_budget=args.max_n
            )
            row = {
                "index": index,
                "max_certified_n": search.max_certified_n,
                "attempts": len(search.attempts),
                "learner_invocations": None,
                "trace_steps": search.trace_steps,
                "trace_reused": search.trace_reused,
                "trace_reuse_fraction": search.trace_reuse_fraction,
            }
        outcomes.append(row)
        if not args.quiet:
            print(
                f"  point {index:3d}: max certified budget "
                f"{row['max_certified_n']} ({row['attempts']} probe(s))"
            )
    total_seconds = watch.elapsed()

    certified = [row for row in outcomes if row["max_certified_n"] > 0]
    table = TextTable(["metric", "value"])
    table.add_row(["dataset", split.train.name])
    table.add_row(["family", family])
    table.add_row(["points", len(outcomes)])
    table.add_row(["ever certified", len(certified)])
    if outcomes:
        budgets = [row["max_certified_n"] for row in outcomes]
        table.add_row(["mean max budget", f"{sum(budgets) / len(budgets):.2f}"])
        table.add_row(["largest max budget", max(budgets)])
    table.add_row(["total probes", sum(row["attempts"] for row in outcomes)])
    trace_steps = sum(row["trace_steps"] for row in outcomes)
    trace_reused = sum(row["trace_reused"] for row in outcomes)
    if trace_steps:
        table.add_row(
            ["trace reuse",
             f"{trace_reused}/{trace_steps} ({trace_reused / trace_steps:.1%})"]
        )
    stats = runtime.stats_snapshot() if runtime is not None else None
    if stats is not None:
        table.add_row(["learner invocations", stats["learner_invocations"]])
    elif client is not None and outcomes:
        table.add_row(
            ["learner invocations",
             sum(row["learner_invocations"] for row in outcomes)]
        )
    table.add_row(["wall-clock (s)", f"{total_seconds:.3f}"])
    print()
    print(table.render())

    if args.json:
        payload = {
            "dataset_name": split.train.name,
            "family": family,
            "start": args.start,
            "max_budget": args.max_n,
            "outcomes": outcomes,
            "total_seconds": total_seconds,
        }
        if stats is not None:
            payload["runtime_stats"] = stats
        Path(args.json).write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        print(f"[sweep JSON written to {args.json}]", file=sys.stderr)
    if args.csv:
        lines = ["index,max_certified_n,attempts,trace_steps,trace_reused"]
        lines += [
            f"{row['index']},{row['max_certified_n']},{row['attempts']},"
            f"{row['trace_steps']},{row['trace_reused']}"
            for row in outcomes
        ]
        Path(args.csv).write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"[per-point CSV written to {args.csv}]", file=sys.stderr)
    return 0


def _run_frontier_sweep(
    args, split, points, template, engine, runtime, watch, client=None
) -> int:
    """Composite (r, f) Pareto frontiers per point (staircase descent)."""
    size = len(split.train)
    max_remove = size if args.max_remove is None else min(args.max_remove, size)
    max_flip = size if args.max_flip is None else min(args.max_flip, size)
    description = (
        f"composite (r, f) Pareto frontier over "
        f"[0, {max_remove}] × [0, {max_flip}]"
    )
    print(
        f"computing {description} for {len(points)} point(s) of "
        f"{split.train.name!r} (|T|={size})"
    )
    if client is not None:
        outcomes = client.pareto_sweep(
            _dataset_ref(args), points,
            max_remove=max_remove, max_flip=max_flip, model=template,
        )
        frontiers = [outcome.to_dict() for outcome in outcomes]
    elif runtime is not None:
        if args.n_jobs > 1:
            print(
                "note: cached frontier sweeps run serially so every probe "
                "shares the verdict cache; --n-jobs ignored",
                file=sys.stderr,
            )
        outcomes = runtime.pareto_sweep(
            engine, split.train, points,
            max_remove=max_remove, max_flip=max_flip, model=template,
        )
        frontiers = [outcome.to_dict() for outcome in outcomes]
    else:
        results = engine.pareto_sweep(
            split.train, points,
            max_remove=max_remove, max_flip=max_flip, model=template,
            n_jobs=args.n_jobs,
        )
        frontiers = [result.to_dict() for result in results]
    total_seconds = watch.elapsed()

    if not args.quiet:
        for index, entry in enumerate(frontiers):
            pairs = ", ".join(f"({r}, {f})" for r, f in entry["frontier"])
            print(
                f"  point {index:3d}: frontier [{pairs or 'uncertified'}] "
                f"({entry['probes']} probe(s))"
            )

    stats = runtime.stats_snapshot() if runtime is not None else None
    report = CertificationReport(
        results=[],
        model_description=description,
        dataset_name=split.train.name,
        total_seconds=total_seconds,
        runtime_stats=stats,
        frontiers=frontiers,
    )
    certified = sum(1 for entry in frontiers if entry["frontier"])
    table = TextTable(["metric", "value"])
    table.add_row(["dataset", split.train.name])
    table.add_row(["frontier grid", f"[0, {max_remove}] × [0, {max_flip}]"])
    table.add_row(["points", len(frontiers)])
    table.add_row(["ever certified", certified])
    table.add_row(
        ["total frontier pairs", sum(len(entry["frontier"]) for entry in frontiers)]
    )
    table.add_row(["total probes", sum(entry["probes"] for entry in frontiers)])
    if stats is not None:
        table.add_row(["learner invocations", stats["learner_invocations"]])
    elif client is not None and frontiers:
        table.add_row(
            ["learner invocations",
             sum(entry["learner_invocations"] for entry in frontiers)]
        )
    table.add_row(["wall-clock (s)", f"{total_seconds:.3f}"])
    print()
    print(table.render())

    if args.json:
        Path(args.json).write_text(report.to_json(indent=2), encoding="utf-8")
        print(f"[frontier JSON written to {args.json}]", file=sys.stderr)
    if args.csv:
        Path(args.csv).write_text(report.frontier_csv(), encoding="utf-8")
        print(f"[frontier CSV written to {args.csv}]", file=sys.stderr)
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir).expanduser()
    if not (cache_dir / CertificationCache.DB_NAME).is_file():
        # Inspection commands must not fabricate a database: a typo'd path
        # would silently report an empty cache instead of the mistake.
        print(f"error: no certification cache at {cache_dir}", file=sys.stderr)
        return 2
    cache = CertificationCache(cache_dir)
    try:
        return _run_cache_action(cache, args)
    finally:
        # A dangling connection (with whatever transaction state the last
        # statement auto-began) would lock out other processes' VACUUMs.
        cache.close()


def _run_cache_action(cache: CertificationCache, args: argparse.Namespace) -> int:
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached verdict(s) from {cache.db_path}")
        return 0
    if args.action == "gc":
        if args.max_bytes is None and args.max_age is None and args.max_entries is None:
            print(
                "error: cache gc needs at least one bound "
                "(--max-bytes, --max-age, or --max-entries)",
                file=sys.stderr,
            )
            return 2
        summary = cache.gc(
            max_bytes=args.max_bytes,
            max_age=args.max_age,
            max_entries=args.max_entries,
        )
        print(
            f"evicted {summary['evicted']} verdict(s) from {cache.db_path} "
            f"({summary['remaining']} remaining, "
            f"{summary['size_bytes_before']} -> {summary['size_bytes_after']} bytes)"
        )
        return 0
    stats = cache.stats()
    table = TextTable(["metric", "value"])
    table.add_row(["path", stats["path"]])
    table.add_row(["verdicts", stats["verdicts"]])
    for status, count in sorted(stats["by_status"].items()):
        table.add_row([f"status: {status}", count])
    table.add_row(["datasets", stats["datasets"]])
    table.add_row(["size (bytes)", stats["size_bytes"]])
    print(table.render())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import CertificationServer

    if (args.socket is None) == (args.tcp is None):
        print("error: pass exactly one of SOCKET or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    server = CertificationServer(
        args.socket,
        tcp=args.tcp,
        cache_dir=args.cache_dir,
        shared_memory=not args.no_shared_memory,
        max_engines=args.max_engines,
        batch_window=args.batch_window,
    )
    cache = "ephemeral" if args.cache_dir is None else args.cache_dir
    print(f"serving certifications on {server.address} (cache: {cache})")
    print("press Ctrl-C or send SIGTERM to stop")
    server.serve_forever()
    print("server stopped")
    return 0


def _command_route(args: argparse.Namespace) -> int:
    from repro.fleet import CertificationRouter

    if (args.socket is None) == (args.tcp is None):
        print("error: pass exactly one of SOCKET or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    if not args.backends:
        print("error: pass at least one --backend ADDRESS", file=sys.stderr)
        return 2
    router = CertificationRouter(
        args.backends,
        tcp=args.tcp,
        socket_path=args.socket,
        replicate=not args.no_replicate,
        health_interval=args.health_interval,
        request_timeout=args.request_timeout,
    )
    print(
        f"routing certifications on {router.address} across "
        f"{len(args.backends)} backend(s): {', '.join(args.backends)}"
    )
    print("press Ctrl-C or send SIGTERM to stop")
    router.serve_forever()
    print("router stopped")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    if args.connect:
        from repro.service import CertificationClient

        with CertificationClient(args.connect) as client:
            payload = client.metrics(format=args.format)
        if args.format == "prometheus":
            text = str(payload.get("prometheus", ""))
        else:
            text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        registry = telemetry_metrics.get_registry()
        if args.format == "prometheus":
            text = registry.to_prometheus()
        else:
            payload = {
                "metrics_version": METRICS_VERSION,
                "format": args.format,
                "metrics": registry.snapshot(),
            }
            text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.json:
        Path(args.json).write_text(text + "\n", encoding="utf-8")
        print(f"[metrics written to {args.json}]", file=sys.stderr)
    return 0


def _command_top(args: argparse.Namespace) -> int:
    """The refreshing dashboard loop: snapshot, render, clear, repeat."""
    from repro.telemetry import dashboard

    client = None
    if args.connect:
        from repro.service import CertificationClient

        client = CertificationClient(args.connect)
        source = f"daemon at {args.connect}"
    else:
        source = f"local process {os.getpid()}"
    previous = None
    refreshes = 0
    try:
        while True:
            if client is not None:
                snapshot = client.metrics()["metrics"]
            else:
                snapshot = telemetry_metrics.get_registry().snapshot()
            frame = dashboard.render_dashboard(
                snapshot,
                previous,
                interval=args.interval if previous is not None else None,
                source=source,
            )
            if not args.no_clear:
                # ANSI clear-screen + home; the frame repaints in place.
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            previous = snapshot
            refreshes += 1
            if args.iterations and refreshes >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    finally:
        if client is not None:
            client.close()


def _command_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import dashboard

    if args.connect:
        from repro.service import CertificationClient
        from repro.service.protocol import RemoteError

        try:
            with CertificationClient(args.connect) as client:
                payload = client.trace(args.request_id)
        except RemoteError as error:
            print(f"error: {error.message}", file=sys.stderr)
            return 2
        print(dashboard.render_trace(payload["trace"]))
        return 0
    root = tracing.find_root_by_request(args.request_id)
    if root is None:
        print(
            f"error: no stored trace for request id {args.request_id!r} in "
            "this process; pass --connect SOCKET to query a daemon running "
            "with --trace",
            file=sys.stderr,
        )
        return 2
    print(root.render())
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    rows = compute_table1(config)
    _emit(render_table1(rows), args)
    return 0


def _command_figure6(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    series = compute_figure6(config, datasets=args.datasets)
    _emit(render_figure6(series), args)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    points = compute_performance_figure(args.dataset, config)
    _emit(render_performance_figure(points), args)
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    if args.kind == "domains":
        _emit(render_domain_ablation(compare_domains(args.dataset, config)), args)
    else:
        _emit(render_cprob_ablation(compare_cprob_transformers(args.dataset, config)), args)
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    # Deferred import: the analyzer is pure stdlib but pulls in every rule
    # module, which no other command needs.
    from repro.analysis import (
        all_rules,
        load_baseline,
        run_analysis,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0

    try:
        rules = all_rules(args.rule)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    root = Path.cwd()
    baseline_path = args.baseline
    if baseline_path is None and (root / "analysis_baseline.json").is_file():
        baseline_path = str(root / "analysis_baseline.json")
    baseline = {}
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(Path(baseline_path))
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    report = run_analysis(root, paths=args.paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        target = Path(baseline_path or "analysis_baseline.json")
        write_baseline(target, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.new_findings:
            print(f"{finding.location()}: [{finding.rule}] {finding.message}")
            if finding.hint:
                print(f"    hint: {finding.hint}")
        summary = (
            f"{len(report.new_findings)} finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{report.suppressed_count} suppressed"
        )
        if report.stale_baseline:
            summary += f", {len(report.stale_baseline)} stale baseline entr(y/ies)"
        print(summary)
        for stale in report.stale_baseline:
            print(f"    stale baseline fingerprint: {stale}", file=sys.stderr)
    return 0 if report.ok else 1


_COMMANDS = {
    "datasets": _command_datasets,
    "verify": _command_verify,
    "certify": _command_certify,
    "sweep": _command_sweep,
    "cache": _command_cache,
    "serve": _command_serve,
    "route": _command_route,
    "metrics": _command_metrics,
    "top": _command_top,
    "trace": _command_trace,
    "table1": _command_table1,
    "figure6": _command_figure6,
    "figure": _command_figure,
    "ablation": _command_ablation,
    "analyze": _command_analyze,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if getattr(args, "trace", False) and args.command != "trace":
        tracing.enable_spans(True)
    log_json = getattr(args, "log_json", None)
    if log_json:
        telemetry_events.configure(log_json)
    # Every invocation mints one correlation id: it stamps this process's
    # events and root spans, travels to a daemon in request frames, and
    # reaches pool workers inside task payloads.  Printed when the event log
    # is active so scripts can grep the log for this exact run.
    request_id = telemetry_events.new_request_id()
    with telemetry_events.bind_request(request_id):
        if telemetry_events.configured_path():
            print(f"[request id {request_id}]", file=sys.stderr)
        telemetry_events.emit("cli.command", command=args.command)
        started = time.perf_counter()
        code = _COMMANDS[args.command](args)
        telemetry_events.emit(
            "cli.exit",
            command=args.command,
            seconds=time.perf_counter() - started,
            code=code,
        )
    metrics_path = getattr(args, "metrics_json", None)
    if metrics_path:
        Path(metrics_path).write_text(
            telemetry_metrics.get_registry().snapshot_json(indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"[telemetry snapshot written to {metrics_path}]", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
