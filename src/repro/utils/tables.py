"""Plain-text table rendering used by the experiment reporting code.

The benchmark harness regenerates the paper's tables and figure series as
text so they can be diffed against :file:`EXPERIMENTS.md` without any
plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly (fixed digits, no trailing noise)."""
    if value != value:  # NaN
        return "nan"
    if value == float("inf"):
        return "inf"
    if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


@dataclass
class TextTable:
    """A small monospaced table builder.

    Example
    -------
    >>> table = TextTable(["dataset", "accuracy"])
    >>> table.add_row(["iris", 0.9])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    dataset | accuracy
    --------+---------
    iris    | 0.900
    """

    headers: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    float_digits: int = 3

    def add_row(self, values: Iterable[object]) -> None:
        formatted: List[str] = []
        for value in values:
            if isinstance(value, bool):
                formatted.append("yes" if value else "no")
            elif isinstance(value, float):
                formatted.append(format_float(value, self.float_digits))
            else:
                formatted.append(str(value))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        separator = "-+-".join("-" * widths[i] for i in range(len(self.headers)))
        body = [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in self.rows
        ]
        return "\n".join([header_line, separator, *body])

    def to_csv(self) -> str:
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines)
