"""Small validation helpers shared across the library.

These helpers centralize argument checking so that public entry points can
fail fast with clear error messages instead of propagating confusing NumPy
errors from deep inside the abstract transformers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class ValidationError(ValueError):
    """Raised when a public API argument fails validation."""


def check_positive_int(value: int, name: str, *, allow_zero: bool = False) -> int:
    """Check that ``value`` is a non-negative (or strictly positive) integer.

    Returns the value as a plain ``int`` so that NumPy integer scalars are
    normalized before being stored on dataclasses.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    lower = 0 if allow_zero else 1
    if value < lower:
        bound = "non-negative" if allow_zero else "positive"
        raise ValidationError(f"{name} must be {bound}, got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Check that ``value`` lies in the closed unit interval ``[0, 1]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be within [0, 1], got {value}")
    return value


def check_probability_vector(probabilities: Sequence[float], name: str) -> np.ndarray:
    """Check that ``probabilities`` is a non-negative vector summing to ~1."""
    array = np.asarray(probabilities, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValidationError(f"{name} must be a non-empty 1-D vector")
    if np.any(array < -1e-9):
        raise ValidationError(f"{name} must be non-negative, got {array}")
    total = float(array.sum())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValidationError(f"{name} must sum to 1, got sum={total}")
    return array


def check_index_array(indices: Iterable[int], size: int, name: str) -> np.ndarray:
    """Normalize ``indices`` to a sorted, unique ``int64`` array within range."""
    array = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
    if array.size == 0:
        return np.empty(0, dtype=np.int64)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D sequence of indices")
    array = array.astype(np.int64, copy=False)
    if array.min() < 0 or array.max() >= size:
        raise ValidationError(
            f"{name} contains out-of-range indices for a collection of size {size}"
        )
    array = np.unique(array)
    return array
