"""Deterministic random-number helpers.

Every synthetic dataset generator and every experiment entry point threads an
explicit seed through :func:`make_rng` so that runs are reproducible bit for
bit; no module ever touches NumPy's global random state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators."""
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: Optional[int], *salts: object) -> int:
    """Derive a stable child seed from a base seed and arbitrary hashable salts."""
    base = 0 if seed is None else int(seed)
    digest = base & 0xFFFFFFFF
    for salt in salts:
        digest = (digest * 1000003 + hash(str(salt))) & 0xFFFFFFFF
    return digest
