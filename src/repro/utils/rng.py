"""Deterministic random-number helpers.

Every synthetic dataset generator and every experiment entry point threads an
explicit seed through :func:`make_rng` so that runs are reproducible bit for
bit; no module ever touches NumPy's global random state.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators."""
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: Optional[int], *salts: object) -> int:
    """Derive a stable child seed from a base seed and arbitrary salts.

    Salts are folded in through SHA-256 rather than ``hash()``: Python's
    string hashing is randomized per process (``PYTHONHASHSEED``), which
    would make "deterministic" datasets differ between processes — breaking
    both reproducibility and any content-addressed caching of results
    derived from them.
    """
    base = 0 if seed is None else int(seed)
    digest = base & 0xFFFFFFFF
    for salt in salts:
        salted = int.from_bytes(
            hashlib.sha256(str(salt).encode("utf-8")).digest()[:4], "little"
        )
        digest = (digest * 1000003 + salted) & 0xFFFFFFFF
    return digest
