"""Timing utilities: stopwatches and cooperative time budgets.

The experiment harness mirrors the paper's per-instance timeout (the original
Antidote evaluation uses a one-hour wall-clock limit).  Because the abstract
learners are long-running pure-Python loops, we use a *cooperative* budget:
the learners periodically call :meth:`TimeBudget.check` and abort with
:class:`TimeoutExceeded` when the budget is exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


class TimeoutExceeded(RuntimeError):
    """Raised by :class:`TimeBudget` when the wall-clock budget is exhausted."""


@dataclass
class Stopwatch:
    """A simple wall-clock stopwatch.

    Example
    -------
    >>> watch = Stopwatch().start()
    >>> _ = sum(range(1000))
    >>> watch.elapsed() >= 0.0
    True
    """

    _start: Optional[float] = None
    _elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            return self._elapsed
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def elapsed(self) -> float:
        if self._start is None:
            return self._elapsed
        return self._elapsed + (time.perf_counter() - self._start)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class TimeBudget:
    """A cooperative wall-clock budget.

    Parameters
    ----------
    seconds:
        Budget in seconds.  ``None`` means unlimited.
    """

    seconds: Optional[float] = None
    _deadline: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.seconds is not None:
            if self.seconds <= 0:
                raise ValueError("time budget must be positive or None")
            self._deadline = time.perf_counter() + float(self.seconds)

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        return cls(seconds=None)

    def remaining(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return self._deadline - time.perf_counter()

    def exhausted(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self) -> None:
        """Raise :class:`TimeoutExceeded` if the budget is exhausted."""
        if self.exhausted():
            raise TimeoutExceeded(f"time budget of {self.seconds}s exhausted")
