"""Utility substrate: timing, memory tracking, validation, and reporting helpers."""

from repro.utils.memory import MemoryTracker, peak_memory_bytes
from repro.utils.tables import TextTable, format_float
from repro.utils.timing import Stopwatch, TimeBudget, TimeoutExceeded
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_vector,
    ValidationError,
)

__all__ = [
    "MemoryTracker",
    "peak_memory_bytes",
    "TextTable",
    "format_float",
    "Stopwatch",
    "TimeBudget",
    "TimeoutExceeded",
    "check_fraction",
    "check_positive_int",
    "check_probability_vector",
    "ValidationError",
]
