"""Peak-memory tracking based on :mod:`tracemalloc`.

The paper reports the peak resident memory of the C++ prototype (Figures
7-11).  In this Python reproduction we report the peak *Python heap*
allocation observed while a verification instance runs, measured with
``tracemalloc``.  Absolute numbers are not comparable with the paper's MB
figures, but the qualitative trends (the disjunctive domain's memory grows
quickly with the poisoning amount and tree depth) are preserved.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Optional


def peak_memory_bytes() -> int:
    """Return the current tracemalloc peak, or 0 when tracing is disabled."""
    if not tracemalloc.is_tracing():
        return 0
    _, peak = tracemalloc.get_traced_memory()
    return int(peak)


@dataclass
class MemoryTracker:
    """Context manager measuring the peak Python-heap allocation of a block.

    If tracemalloc is already tracing (e.g. nested trackers), the tracker
    reuses the existing trace and reports the peak delta relative to entry.
    """

    peak_bytes: int = 0
    _started_here: bool = field(default=False, init=False)
    _baseline: int = field(default=0, init=False)

    def __enter__(self) -> "MemoryTracker":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        current, _ = tracemalloc.get_traced_memory()
        self._baseline = current
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info: object) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(0, int(peak) - int(self._baseline))
        if self._started_here:
            tracemalloc.stop()

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


@dataclass
class MemoryBudget:
    """A cooperative memory budget expressed in bytes.

    The disjunctive learner checks the budget as its set of disjuncts grows
    and aborts with :class:`MemoryError` when the configured limit would be
    exceeded, mirroring the out-of-memory failures reported in the paper.
    """

    limit_bytes: Optional[int] = None

    def check(self, currently_held: int) -> None:
        if self.limit_bytes is not None and currently_held > self.limit_bytes:
            raise MemoryError(
                f"memory budget of {self.limit_bytes} bytes exceeded "
                f"(holding ~{currently_held} bytes)"
            )
