"""Client for the certification service: the engine surface, remoted.

:class:`CertificationClient` connects to a :class:`~repro.service.server.CertificationServer`
socket and exposes the same verbs as a local
:class:`~repro.api.CertificationEngine` bound to a
:class:`~repro.runtime.CertificationRuntime` — ``verify`` / ``certify_batch``
/ ``certify_stream`` / ``certify_point`` / ``max_certified`` /
``pareto_frontier`` / ``pareto_sweep`` — plus the service-management verbs
(``cache_stats``, ``cache_gc``, ``server_stats``, ``ping``, ``shutdown``).
Results decode into the same types the in-process API returns
(:class:`~repro.verify.result.VerificationResult`,
:class:`~repro.api.report.CertificationReport`,
:class:`~repro.runtime.BudgetSweepOutcome`,
:class:`~repro.runtime.ParetoOutcome`), so callers can swap a local engine
for a remote one without touching downstream code.

The engine configuration (depth, domain, timeout, …) is fixed per client and
sent with every request; the server keeps one warm engine per distinct
configuration.  Datasets can be passed as :class:`~repro.core.dataset.Dataset`
objects (shipped inline) or as registry references
(``{"name": "iris", "scale": 0.3, "seed": 0}`` — a few bytes on the wire,
resolved server-side).

One client owns one connection and serializes its requests on it; use one
client per thread for concurrent traffic (connections are cheap — the
expensive state lives server-side).  The connection is a Unix-domain socket
(same host) or TCP (``host:port`` — fleet serving, see :mod:`repro.fleet`);
the address form picks the transport.
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path
from typing import Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.report import CertificationReport
from repro.api.request import CertificationRequest, ModelLike, as_perturbation_model
from repro.core.dataset import Dataset
from repro.poisoning.models import PerturbationModel
from repro.runtime.runtime import BudgetSweepOutcome, ParetoOutcome
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    dataset_to_wire,
    encode_frame,
    engine_config_to_wire,
    format_address,
    model_to_wire,
    parse_address,
    read_frame,
)
from repro.telemetry import events
from repro.verify.result import VerificationResult

#: Anything accepted where a dataset is expected: a Dataset (sent inline) or
#: a registry reference mapping (``{"name": ..., "scale": ..., "seed": ...}``).
DatasetLike = Union[Dataset, Mapping]


def wait_for_server(
    socket_path: Union[str, Path], *, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a server answers a ping on ``socket_path`` (or raise).

    The bring-up helper for scripts that fork a daemon and immediately
    connect: retries until the socket exists *and* completes a hello/ping
    exchange, so a half-bound server never races the first real request.
    Accepts Unix-socket paths and ``host:port`` TCP addresses alike.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with CertificationClient(socket_path, connect_retries=0) as client:
                client.ping()
                return
        except (OSError, ProtocolError, RemoteError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError(
        f"no certification server answered on {socket_path} within {timeout}s"
        + (f" (last error: {last_error})" if last_error else "")
    )


class CertificationClient:
    """Certify against a remote warm runtime over a Unix or TCP socket.

    ``socket_path`` is a filesystem path (Unix-domain socket) or a
    ``host:port`` / ``tcp://host:port`` address (see
    :func:`~repro.service.protocol.parse_address`).  Accepts the same
    engine-configuration keywords as
    :class:`~repro.api.CertificationEngine` (``max_depth``, ``domain``,
    ``cprob_method``, ``timeout_seconds``, ``max_disjuncts``, ``impurity``);
    they select (or create) the matching warm engine server-side.

    ``request_timeout`` bounds every request/response round trip after the
    handshake (certification calls can legitimately take minutes, so the
    default is unbounded).  On expiry the client raises
    :class:`~repro.service.protocol.RequestTimeoutError` and marks itself
    ``broken`` — the response may still be in flight, so the connection
    cannot be reused.  ``connect_retries`` retries refused/absent endpoints
    with exponential backoff so a restarting fleet does not fail fast-path
    callers.
    """

    def __init__(
        self,
        socket_path: Union[str, Path],
        *,
        connect_timeout: float = 10.0,
        connect_retries: int = 3,
        request_timeout: Optional[float] = None,
        **engine_config: object,
    ) -> None:
        family, target = parse_address(socket_path)
        self.address = format_address(socket_path)
        self.socket_path: Optional[Path] = (
            Path(target) if family == "unix" else None  # type: ignore[arg-type]
        )
        self._engine_config = engine_config_to_wire(**engine_config)
        self._request_timeout = request_timeout
        self._lock = threading.Lock()
        self._next_id = 0
        self._broken = False
        self._sock = self._connect(family, target, connect_timeout, connect_retries)
        # The connect timeout keeps guarding the hello round trip; the
        # per-request timeout (if any) takes over once the handshake is done.
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")
        try:
            self.server_info = self._call("hello", {"protocol": PROTOCOL_VERSION})
        except BaseException:
            # A failed handshake (version mismatch, non-repro listener) must
            # not leak the connected socket — retry loops like
            # wait_for_server would exhaust the fd limit otherwise.
            self.close()
            raise
        self._sock.settimeout(request_timeout)

    @staticmethod
    def _connect(
        family: str,
        target: object,
        connect_timeout: float,
        connect_retries: int,
    ) -> socket.socket:
        """Connect with exponential backoff on refused/absent endpoints.

        Only ``ConnectionRefusedError`` and ``FileNotFoundError`` retry —
        both mean "the server is not (yet) there", the transient state during
        a fleet restart.  Every other ``OSError`` (permission, unreachable
        network, …) propagates immediately.  Each attempt uses a fresh
        socket; a failed ``connect`` leaves the old one unusable.
        """
        backoff = 0.05
        attempt = 0
        while True:
            if family == "tcp":
                host, port = target  # type: ignore[misc]
                sock = socket.socket(socket.AF_INET6 if ":" in host else socket.AF_INET)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
                endpoint: object = (host, port)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                endpoint = str(target)
            sock.settimeout(connect_timeout)
            try:
                sock.connect(endpoint)  # type: ignore[arg-type]
                return sock
            except (ConnectionRefusedError, FileNotFoundError):
                sock.close()
                attempt += 1
                if attempt > connect_retries:
                    raise
                time.sleep(backoff)
                backoff *= 2
            except OSError:
                sock.close()
                raise

    @property
    def broken(self) -> bool:
        """True once a timeout/protocol fault desynchronized the connection."""
        return self._broken

    # ------------------------------------------------------------- transport
    def _call(self, op: str, params: Optional[dict] = None) -> dict:
        """One request/response round trip (thread-safe, serialized)."""
        started = time.perf_counter()
        with self._lock:
            frame = self._send(op, params)
            response = self._read_frame(op)
        try:
            result = self._unwrap(frame["id"], response)
        except Exception as error:
            if isinstance(error, (OSError, ProtocolError)):
                self._broken = True
            events.emit(
                "client.request",
                op=op,
                seconds=time.perf_counter() - started,
                outcome="error",
                error_kind=events.classify_error(error),
            )
            raise
        events.emit(
            "client.request",
            op=op,
            seconds=time.perf_counter() - started,
            outcome="ok",
        )
        return result

    def _send(self, op: str, params: Optional[dict]) -> dict:
        self._next_id += 1
        frame = {"id": self._next_id, "op": op, "params": params or {}}
        # Protocol minor 1: propagate the thread's correlation id so both
        # sides of the socket log (and trace) under one request id.
        rid = events.current_request_id()
        if rid is not None:
            frame["rid"] = rid
        self._writer.write(encode_frame(frame))
        self._writer.flush()
        return frame

    def _read_frame(self, op: str) -> Optional[dict]:
        """One frame, with the per-request timeout mapped onto the taxonomy.

        A timed-out read leaves the buffered reader mid-frame, so the client
        marks itself broken: the next caller must reconnect rather than read
        a stale half response.  (``socket.timeout`` is ``TimeoutError`` on
        every supported Python.)
        """
        try:
            return read_frame(self._reader)
        except TimeoutError as error:
            self._broken = True
            raise RequestTimeoutError(
                f"no response to {op!r} from {self.address} within "
                f"{self._request_timeout}s"
            ) from error
        except ProtocolError:
            self._broken = True
            raise

    @staticmethod
    def _unwrap(request_id: int, response: Optional[dict]) -> dict:
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.get("id") not in (None, request_id):
            raise ProtocolError(
                f"response id {response.get('id')} does not match request "
                f"{request_id}"
            )
        if response.get("ok"):
            return response.get("result") or {}
        error = response.get("error") or {}
        raise RemoteError(
            str(error.get("type", "RemoteError")), str(error.get("message", ""))
        )

    def close(self) -> None:
        with self._lock:
            try:
                self._reader.close()
                self._writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock.close()

    def __enter__(self) -> "CertificationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------- raw relay surface
    def call(self, op: str, params: Optional[dict] = None) -> dict:
        """One raw protocol round trip; ``params`` pass through verbatim.

        The fleet router's relay primitive: it forwards request frames
        without decoding datasets or results.  Raises
        :class:`~repro.service.protocol.RemoteError` on server-reported
        failures and transport errors
        (:class:`~repro.service.protocol.RequestTimeoutError`, OSError,
        ProtocolError) on a dead/hung connection.
        """
        return self._call(op, params)

    def stream_frames(self, op: str, params: Optional[dict] = None) -> Iterator[dict]:
        """Yield the raw frames of a streaming op (through the ``end`` frame).

        Frames pass through verbatim — ``result`` frames, the closing ``end``
        frame, and server *error* frames (``ok: false``, yielded rather than
        raised so a relay can forward them).  Transport faults raise and mark
        the client broken.
        """
        with self._lock:
            frame = self._send(op, params)
            drained = False
            try:
                while True:
                    response = self._read_frame(op)
                    if response is None:
                        drained = True
                        self._broken = True
                        raise ProtocolError("server closed the connection mid-stream")
                    if response.get("ok") is False:
                        drained = True
                        yield response
                        return
                    event = response.get("event")
                    if event == "result":
                        yield response
                    elif event == "end":
                        drained = True
                        yield response
                        return
                    else:
                        drained = True
                        raise ProtocolError(f"unexpected stream frame: {response}")
            finally:
                while not drained and not self._broken:
                    try:
                        response = read_frame(self._reader)
                    except (OSError, ProtocolError):
                        self._broken = True
                        break
                    if response is None or response.get("event") == "end" or (
                        response.get("ok") is False
                    ):
                        drained = True

    # ------------------------------------------------------- the engine verbs
    def verify(
        self, request: CertificationRequest, *, n_jobs: int = 1
    ) -> CertificationReport:
        """Solve one certification request on the server; aggregate report."""
        return self.certify_batch(
            request.dataset, request.points, request.model, n_jobs=n_jobs
        )

    def certify_batch(
        self,
        dataset: DatasetLike,
        points: np.ndarray,
        model: ModelLike,
        *,
        n_jobs: int = 1,
    ) -> CertificationReport:
        """Certify every row of ``points`` against ``model`` on the server."""
        result = self._call("certify", self._certify_params(dataset, points, model, n_jobs))
        return CertificationReport.from_dict(result["report"])

    def certify_stream(
        self,
        dataset: DatasetLike,
        points: np.ndarray,
        model: ModelLike,
        *,
        n_jobs: int = 1,
    ) -> Iterator[VerificationResult]:
        """Yield per-point verdicts as the server streams them, in order.

        The connection is held for the duration of the stream; other calls on
        this client block until it is drained (use one client per concurrent
        stream).
        """
        with self._lock:
            frame = self._send(
                "certify_stream", self._certify_params(dataset, points, model, n_jobs)
            )
            drained = False
            try:
                while True:
                    response = self._read_frame("certify_stream")
                    if response is None:
                        drained = True  # nothing left to desynchronize
                        self._broken = True
                        raise ProtocolError("server closed the connection mid-stream")
                    if response.get("ok") is False:
                        drained = True  # an error frame ends the stream
                        self._unwrap(frame["id"], response)
                    event = response.get("event")
                    if event == "result":
                        yield VerificationResult.from_dict(response["result"])
                    elif event == "end":
                        drained = True
                        return
                    else:
                        drained = True
                        raise ProtocolError(f"unexpected stream frame: {response}")
            finally:
                # A consumer that abandons the stream mid-way must not leave
                # unread frames to desynchronize the next request.  A broken
                # connection cannot be resynchronized, so don't try.
                while not drained and not self._broken:
                    try:
                        response = read_frame(self._reader)
                    except (OSError, ProtocolError):
                        self._broken = True
                        break
                    if response is None or response.get("event") == "end" or (
                        response.get("ok") is False
                    ):
                        drained = True

    def certify_point(
        self, dataset: DatasetLike, x: Sequence[float], model: ModelLike
    ) -> VerificationResult:
        """Certify a single test point on the server."""
        report = self.certify_batch(
            dataset, np.asarray(x, dtype=float).reshape(1, -1), model
        )
        return report.results[0]

    def max_certified(
        self,
        dataset: DatasetLike,
        x: Sequence[float],
        *,
        model: Optional[PerturbationModel] = None,
        start: int = 1,
        max_budget: Optional[int] = None,
    ) -> BudgetSweepOutcome:
        """The §6.1 certified-budget search, probed through the server cache."""
        result = self._call(
            "max_certified",
            {
                "engine": self._engine_config,
                "dataset": dataset_to_wire(dataset),
                "point": np.asarray(x, dtype=float).tolist(),
                "model": model_to_wire(model),
                "start": start,
                "max_budget": max_budget,
            },
        )
        return BudgetSweepOutcome(
            max_certified_n=int(result["max_certified_n"]),
            attempts=int(result["attempts"]),
            learner_invocations=int(result["learner_invocations"]),
            trace_steps=int(result.get("trace_steps", 0)),
            trace_reused=int(result.get("trace_reused", 0)),
        )

    def pareto_frontier(
        self,
        dataset: DatasetLike,
        x: Sequence[float],
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> ParetoOutcome:
        """Maximal certified ``(n_remove, n_flip)`` pairs of one point."""
        result = self._call(
            "pareto_frontier",
            {
                "engine": self._engine_config,
                "dataset": dataset_to_wire(dataset),
                "point": np.asarray(x, dtype=float).tolist(),
                "max_remove": max_remove,
                "max_flip": max_flip,
                "model": model_to_wire(model),
            },
        )
        return self._pareto_outcome(result)

    def pareto_sweep(
        self,
        dataset: DatasetLike,
        points: np.ndarray,
        *,
        max_remove: Optional[int] = None,
        max_flip: Optional[int] = None,
        model: Optional[PerturbationModel] = None,
    ) -> List[ParetoOutcome]:
        """Per-point Pareto frontiers for a batch of test points."""
        result = self._call(
            "pareto_sweep",
            {
                "engine": self._engine_config,
                "dataset": dataset_to_wire(dataset),
                "points": np.asarray(points, dtype=float).tolist(),
                "max_remove": max_remove,
                "max_flip": max_flip,
                "model": model_to_wire(model),
            },
        )
        return [self._pareto_outcome(entry) for entry in result["outcomes"]]

    @staticmethod
    def _pareto_outcome(payload: Mapping) -> ParetoOutcome:
        return ParetoOutcome(
            frontier=tuple((int(r), int(f)) for r, f in payload["frontier"]),
            probes=int(payload["probes"]),
            attempted_pairs=int(payload["attempted_pairs"]),
            learner_invocations=int(payload["learner_invocations"]),
        )

    # ------------------------------------------------------------ management
    def ping(self) -> dict:
        return self._call("ping")

    def cache_stats(self) -> dict:
        """Verdict-cache statistics + lifetime runtime counters of the server."""
        return self._call("cache_stats")

    def cache_gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> dict:
        """Run cache eviction server-side; returns the eviction summary."""
        return self._call(
            "cache_gc",
            {"max_bytes": max_bytes, "max_age": max_age, "max_entries": max_entries},
        )

    def server_stats(self) -> dict:
        """Server-level counters: uptime, engines, scheduler coalescing."""
        return self._call("stats")

    def metrics(self, *, format: str = "json") -> dict:
        """The server process's telemetry registry (the ``metrics`` op).

        ``format="json"`` returns ``{"metrics_version", "metrics": {...}}``;
        ``format="prometheus"`` returns the text exposition under a
        ``"prometheus"`` key instead.
        """
        return self._call("metrics", {"format": format})

    def trace(self, request_id: str) -> dict:
        """Fetch a stored span tree by correlation id (the ``trace`` op).

        Requires the server to run with span tracing enabled
        (``repro serve --trace``); raises :class:`RemoteError` when the id is
        unknown or tracing is off.
        """
        return self._call("trace", {"request_id": request_id})

    def shutdown(self) -> dict:
        """Ask the server to stop serving (it answers before stopping)."""
        return self._call("shutdown")

    # --------------------------------------------------------------- helpers
    def _certify_params(
        self, dataset: DatasetLike, points: np.ndarray, model: ModelLike, n_jobs: int
    ) -> dict:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        return {
            "engine": self._engine_config,
            "dataset": dataset_to_wire(dataset),
            "points": points.tolist(),
            "model": model_to_wire(as_perturbation_model(model)),
            "n_jobs": n_jobs,
        }
