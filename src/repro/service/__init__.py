"""`repro.service` — certification served over a socket from a warm runtime.

Every in-process invocation of the engine pays cold-start costs — plan
construction, dataset publication, cache open — that a long-lived daemon
amortizes across requests.  This subsystem is the served face of the
certification API:

* :class:`CertificationServer` — one warm
  :class:`~repro.runtime.CertificationRuntime` (published shared-memory
  datasets, LRU'd engines with warm request plans, an open persistent
  verdict cache) behind a Unix-domain socket speaking the versioned
  JSON-lines protocol of :mod:`repro.service.protocol`;
* :class:`CertificationClient` — the full engine surface (``verify``,
  ``certify_batch``, ``certify_stream``, ``max_certified``,
  ``pareto_frontier``/``pareto_sweep``, cache stats/GC) against a remote
  runtime, decoding into the same result types the local API returns;
* :func:`wait_for_server` — bring-up helper for scripts that fork a daemon
  and immediately connect.

Start a daemon with ``repro-antidote serve /path/to.sock --cache-dir DIR``
and point any CLI certification command at it with ``--connect
/path/to.sock``.  The same daemon serves over TCP with ``serve --tcp
HOST:PORT`` (clients connect with ``--connect HOST:PORT``); :mod:`repro.fleet`
builds the multi-host router on top.  Concurrent clients asking the same question are coalesced
server-side (one learner invocation per distinct in-flight point), and
repeat batches answer from the warm cache with zero learner invocations.
"""

from repro.service.client import CertificationClient, wait_for_server
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    dataset_from_wire,
    dataset_to_wire,
    encode_frame,
    format_address,
    model_from_wire,
    model_to_wire,
    parse_address,
    read_frame,
)
from repro.service.server import CertificationServer

__all__ = [
    "CertificationClient",
    "CertificationServer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_MINOR",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "RequestTimeoutError",
    "dataset_from_wire",
    "dataset_to_wire",
    "encode_frame",
    "format_address",
    "model_from_wire",
    "model_to_wire",
    "parse_address",
    "read_frame",
    "wait_for_server",
]
