"""The certification daemon: one warm runtime serving many clients.

:class:`CertificationServer` binds a Unix-domain socket and serves the
JSON-lines protocol of :mod:`repro.service.protocol` from one long-lived
:class:`~repro.runtime.CertificationRuntime`:

* datasets are decoded **once** (by content) and stay published in the
  shared-memory plane, so repeat requests skip array decoding and workers
  attach zero-copy;
* engines are held in a small LRU keyed by their wire configuration, so
  request plans (the per-(dataset, model) initial abstractions) stay warm
  across requests;
* the persistent verdict cache is open for the server's lifetime — a second
  identical batch from any client answers with **zero** learner invocations;
* concurrent requests flow through each engine's
  :class:`~repro.api.scheduler.CertificationScheduler`, so N clients asking
  the same in-flight question cost one learner invocation per distinct point.

Each client connection is served by its own thread
(:class:`socketserver.ThreadingMixIn`); ``SIGTERM``/``SIGINT`` shut the
server down cleanly (socket file removed, cache committed and closed).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import socketserver
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

import numpy as np

import repro
from repro.api.engine import CertificationEngine
from repro.api.report import SCHEMA_VERSION
from repro.api.request import CertificationRequest
from repro.core.dataset import Dataset
from repro.runtime.fingerprint import fingerprint_dataset
from repro.runtime.runtime import CertificationRuntime
from repro.service.protocol import (
    METRICS_VERSION,
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    ProtocolError,
    dataset_from_wire,
    encode_frame,
    engine_config_from_wire,
    model_from_wire,
    read_frame,
)
from repro.telemetry import events, metrics, tracing
from repro.utils.validation import ValidationError

_OP_REQUESTS = metrics.counter(
    "server_requests_total", "Protocol operations served.", labelnames=("op",)
)
_OP_SECONDS = metrics.histogram(
    "server_op_seconds",
    "Wall seconds per protocol operation (request frame to response frame).",
    labelnames=("op",),
)


class _ThreadingUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    #: Set by :class:`CertificationServer` so handlers can reach it.
    certification_server: "CertificationServer"


class _ClientHandler(socketserver.StreamRequestHandler):
    """One connection: read request frames, dispatch, write response frames."""

    def handle(self) -> None:  # pragma: no cover - exercised via socket tests
        server: CertificationServer = self.server.certification_server
        while True:
            try:
                frame = read_frame(self.rfile)
            except ProtocolError as error:
                self._write({"ok": False, "error": _error_payload(error)})
                return
            if frame is None:
                return
            request_id = frame.get("id")
            op = frame.get("op")
            params = frame.get("params") or {}
            # The optional correlation id (protocol minor 1).  Binding it to
            # this handler thread lets every event, metric merge, and root
            # span under this operation carry the id the client minted.
            rid = frame.get("rid")
            try:
                with events.bind_request(rid if isinstance(rid, str) else None):
                    if op == "certify_stream":
                        self._handle_stream(server, request_id, params)
                    elif op == "shutdown":
                        self._write({"id": request_id, "ok": True, "result": {"stopping": True}})
                        server.request_shutdown()
                        return
                    else:
                        result = server.dispatch(op, params)
                        self._write({"id": request_id, "ok": True, "result": result})
            except BrokenPipeError:
                return
            except Exception as error:  # noqa: BLE001 - protocol boundary
                try:
                    self._write(
                        {"id": request_id, "ok": False, "error": _error_payload(error)}
                    )
                except BrokenPipeError:
                    return

    def _handle_stream(self, server: "CertificationServer", request_id, params) -> None:
        for index, result in server.stream(params):
            self._write(
                {
                    "id": request_id,
                    "event": "result",
                    "index": index,
                    "result": result.to_dict(),
                }
            )
        self._write(
            {
                "id": request_id,
                "event": "end",
                "report": server.last_stream_report(params),
            }
        )

    def _write(self, payload: dict) -> None:
        self.wfile.write(encode_frame(payload))
        self.wfile.flush()


def _error_payload(error: BaseException) -> dict:
    return {"type": type(error).__name__, "message": str(error)}


class CertificationServer:
    """Serve certification requests over a Unix socket from a warm runtime.

    Parameters
    ----------
    socket_path:
        Filesystem path of the Unix-domain socket to bind.  A stale socket
        file (left by a killed server) is replaced; a *live* one raises.
    cache_dir:
        Directory of the persistent verdict cache.  ``None`` creates an
        ephemeral cache for the server's lifetime — warm-cache semantics
        still hold across requests, but verdicts die with the server.
    shared_memory:
        Whether pool workers attach datasets from shared memory.
    max_engines / max_datasets:
        Bounds of the engine-configuration and decoded-dataset LRUs.
    """

    def __init__(
        self,
        socket_path: Union[str, Path],
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        shared_memory: bool = True,
        max_engines: int = 8,
        max_datasets: int = 16,
    ) -> None:
        self.socket_path = Path(socket_path)
        self._ephemeral_cache: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._ephemeral_cache = tempfile.TemporaryDirectory(prefix="repro-serve-")
            cache_dir = self._ephemeral_cache.name
        self.runtime = CertificationRuntime(cache_dir, shared_memory=shared_memory)
        self.max_engines = max_engines
        self.max_datasets = max_datasets
        self._engines: "OrderedDict[tuple, CertificationEngine]" = OrderedDict()
        self._datasets: "OrderedDict[str, Dataset]" = OrderedDict()
        self._lock = threading.Lock()
        self._server: Optional[_ThreadingUnixServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        # Monotonic, not wall clock: uptime must never go negative or jump
        # when NTP steps the system clock.
        self._started_at = time.monotonic()
        self.requests_served = 0
        # Operations currently executing on handler threads.  close() drains
        # this before closing the cache: handler threads are daemonic (an
        # idle client parked in readline must not block shutdown), so the
        # socketserver machinery alone cannot tell us when in-flight *work*
        # — which may be mid-cache-write — has finished.
        self._active_ops = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind the socket and serve on a background thread (for embedding)."""
        self._bind()
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._serve_thread = thread

    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Bind the socket and serve until :meth:`request_shutdown` (CLI mode)."""
        self._bind()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._signal_shutdown)
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def _bind(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._remove_stale_socket()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        server = _ThreadingUnixServer(str(self.socket_path), _ClientHandler)
        server.certification_server = self
        self._server = server
        self._started_at = time.monotonic()

    def _remove_stale_socket(self) -> None:
        if not self.socket_path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(str(self.socket_path))
        except OSError:
            # Nothing listening: a leftover from a killed server; reclaim it.
            self.socket_path.unlink(missing_ok=True)
        else:
            probe.close()
            raise RuntimeError(
                f"another server is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    def _signal_shutdown(self, signum, frame) -> None:  # pragma: no cover - signals
        del frame
        self.request_shutdown()

    def request_shutdown(self) -> None:
        """Stop serving (idempotent; safe to call from handler threads/signals).

        ``BaseServer.shutdown`` blocks until the serve loop exits, so it must
        run on a thread that is *not* the serve loop (nor a signal handler
        interrupting it).
        """
        server = self._server
        if server is None:
            return
        threading.Thread(target=server.shutdown, daemon=True).start()

    #: How long close() waits for in-flight operations before closing the
    #: cache underneath them anyway (they then fail with an error frame).
    DRAIN_TIMEOUT_SECONDS = 10.0

    def close(self) -> None:
        """Tear down: stop serving, drain in-flight work, close the cache."""
        server, self._server = self._server, None
        if server is not None:
            if self._serve_thread is not None:
                # Background mode: the serve loop is still running; stop it.
                # (Foreground serve_forever reaches close() only after its
                # loop has already exited, where shutdown() could deadlock.)
                server.shutdown()
            server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        self.socket_path.unlink(missing_ok=True)
        # Wait for handler threads that are mid-operation (possibly writing
        # verdicts) before pulling the cache out from under them; idle
        # connections hold no operation and do not delay shutdown.
        deadline = time.monotonic() + self.DRAIN_TIMEOUT_SECONDS
        while time.monotonic() < deadline:
            with self._lock:
                if self._active_ops == 0:
                    break
            time.sleep(0.02)
        if self.runtime.cache is not None:
            self.runtime.cache.close()
        if self._ephemeral_cache is not None:
            self._ephemeral_cache.cleanup()
            self._ephemeral_cache = None

    def __enter__(self) -> "CertificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def dispatch(self, op: Optional[str], params: dict) -> dict:
        """Execute one non-streaming operation; returns the result payload."""
        handler = self._OPS.get(op or "")
        if handler is None:
            raise ProtocolError(
                f"unknown operation {op!r}; supported: {sorted(self._OPS)} "
                "+ ['certify_stream', 'shutdown']"
            )
        with self._lock:
            self.requests_served += 1
            self._active_ops += 1
        _OP_REQUESTS.inc(op=op)
        started = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            # The op is the root span on this handler thread: with tracing
            # enabled (`repro serve --trace`), the completed tree lands in the
            # roots ring stamped with the bound request id, where the `trace`
            # op can find it.
            with tracing.span(f"server.{op}"):
                return handler(self, params)
        except BaseException as error:
            failure = error
            raise
        finally:
            elapsed = time.perf_counter() - started
            _OP_SECONDS.observe(elapsed, op=op)
            self._emit_dispatch(op, elapsed, failure)
            with self._lock:
                self._active_ops -= 1

    @staticmethod
    def _emit_dispatch(op: str, elapsed: float, failure: Optional[BaseException]) -> None:
        fields: dict = {"op": op, "seconds": elapsed, "outcome": "ok"}
        if failure is not None:
            fields["outcome"] = "error"
            fields["error_kind"] = events.classify_error(failure)
            fields["error_type"] = type(failure).__name__
        events.emit("server.dispatch", **fields)

    def _op_hello(self, params: dict) -> dict:
        requested = int(params.get("protocol", PROTOCOL_VERSION))
        if requested != PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks protocol {requested}, server speaks "
                f"{PROTOCOL_VERSION}"
            )
        return {
            "protocol": PROTOCOL_VERSION,
            "protocol_minor": PROTOCOL_MINOR,
            "schema_version": SCHEMA_VERSION,
            "server_version": repro.__version__,
            "pid": os.getpid(),
        }

    def _op_ping(self, params: dict) -> dict:
        del params
        return {"pong": True, "uptime_seconds": time.monotonic() - self._started_at}

    def _op_certify(self, params: dict) -> dict:
        engine, request, n_jobs = self._decode_certify(params)
        # engine.verify assembles the report exactly as the in-process API
        # does; runtime batch counters are thread-local, so this handler
        # thread's stream cannot pick up a concurrent request's stats.
        report = engine.verify(request, n_jobs=n_jobs)
        return {"report": report.to_dict()}

    def _op_max_certified(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        x = np.asarray(params["point"], dtype=float)
        outcome = self.runtime.max_certified(
            engine,
            dataset,
            x,
            start=int(params.get("start", 1)),
            max_budget=(
                None if params.get("max_budget") is None else int(params["max_budget"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return {
            "max_certified_n": outcome.max_certified_n,
            "attempts": outcome.attempts,
            "learner_invocations": outcome.learner_invocations,
            "trace_steps": outcome.trace_steps,
            "trace_reused": outcome.trace_reused,
        }

    def _op_pareto_frontier(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        x = np.asarray(params["point"], dtype=float)
        outcome = self.runtime.pareto_frontier(
            engine,
            dataset,
            x,
            max_remove=(
                None if params.get("max_remove") is None else int(params["max_remove"])
            ),
            max_flip=(
                None if params.get("max_flip") is None else int(params["max_flip"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return outcome.to_dict()

    def _op_pareto_sweep(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        points = np.asarray(params["points"], dtype=float)
        outcomes = self.runtime.pareto_sweep(
            engine,
            dataset,
            points,
            max_remove=(
                None if params.get("max_remove") is None else int(params["max_remove"])
            ),
            max_flip=(
                None if params.get("max_flip") is None else int(params["max_flip"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return {"outcomes": [outcome.to_dict() for outcome in outcomes]}

    def _op_cache_stats(self, params: dict) -> dict:
        del params
        cache = self.runtime.cache
        return {
            "cache": None if cache is None else cache.stats(),
            "runtime": self.runtime.stats_snapshot(),
        }

    def _op_cache_gc(self, params: dict) -> dict:
        cache = self.runtime.cache
        if cache is None:  # pragma: no cover - servers always hold a cache
            raise ValidationError("this server has no persistent cache to collect")
        return cache.gc(
            max_bytes=(
                None if params.get("max_bytes") is None else int(params["max_bytes"])
            ),
            max_age=(
                None if params.get("max_age") is None else float(params["max_age"])
            ),
            max_entries=(
                None if params.get("max_entries") is None else int(params["max_entries"])
            ),
        )

    def _op_stats(self, params: dict) -> dict:
        del params
        with self._lock:
            engines = [
                {
                    "config": dict(key),
                    "scheduler": engine.scheduler.stats_snapshot(),
                }
                for key, engine in self._engines.items()
            ]
            requests_served = self.requests_served
            datasets_resident = len(self._datasets)
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests_served": requests_served,
            "datasets_resident": datasets_resident,
            "runtime": self.runtime.stats_snapshot(),
            "engines": engines,
            "metrics": metrics.get_registry().snapshot(),
        }

    def _op_metrics(self, params: dict) -> dict:
        """The versioned telemetry op: the server process's metrics registry.

        ``format="json"`` (default) returns the structured snapshot;
        ``format="prometheus"`` returns the text exposition, which the CLI's
        ``repro metrics --connect`` relays verbatim so a scrape sidecar needs
        no knowledge of the snapshot schema.
        """
        fmt = str(params.get("format", "json"))
        registry = metrics.get_registry()
        payload = {"metrics_version": METRICS_VERSION, "format": fmt}
        if fmt == "prometheus":
            payload["prometheus"] = registry.to_prometheus()
        elif fmt == "json":
            payload["metrics"] = registry.snapshot()
        else:
            raise ProtocolError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )
        return payload

    def _op_trace(self, params: dict) -> dict:
        """Fetch a stored span tree from the completed-roots ring by request id.

        The remote half of ``repro trace REQUEST_ID``: the tree is retained
        only if the server runs with span tracing enabled and the request was
        recent enough to still be in the bounded ring.
        """
        request_id = str(params.get("request_id") or "")
        if not request_id:
            raise ValidationError("trace requests must carry a request_id")
        root = tracing.find_root_by_request(request_id)
        if root is not None:
            return {"request_id": request_id, "trace": root.to_dict()}
        if not tracing.spans_enabled():
            raise ValidationError(
                "span tracing is disabled on this server; restart it with "
                "`repro serve --trace` (or REPRO_TELEMETRY_SPANS=1) to retain "
                "request traces"
            )
        raise ValidationError(
            f"no stored trace for request id {request_id!r} (traces are kept "
            "in a bounded ring; only recent requests are retrievable)"
        )

    _OPS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "certify": _op_certify,
        "max_certified": _op_max_certified,
        "pareto_frontier": _op_pareto_frontier,
        "pareto_sweep": _op_pareto_sweep,
        "cache_stats": _op_cache_stats,
        "cache_gc": _op_cache_gc,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "trace": _op_trace,
    }

    # ------------------------------------------------------------- streaming
    def stream(self, params: dict):
        """Yield ``(index, result)`` pairs for a ``certify_stream`` request."""
        engine, request, n_jobs = self._decode_certify(params)
        with self._lock:
            self.requests_served += 1
            self._active_ops += 1
        _OP_REQUESTS.inc(op="certify_stream")
        started = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            with tracing.span("server.certify_stream"):
                for index, result in enumerate(
                    engine.certify_stream(request, n_jobs=n_jobs)
                ):
                    yield index, result
        except BaseException as error:
            failure = error
            raise
        finally:
            elapsed = time.perf_counter() - started
            _OP_SECONDS.observe(elapsed, op="certify_stream")
            self._emit_dispatch("certify_stream", elapsed, failure)
            with self._lock:
                self._active_ops -= 1

    def last_stream_report(self, params: dict) -> dict:
        """The closing frame of a stream: aggregate counters, no per-point rows."""
        del params
        return {
            "schema_version": SCHEMA_VERSION,
            "runtime_stats": self._batch_stats(),
        }

    # --------------------------------------------------------------- helpers
    def _decode_certify(self, params: dict):
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        model = model_from_wire(params.get("model"))
        if model is None:
            raise ProtocolError("certify requests must carry a threat model")
        points = np.asarray(params["points"], dtype=float)
        request = CertificationRequest(dataset, points, model)
        return engine, request, max(1, int(params.get("n_jobs", 1)))

    def _batch_stats(self) -> Optional[dict]:
        stats = self.runtime.last_batch_stats
        return None if stats is None else stats.snapshot()

    def engine_for(self, config: dict) -> CertificationEngine:
        """The warm engine for one wire configuration (small LRU).

        All engines share the server's runtime, so they share the verdict
        cache and the dataset plane; what the LRU keeps warm per entry is the
        request-plan cache and the in-flight scheduler.
        """
        key = tuple(sorted(config.items()))
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine
        engine = CertificationEngine(runtime=self.runtime, **config)
        with self._lock:
            existing = self._engines.get(key)
            if existing is not None:
                return existing
            if len(self._engines) >= self.max_engines:
                self._engines.popitem(last=False)
            self._engines[key] = engine
        return engine

    def dataset_for(self, payload: dict) -> Dataset:
        """Decode a dataset wire form once and keep it resident (small LRU)."""
        key = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        with self._lock:
            dataset = self._datasets.get(key)
            if dataset is not None:
                self._datasets.move_to_end(key)
                return dataset
        dataset = dataset_from_wire(payload)
        # Fingerprint now (memoized on the instance) so every later request
        # against this dataset starts from a warm identity.
        fingerprint_dataset(dataset)
        with self._lock:
            if len(self._datasets) >= self.max_datasets:
                self._datasets.popitem(last=False)
            self._datasets[key] = dataset
        return dataset
