"""The certification daemon: one warm runtime serving many clients.

:class:`CertificationServer` binds a Unix-domain socket (or, with
``tcp="HOST:PORT"``, a TCP socket — the fleet transport) and serves the
JSON-lines protocol of :mod:`repro.service.protocol` from one long-lived
:class:`~repro.runtime.CertificationRuntime`:

* datasets are decoded **once** (by content) and stay published in the
  shared-memory plane, so repeat requests skip array decoding and workers
  attach zero-copy;
* engines are held in a small LRU keyed by their wire configuration, so
  request plans (the per-(dataset, model) initial abstractions) stay warm
  across requests;
* the persistent verdict cache is open for the server's lifetime — a second
  identical batch from any client answers with **zero** learner invocations;
* concurrent requests flow through each engine's
  :class:`~repro.api.scheduler.CertificationScheduler`, so N clients asking
  the same in-flight question cost one learner invocation per distinct point.

Each client connection is served by its own thread
(:class:`socketserver.ThreadingMixIn`); ``SIGTERM``/``SIGINT`` shut the
server down cleanly (socket file removed, cache committed and closed).

Two fleet-serving extensions (protocol minor 2, see :mod:`repro.fleet`):

* ``batch_window > 0`` coalesces concurrent single-point ``certify`` frames
  for the same (dataset, model, engine) into pooled execution windows
  through the engine's scheduler — a storm of tiny requests certifies as
  one batch;
* the ``cache_probe`` / ``cache_fetch`` / ``cache_ingest`` ops expose the
  verdict cache's content-addressed rows so a router can replicate
  dominance-derivable verdicts between shard servers.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import socketserver
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

import numpy as np

import repro
from repro.api.engine import CertificationEngine
from repro.api.report import SCHEMA_VERSION
from repro.api.request import CertificationRequest
from repro.core.dataset import Dataset
from repro.poisoning.models import resolve_model_classes
from repro.runtime.fingerprint import (
    engine_cache_key,
    fingerprint_dataset,
    model_cache_key,
    monotone_in_budget,
    point_digest,
)
from repro.runtime.runtime import CertificationRuntime
from repro.service.protocol import (
    METRICS_VERSION,
    PROTOCOL_MINOR,
    PROTOCOL_VERSION,
    ProtocolError,
    budget_from_wire,
    budget_to_wire,
    dataset_from_wire,
    encode_frame,
    engine_config_from_wire,
    format_address,
    model_from_wire,
    parse_address,
    read_frame,
)
from repro.telemetry import events, metrics, tracing
from repro.utils.validation import ValidationError
from repro.verify.result import VerificationResult

_OP_REQUESTS = metrics.counter(
    "server_requests_total", "Protocol operations served.", labelnames=("op",)
)
_OP_SECONDS = metrics.histogram(
    "server_op_seconds",
    "Wall seconds per protocol operation (request frame to response frame).",
    labelnames=("op",),
)


class _ThreadingUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    #: Set by :class:`CertificationServer` so handlers can reach it.
    certification_server: "CertificationServer"


class _ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    """The fleet transport: the same handler over TCP.

    ``allow_reuse_address`` lets a restarted backend rebind its port while
    old connections linger in TIME_WAIT — the normal state right after a
    failover.
    """

    daemon_threads = True
    allow_reuse_address = True
    certification_server: "CertificationServer"


class _ClientHandler(socketserver.StreamRequestHandler):
    """One connection: read request frames, dispatch, write response frames."""

    def setup(self) -> None:
        # TCP connections get keepalive (detect silently-dead routers/clients
        # under long certifications) and no Nagle delay (frames are small and
        # latency-sensitive); both are meaningless on AF_UNIX.
        if self.request.family in (socket.AF_INET, socket.AF_INET6):
            self.request.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        super().setup()

    def handle(self) -> None:  # pragma: no cover - exercised via socket tests
        server: CertificationServer = self.server.certification_server
        while True:
            try:
                frame = read_frame(self.rfile)
            except ProtocolError as error:
                self._write({"ok": False, "error": _error_payload(error)})
                return
            if frame is None:
                return
            request_id = frame.get("id")
            op = frame.get("op")
            params = frame.get("params") or {}
            # The optional correlation id (protocol minor 1).  Binding it to
            # this handler thread lets every event, metric merge, and root
            # span under this operation carry the id the client minted.
            rid = frame.get("rid")
            try:
                with events.bind_request(rid if isinstance(rid, str) else None):
                    if op == "certify_stream":
                        self._handle_stream(server, request_id, params)
                    elif op == "shutdown":
                        self._write({"id": request_id, "ok": True, "result": {"stopping": True}})
                        server.request_shutdown()
                        return
                    else:
                        result = server.dispatch(op, params)
                        self._write({"id": request_id, "ok": True, "result": result})
            except BrokenPipeError:
                return
            except Exception as error:  # noqa: BLE001 - protocol boundary
                try:
                    self._write(
                        {"id": request_id, "ok": False, "error": _error_payload(error)}
                    )
                except BrokenPipeError:
                    return

    def _handle_stream(self, server: "CertificationServer", request_id, params) -> None:
        for index, result in server.stream(params):
            self._write(
                {
                    "id": request_id,
                    "event": "result",
                    "index": index,
                    "result": result.to_dict(),
                }
            )
        self._write(
            {
                "id": request_id,
                "event": "end",
                "report": server.last_stream_report(params),
            }
        )

    def _write(self, payload: dict) -> None:
        self.wfile.write(encode_frame(payload))
        self.wfile.flush()


def _error_payload(error: BaseException) -> dict:
    return {"type": type(error).__name__, "message": str(error)}


class CertificationServer:
    """Serve certification requests over a Unix or TCP socket from a warm runtime.

    Parameters
    ----------
    socket_path:
        Filesystem path of the Unix-domain socket to bind.  A stale socket
        file (left by a killed server) is replaced; a *live* one raises.
        ``None`` requires ``tcp``.
    tcp:
        ``"HOST:PORT"`` TCP address to bind instead of a Unix socket (the
        fleet transport; port 0 picks a free port, readable from
        :attr:`tcp_address` after :meth:`start`).  Mutually exclusive with
        ``socket_path``.
    cache_dir:
        Directory of the persistent verdict cache.  ``None`` creates an
        ephemeral cache for the server's lifetime — warm-cache semantics
        still hold across requests, but verdicts die with the server.
    shared_memory:
        Whether pool workers attach datasets from shared memory.
    max_engines / max_datasets:
        Bounds of the engine-configuration and decoded-dataset LRUs.
    batch_window:
        Seconds to hold a concurrent single-point ``certify`` frame open for
        coalescing with others of the same (dataset, model, engine) before
        flushing the pooled window through the scheduler.  ``0`` (default)
        disables micro-batching.
    """

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]] = None,
        *,
        tcp: Optional[Union[str, Tuple[str, int]]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        shared_memory: bool = True,
        max_engines: int = 8,
        max_datasets: int = 16,
        batch_window: float = 0.0,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValidationError(
                "exactly one of socket_path (Unix transport) and tcp "
                "(fleet transport) must be given"
            )
        self.socket_path = None if socket_path is None else Path(socket_path)
        self._tcp_target: Optional[Tuple[str, int]] = None
        if tcp is not None:
            if isinstance(tcp, tuple):
                self._tcp_target = (str(tcp[0]), int(tcp[1]))
            else:
                family, parsed = parse_address(f"tcp://{tcp}" if "://" not in str(tcp) else str(tcp))
                if family != "tcp":
                    raise ValidationError(f"malformed tcp address {tcp!r}")
                self._tcp_target = parsed  # type: ignore[assignment]
        #: The bound TCP (host, port) — set at bind time (port 0 resolves).
        self.tcp_address: Optional[Tuple[str, int]] = None
        #: Stable identity this server reports in ``hello`` (protocol minor
        #: 2): its bound address — what a router uses as the ring node name.
        self.backend_id: Optional[str] = (
            None if self.socket_path is None else str(self.socket_path)
        )
        self.batch_window = float(batch_window)
        self._batcher = None
        if self.batch_window > 0:
            # Deferred import: repro.fleet is layered above repro.service.
            from repro.fleet.batching import MicroBatcher

            self._batcher = MicroBatcher(window_seconds=self.batch_window)
        self._ephemeral_cache: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._ephemeral_cache = tempfile.TemporaryDirectory(prefix="repro-serve-")
            cache_dir = self._ephemeral_cache.name
        self.runtime = CertificationRuntime(cache_dir, shared_memory=shared_memory)
        self.max_engines = max_engines
        self.max_datasets = max_datasets
        self._engines: "OrderedDict[tuple, CertificationEngine]" = OrderedDict()
        self._datasets: "OrderedDict[str, Dataset]" = OrderedDict()
        self._lock = threading.Lock()
        self._server: Optional[
            Union[_ThreadingUnixServer, _ThreadingTCPServer]
        ] = None
        self._serve_thread: Optional[threading.Thread] = None
        # Monotonic, not wall clock: uptime must never go negative or jump
        # when NTP steps the system clock.
        self._started_at = time.monotonic()
        self.requests_served = 0
        # Operations currently executing on handler threads.  close() drains
        # this before closing the cache: handler threads are daemonic (an
        # idle client parked in readline must not block shutdown), so the
        # socketserver machinery alone cannot tell us when in-flight *work*
        # — which may be mid-cache-write — has finished.
        self._active_ops = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind the socket and serve on a background thread (for embedding)."""
        self._bind()
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        self._serve_thread = thread

    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Bind the socket and serve until :meth:`request_shutdown` (CLI mode)."""
        self._bind()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._signal_shutdown)
        try:
            self._server.serve_forever()
        finally:
            self.close()

    @property
    def address(self) -> str:
        """The connectable address: the socket path, or ``host:port`` once bound."""
        if self.socket_path is not None:
            return str(self.socket_path)
        if self.tcp_address is not None:
            return format_address(self.tcp_address)
        return format_address(self._tcp_target)  # type: ignore[arg-type]

    def _bind(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        server: Union[_ThreadingUnixServer, _ThreadingTCPServer]
        if self._tcp_target is not None:
            server = _ThreadingTCPServer(self._tcp_target, _ClientHandler)
            host, port = server.server_address[:2]
            self.tcp_address = (str(host), int(port))
            self.backend_id = format_address(self.tcp_address)
        else:
            assert self.socket_path is not None
            self._remove_stale_socket()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            server = _ThreadingUnixServer(str(self.socket_path), _ClientHandler)
        server.certification_server = self
        self._server = server
        self._started_at = time.monotonic()

    def _remove_stale_socket(self) -> None:
        if self.socket_path is None or not self.socket_path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(str(self.socket_path))
        except OSError:
            # Nothing listening: a leftover from a killed server; reclaim it.
            self.socket_path.unlink(missing_ok=True)
        else:
            probe.close()
            raise RuntimeError(
                f"another server is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    def _signal_shutdown(self, signum, frame) -> None:  # pragma: no cover - signals
        del frame
        self.request_shutdown()

    def request_shutdown(self) -> None:
        """Stop serving (idempotent; safe to call from handler threads/signals).

        ``BaseServer.shutdown`` blocks until the serve loop exits, so it must
        run on a thread that is *not* the serve loop (nor a signal handler
        interrupting it).
        """
        server = self._server
        if server is None:
            return
        threading.Thread(target=server.shutdown, daemon=True).start()

    #: How long close() waits for in-flight operations before closing the
    #: cache underneath them anyway (they then fail with an error frame).
    DRAIN_TIMEOUT_SECONDS = 10.0

    def close(self) -> None:
        """Tear down: stop serving, drain in-flight work, close the cache."""
        server, self._server = self._server, None
        if server is not None:
            if self._serve_thread is not None:
                # Background mode: the serve loop is still running; stop it.
                # (Foreground serve_forever reaches close() only after its
                # loop has already exited, where shutdown() could deadlock.)
                server.shutdown()
            server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)
        # Wait for handler threads that are mid-operation (possibly writing
        # verdicts) before pulling the cache out from under them; idle
        # connections hold no operation and do not delay shutdown.
        deadline = time.monotonic() + self.DRAIN_TIMEOUT_SECONDS
        while time.monotonic() < deadline:
            with self._lock:
                if self._active_ops == 0:
                    break
            time.sleep(0.02)
        if self.runtime.cache is not None:
            self.runtime.cache.close()
        if self._ephemeral_cache is not None:
            self._ephemeral_cache.cleanup()
            self._ephemeral_cache = None

    def __enter__(self) -> "CertificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def dispatch(self, op: Optional[str], params: dict) -> dict:
        """Execute one non-streaming operation; returns the result payload."""
        handler = self._OPS.get(op or "")
        if handler is None:
            raise ProtocolError(
                f"unknown operation {op!r}; supported: {sorted(self._OPS)} "
                "+ ['certify_stream', 'shutdown']"
            )
        with self._lock:
            self.requests_served += 1
            self._active_ops += 1
        _OP_REQUESTS.inc(op=op)
        started = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            # The op is the root span on this handler thread: with tracing
            # enabled (`repro serve --trace`), the completed tree lands in the
            # roots ring stamped with the bound request id, where the `trace`
            # op can find it.
            with tracing.span(f"server.{op}"):
                return handler(self, params)
        except BaseException as error:
            failure = error
            raise
        finally:
            elapsed = time.perf_counter() - started
            _OP_SECONDS.observe(elapsed, op=op)
            self._emit_dispatch(op, elapsed, failure)
            with self._lock:
                self._active_ops -= 1

    @staticmethod
    def _emit_dispatch(op: str, elapsed: float, failure: Optional[BaseException]) -> None:
        fields: dict = {"op": op, "seconds": elapsed, "outcome": "ok"}
        if failure is not None:
            fields["outcome"] = "error"
            fields["error_kind"] = events.classify_error(failure)
            fields["error_type"] = type(failure).__name__
        events.emit("server.dispatch", **fields)

    def _op_hello(self, params: dict) -> dict:
        requested = int(params.get("protocol", PROTOCOL_VERSION))
        if requested != PROTOCOL_VERSION:
            raise ProtocolError(
                f"client speaks protocol {requested}, server speaks "
                f"{PROTOCOL_VERSION}"
            )
        return {
            "protocol": PROTOCOL_VERSION,
            "protocol_minor": PROTOCOL_MINOR,
            "schema_version": SCHEMA_VERSION,
            "server_version": repro.__version__,
            "pid": os.getpid(),
            # Minor 2: the server's bound-address identity, so a router can
            # verify it reached the ring node it aimed for.
            "backend_id": self.backend_id,
        }

    def _op_ping(self, params: dict) -> dict:
        del params
        return {"pong": True, "uptime_seconds": time.monotonic() - self._started_at}

    def _op_certify(self, params: dict) -> dict:
        engine, request, n_jobs = self._decode_certify(params)
        # Single-point frames can coalesce into a pooled window when
        # micro-batching is enabled; the window leader runs them through the
        # scheduler as one batch.
        if self._batcher is not None and len(request.points) == 1:
            report = self._batcher.certify_one(engine, request)
            return {"report": report.to_dict()}
        # engine.verify assembles the report exactly as the in-process API
        # does; runtime batch counters are thread-local, so this handler
        # thread's stream cannot pick up a concurrent request's stats.
        report = engine.verify(request, n_jobs=n_jobs)
        return {"report": report.to_dict()}

    def _op_max_certified(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        x = np.asarray(params["point"], dtype=float)
        outcome = self.runtime.max_certified(
            engine,
            dataset,
            x,
            start=int(params.get("start", 1)),
            max_budget=(
                None if params.get("max_budget") is None else int(params["max_budget"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return {
            "max_certified_n": outcome.max_certified_n,
            "attempts": outcome.attempts,
            "learner_invocations": outcome.learner_invocations,
            "trace_steps": outcome.trace_steps,
            "trace_reused": outcome.trace_reused,
        }

    def _op_pareto_frontier(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        x = np.asarray(params["point"], dtype=float)
        outcome = self.runtime.pareto_frontier(
            engine,
            dataset,
            x,
            max_remove=(
                None if params.get("max_remove") is None else int(params["max_remove"])
            ),
            max_flip=(
                None if params.get("max_flip") is None else int(params["max_flip"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return outcome.to_dict()

    def _op_pareto_sweep(self, params: dict) -> dict:
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        points = np.asarray(params["points"], dtype=float)
        outcomes = self.runtime.pareto_sweep(
            engine,
            dataset,
            points,
            max_remove=(
                None if params.get("max_remove") is None else int(params["max_remove"])
            ),
            max_flip=(
                None if params.get("max_flip") is None else int(params["max_flip"])
            ),
            model=model_from_wire(params.get("model")),
        )
        return {"outcomes": [outcome.to_dict() for outcome in outcomes]}

    def _op_cache_stats(self, params: dict) -> dict:
        del params
        cache = self.runtime.cache
        return {
            "cache": None if cache is None else cache.stats(),
            "runtime": self.runtime.stats_snapshot(),
        }

    def _op_cache_gc(self, params: dict) -> dict:
        cache = self.runtime.cache
        if cache is None:  # pragma: no cover - servers always hold a cache
            raise ValidationError("this server has no persistent cache to collect")
        return cache.gc(
            max_bytes=(
                None if params.get("max_bytes") is None else int(params["max_bytes"])
            ),
            max_age=(
                None if params.get("max_age") is None else float(params["max_age"])
            ),
            max_entries=(
                None if params.get("max_entries") is None else int(params["max_entries"])
            ),
        )

    # ------------------------------------------------------- cache replication
    # Minor-2 ops: expose the verdict cache's content-addressed rows so a
    # router can replicate dominance-derivable verdicts across shard servers
    # (`repro route --replicate`).  Rows travel *raw* — the verdict exactly as
    # stored, at the budget that produced the proof — and the receiving server
    # re-derives locally through the same budget-monotone lookup it applies to
    # its own rows, so replication can never widen what the cache would claim.

    def _op_cache_probe(self, params: dict) -> dict:
        """The cache identity of a certify-shaped request, plus hit flags.

        The router calls this on the primary shard to learn which points
        would miss, and with which ``(dataset_fp, family, engine_key,
        budget)`` coordinates to ask siblings about.
        """
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        model = model_from_wire(params.get("model"))
        if model is None:
            raise ProtocolError("cache_probe requests must carry a threat model")
        model = resolve_model_classes(model, dataset.n_classes)
        family, budget = model_cache_key(model, len(dataset))
        dataset_fp = fingerprint_dataset(dataset)
        engine_key = engine_cache_key(engine)
        monotone = monotone_in_budget(model)
        points = np.asarray(params["points"], dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        cache = self.runtime.cache
        entries = []
        for row in points:
            digest = point_digest(row)
            hit = None
            if cache is not None:
                hit = cache.lookup(
                    dataset_fp, digest, family, engine_key, budget, monotone=monotone
                )
            entries.append({"digest": digest, "cached": hit is not None})
        return {
            "dataset_fp": dataset_fp,
            "engine_key": engine_key,
            "family": family,
            "budget": budget_to_wire(budget),
            "monotone": monotone,
            "points": entries,
        }

    def _op_cache_fetch(self, params: dict) -> dict:
        """Ship stored verdict rows answering the queried budget (or null).

        Each row carries the verdict *as stored* plus its ``stored_budget``;
        the requester ingests it at that budget and derives locally.
        """
        cache = self.runtime.cache
        if cache is None:  # pragma: no cover - servers always hold a cache
            raise ValidationError("this server has no verdict cache to fetch from")
        dataset_fp = str(params["dataset_fp"])
        family = str(params["family"])
        engine_key = str(params["engine_key"])
        budget = budget_from_wire(params["budget"])
        monotone = bool(params.get("monotone", True))
        rows = []
        for digest in params.get("digests") or ():
            hit = cache.lookup(
                dataset_fp, str(digest), family, engine_key, budget, monotone=monotone
            )
            if hit is None:
                rows.append(None)
            else:
                rows.append(
                    {
                        "digest": str(digest),
                        "kind": hit.kind,
                        "stored_budget": budget_to_wire(hit.stored_budget),
                        "status": hit.result.status.value,
                        "result": hit.result.to_dict(),
                    }
                )
        return {"rows": rows}

    def _op_cache_ingest(self, params: dict) -> dict:
        """Store replicated verdict rows (at their original stored budget)."""
        cache = self.runtime.cache
        if cache is None:  # pragma: no cover - servers always hold a cache
            raise ValidationError("this server has no verdict cache to ingest into")
        dataset_fp = str(params["dataset_fp"])
        family = str(params["family"])
        engine_key = str(params["engine_key"])
        ingested = 0
        for row in params.get("rows") or ():
            if not isinstance(row, Mapping):
                raise ProtocolError("cache_ingest rows must be objects")
            result = VerificationResult.from_dict(dict(row["result"]))
            stored = cache.store(
                dataset_fp,
                str(row["digest"]),
                family,
                engine_key,
                budget_from_wire(row["budget"]),
                result,
            )
            if stored:
                ingested += 1
        return {"ingested": ingested}

    def _op_stats(self, params: dict) -> dict:
        del params
        with self._lock:
            engines = [
                {
                    "config": dict(key),
                    "scheduler": engine.scheduler.stats_snapshot(),
                }
                for key, engine in self._engines.items()
            ]
            requests_served = self.requests_served
            datasets_resident = len(self._datasets)
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests_served": requests_served,
            "datasets_resident": datasets_resident,
            "runtime": self.runtime.stats_snapshot(),
            "engines": engines,
            "metrics": metrics.get_registry().snapshot(),
        }

    def _op_metrics(self, params: dict) -> dict:
        """The versioned telemetry op: the server process's metrics registry.

        ``format="json"`` (default) returns the structured snapshot;
        ``format="prometheus"`` returns the text exposition, which the CLI's
        ``repro metrics --connect`` relays verbatim so a scrape sidecar needs
        no knowledge of the snapshot schema.
        """
        fmt = str(params.get("format", "json"))
        registry = metrics.get_registry()
        payload = {"metrics_version": METRICS_VERSION, "format": fmt}
        if fmt == "prometheus":
            payload["prometheus"] = registry.to_prometheus()
        elif fmt == "json":
            payload["metrics"] = registry.snapshot()
        else:
            raise ProtocolError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )
        return payload

    def _op_trace(self, params: dict) -> dict:
        """Fetch a stored span tree from the completed-roots ring by request id.

        The remote half of ``repro trace REQUEST_ID``: the tree is retained
        only if the server runs with span tracing enabled and the request was
        recent enough to still be in the bounded ring.
        """
        request_id = str(params.get("request_id") or "")
        if not request_id:
            raise ValidationError("trace requests must carry a request_id")
        root = tracing.find_root_by_request(request_id)
        if root is not None:
            return {"request_id": request_id, "trace": root.to_dict()}
        if not tracing.spans_enabled():
            raise ValidationError(
                "span tracing is disabled on this server; restart it with "
                "`repro serve --trace` (or REPRO_TELEMETRY_SPANS=1) to retain "
                "request traces"
            )
        raise ValidationError(
            f"no stored trace for request id {request_id!r} (traces are kept "
            "in a bounded ring; only recent requests are retrievable)"
        )

    _OPS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "certify": _op_certify,
        "max_certified": _op_max_certified,
        "pareto_frontier": _op_pareto_frontier,
        "pareto_sweep": _op_pareto_sweep,
        "cache_stats": _op_cache_stats,
        "cache_gc": _op_cache_gc,
        "cache_probe": _op_cache_probe,
        "cache_fetch": _op_cache_fetch,
        "cache_ingest": _op_cache_ingest,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "trace": _op_trace,
    }

    # ------------------------------------------------------------- streaming
    def stream(self, params: dict):
        """Yield ``(index, result)`` pairs for a ``certify_stream`` request."""
        engine, request, n_jobs = self._decode_certify(params)
        with self._lock:
            self.requests_served += 1
            self._active_ops += 1
        _OP_REQUESTS.inc(op="certify_stream")
        started = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            with tracing.span("server.certify_stream"):
                for index, result in enumerate(
                    engine.certify_stream(request, n_jobs=n_jobs)
                ):
                    yield index, result
        except BaseException as error:
            failure = error
            raise
        finally:
            elapsed = time.perf_counter() - started
            _OP_SECONDS.observe(elapsed, op="certify_stream")
            self._emit_dispatch("certify_stream", elapsed, failure)
            with self._lock:
                self._active_ops -= 1

    def last_stream_report(self, params: dict) -> dict:
        """The closing frame of a stream: aggregate counters, no per-point rows."""
        del params
        return {
            "schema_version": SCHEMA_VERSION,
            "runtime_stats": self._batch_stats(),
        }

    # --------------------------------------------------------------- helpers
    def _decode_certify(self, params: dict):
        engine = self.engine_for(engine_config_from_wire(params.get("engine")))
        dataset = self.dataset_for(params["dataset"])
        model = model_from_wire(params.get("model"))
        if model is None:
            raise ProtocolError("certify requests must carry a threat model")
        points = np.asarray(params["points"], dtype=float)
        request = CertificationRequest(dataset, points, model)
        return engine, request, max(1, int(params.get("n_jobs", 1)))

    def _batch_stats(self) -> Optional[dict]:
        stats = self.runtime.last_batch_stats
        return None if stats is None else stats.snapshot()

    def engine_for(self, config: dict) -> CertificationEngine:
        """The warm engine for one wire configuration (small LRU).

        All engines share the server's runtime, so they share the verdict
        cache and the dataset plane; what the LRU keeps warm per entry is the
        request-plan cache and the in-flight scheduler.
        """
        key = tuple(sorted(config.items()))
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine
        engine = CertificationEngine(runtime=self.runtime, **config)
        with self._lock:
            existing = self._engines.get(key)
            if existing is not None:
                return existing
            if len(self._engines) >= self.max_engines:
                self._engines.popitem(last=False)
            self._engines[key] = engine
        return engine

    def dataset_for(self, payload: dict) -> Dataset:
        """Decode a dataset wire form once and keep it resident (small LRU)."""
        key = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        with self._lock:
            dataset = self._datasets.get(key)
            if dataset is not None:
                self._datasets.move_to_end(key)
                return dataset
        dataset = dataset_from_wire(payload)
        # Fingerprint now (memoized on the instance) so every later request
        # against this dataset starts from a warm identity.
        fingerprint_dataset(dataset)
        with self._lock:
            if len(self._datasets) >= self.max_datasets:
                self._datasets.popitem(last=False)
            self._datasets[key] = dataset
        return dataset
