"""The certification service wire protocol: versioned JSON lines.

One frame is one JSON object terminated by a newline.  The client opens the
conversation with a ``hello`` carrying :data:`PROTOCOL_VERSION`; the server
answers with its own version (and the report :data:`~repro.api.report.SCHEMA_VERSION`
it emits) or rejects the connection — explicit versioning on both layers so a
fleet can roll servers and clients independently.  The protocol is
transport-agnostic: the same frames flow over a Unix-domain socket (one
host) or TCP (``repro serve --tcp HOST:PORT``, see :mod:`repro.fleet` for
the multi-host router built on top); :func:`parse_address` tells the two
apart.

Requests are ``{"id": N, "op": <name>, "params": {...}}``, optionally
carrying a correlation id in ``"rid"`` (minor protocol revision 1): the
server binds it for the duration of the operation so structured log events
(:mod:`repro.telemetry.events`) and stored span trees on both sides of the
socket share one request id.  Servers ignore an absent ``rid``; clients
ignore the minor revision of older servers — the field is additive, so the
major version stays 1.  Most operations
answer with a single ``{"id": N, "ok": true, "result": {...}}`` frame (or
``{"id": N, "ok": false, "error": {"type": ..., "message": ...}}``);
``certify_stream`` answers with a sequence of
``{"id": N, "event": "result", "index": i, "result": {...}}`` frames closed
by ``{"id": N, "event": "end", "report": {...}}``, so consumers see verdicts
incrementally exactly like the in-process stream.

Datasets travel either **by reference** (``{"ref": {"name", "scale",
"seed"}}`` — resolved through the benchmark registry server-side, so only a
few bytes cross the socket) or **inline** (``{"inline": {...}}`` — full
arrays for datasets the server has never seen).  Threat models and engine
configurations have small explicit wire forms; predicate pools are not
representable over the wire.

The ``metrics`` op exposes the server process's telemetry registry
(:mod:`repro.telemetry`).  Its payload carries its own
:data:`METRICS_VERSION` — the snapshot schema can evolve (new metric
families, new labels) without a protocol bump, since additions are
backwards-compatible; the version only moves when existing fields change
meaning.  ``params = {"format": "json" | "prometheus"}``; the Prometheus
form is the standard text exposition, relayed verbatim by
``repro metrics --connect --format prometheus`` for scrape sidecars.

The ``trace`` op (``params = {"request_id": ...}``) looks up a completed
span tree in the server's bounded completed-roots ring by the correlation
id stamped on its root — the remote half of ``repro trace REQUEST_ID``.
The server must run with span tracing enabled (``repro serve --trace``)
for trees to be retained.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.poisoning.models import (
    CompositePoisoningModel,
    FractionalRemovalModel,
    LabelFlipModel,
    PerturbationModel,
    RemovalPoisoningModel,
)

#: Version of the framing + operation vocabulary.  Bumped on incompatible
#: changes; servers reject hellos from a different major version.
PROTOCOL_VERSION = 1

#: Additive revision within the major version: 1 added the optional ``rid``
#: request-frame field and the ``trace`` op; 2 added the TCP transport,
#: backend identity (``backend_id`` in the ``hello`` result) and the cache
#: replication ops (``cache_probe`` / ``cache_fetch`` / ``cache_ingest``).
#: Informational — peers never reject on a minor mismatch.
PROTOCOL_MINOR = 2

#: Version of the ``metrics`` op's snapshot schema (see module docstring).
METRICS_VERSION = 1

#: Hard bound on one frame (64 MiB): large enough for an inline MNIST-scale
#: dataset, small enough that a garbage byte stream cannot balloon memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Engine-configuration facets that travel over the wire (everything that can
#: change a verdict or a timeout; ``predicate_pool`` deliberately excluded).
ENGINE_CONFIG_FIELDS = (
    "max_depth",
    "domain",
    "cprob_method",
    "timeout_seconds",
    "max_disjuncts",
    "impurity",
)


class ProtocolError(ValueError):
    """A malformed, oversized, or version-incompatible frame."""


class RequestTimeoutError(TimeoutError):
    """A request exceeded the client's per-request timeout.

    Subclasses :class:`TimeoutError` so :func:`repro.telemetry.events.classify_error`
    buckets it as ``timeout`` rather than ``io``.  The connection is left in
    an indeterminate state (the response may still be in flight), so clients
    mark themselves broken after raising it.
    """


class RemoteError(RuntimeError):
    """A server-reported failure, re-raised client-side.

    ``kind`` preserves the server-side exception type name so clients can
    distinguish validation errors from internal faults without parsing the
    message text.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


# ---------------------------------------------------------------- addresses
def parse_address(address: Union[str, Path]) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """Classify a server address as ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted TCP spellings: ``"host:port"`` (the port all digits, no ``/`` in
    the string — a plain filesystem path never parses as TCP) and an explicit
    ``"tcp://host:port"``.  IPv6 literals use brackets: ``"[::1]:9000"``.
    Everything else — :class:`~pathlib.Path` objects, strings with slashes,
    bare names — is a Unix-socket path.
    """
    if isinstance(address, Path):
        return ("unix", str(address))
    text = str(address)
    if text.startswith("unix://"):
        return ("unix", text[len("unix://") :])
    explicit = text.startswith("tcp://")
    if explicit:
        text = text[len("tcp://") :]
    elif "/" in text:
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit():
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]
        return ("tcp", (host, int(port)))
    if explicit:
        raise ProtocolError(f"malformed tcp:// address {address!r}")
    return ("unix", text)


def format_address(address: Union[str, Path, Tuple[str, int]]) -> str:
    """Canonical display form of an address (``host:port`` or the path)."""
    if isinstance(address, tuple):
        host, port = address
        if ":" in host:
            return f"[{host}]:{port}"
        return f"{host}:{port}"
    family, parsed = parse_address(address)
    if family == "tcp":
        return format_address(parsed)  # type: ignore[arg-type]
    return str(parsed)


# ------------------------------------------------------------------ framing
def encode_frame(payload: Mapping) -> bytes:
    """Serialize one frame (compact JSON + newline terminator)."""
    line = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()
    if len(line) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}")
    return line + b"\n"


def read_frame(reader: io.BufferedIOBase) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF before any bytes arrive."""
    line = reader.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-frame")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------- datasets
def dataset_to_wire(dataset: Union[Dataset, Mapping]) -> dict:
    """Wire form of a dataset: inline for :class:`Dataset`, ref for mappings.

    A mapping with a ``name`` key is a registry reference
    (``{"name": "iris", "scale": 0.3, "seed": 0}``); the server resolves it
    through :func:`repro.datasets.registry.load_dataset` and certifies
    against the *training* split — byte-identical to what the same reference
    loads client-side, because dataset generation is seed-deterministic.
    """
    if isinstance(dataset, Dataset):
        return {
            "inline": {
                "name": dataset.name,
                "X": dataset.X.tolist(),
                "y": dataset.y.tolist(),
                "n_classes": dataset.n_classes,
                "feature_kinds": [kind.value for kind in dataset.feature_kinds],
                "feature_names": list(dataset.feature_names),
                "class_names": list(dataset.class_names),
            }
        }
    if isinstance(dataset, Mapping) and "name" in dataset:
        ref = {"name": str(dataset["name"])}
        if dataset.get("scale") is not None:
            ref["scale"] = float(dataset["scale"])
        if dataset.get("seed") is not None:
            ref["seed"] = int(dataset["seed"])
        return {"ref": ref}
    raise ProtocolError(
        "dataset must be a repro Dataset (sent inline) or a registry "
        "reference mapping with a 'name' key"
    )


def dataset_from_wire(payload: Mapping) -> Dataset:
    """Decode a dataset wire form (resolving registry references)."""
    if "ref" in payload:
        # Deferred import: the registry pulls in every benchmark generator.
        from repro.datasets.registry import load_dataset

        ref = payload["ref"]
        split = load_dataset(
            str(ref["name"]),
            scale=ref.get("scale"),
            seed=int(ref.get("seed", 0)),
        )
        return split.train
    if "inline" in payload:
        inline = payload["inline"]
        return Dataset(
            X=np.asarray(inline["X"], dtype=float),
            y=np.asarray(inline["y"], dtype=np.int64),
            n_classes=int(inline.get("n_classes", 0)),
            feature_kinds=tuple(
                FeatureKind(kind) for kind in inline.get("feature_kinds", ())
            ),
            feature_names=tuple(inline.get("feature_names", ())),
            class_names=tuple(inline.get("class_names", ())),
            name=str(inline.get("name", "dataset")),
        )
    raise ProtocolError("dataset payload must carry 'ref' or 'inline'")


# ------------------------------------------------------------------- models
def model_to_wire(model: Optional[PerturbationModel]) -> Optional[dict]:
    """Wire form of a threat model (``None`` passes through for templates)."""
    if model is None:
        return None
    if isinstance(model, RemovalPoisoningModel):
        return {"family": "removal", "n": model.n}
    if isinstance(model, FractionalRemovalModel):
        return {"family": "fraction", "fraction": model.fraction}
    if isinstance(model, CompositePoisoningModel):
        return {
            "family": "composite",
            "n_remove": model.n_remove,
            "n_flip": model.n_flip,
            "n_classes": model.n_classes,
        }
    if isinstance(model, LabelFlipModel):
        return {"family": "label-flip", "n": model.n, "n_classes": model.n_classes}
    raise ProtocolError(
        f"threat model {type(model).__name__} has no wire representation"
    )


def model_from_wire(payload: Optional[Mapping]) -> Optional[PerturbationModel]:
    """Decode a threat-model wire form (``None`` passes through)."""
    if payload is None:
        return None
    family = payload.get("family")
    if family == "removal":
        return RemovalPoisoningModel(int(payload["n"]))
    if family == "fraction":
        return FractionalRemovalModel(float(payload["fraction"]))
    if family == "label-flip":
        classes = payload.get("n_classes")
        return LabelFlipModel(
            int(payload["n"]), n_classes=None if classes is None else int(classes)
        )
    if family == "composite":
        classes = payload.get("n_classes")
        return CompositePoisoningModel(
            int(payload["n_remove"]),
            int(payload["n_flip"]),
            n_classes=None if classes is None else int(classes),
        )
    raise ProtocolError(f"unknown threat-model family {family!r}")


# ------------------------------------------------------------------ budgets
def budget_to_wire(budget: Union[int, Tuple[int, int]]) -> List[int]:
    """Wire form of a cache budget key: always a ``[removals, flips]`` pair."""
    if isinstance(budget, int):
        return [budget, 0]
    removals, flips = budget
    return [int(removals), int(flips)]


def budget_from_wire(payload: Sequence) -> Tuple[int, int]:
    """Decode a ``[removals, flips]`` budget pair."""
    if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
        raise ProtocolError(f"budget must be a [removals, flips] pair, got {payload!r}")
    if len(payload) != 2:
        raise ProtocolError(f"budget must have exactly 2 entries, got {len(payload)}")
    return (int(payload[0]), int(payload[1]))


# ------------------------------------------------------------ engine config
def engine_config_to_wire(**config: object) -> dict:
    """Validate and normalize engine-configuration keyword arguments."""
    unknown = set(config) - set(ENGINE_CONFIG_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown engine configuration field(s): {sorted(unknown)}; "
            f"the wire form supports {ENGINE_CONFIG_FIELDS}"
        )
    return {key: value for key, value in config.items() if value is not None}


def engine_config_from_wire(payload: Optional[Mapping]) -> dict:
    """Decode an engine configuration into ``CertificationEngine`` kwargs."""
    return engine_config_to_wire(**dict(payload or {}))
