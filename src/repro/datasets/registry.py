"""Registry of the benchmark datasets used throughout the reproduction.

The five entries correspond to the five rows of Table 1 of the paper.  Every
entry records the paper's training/test sizes (for reporting) next to the
*default scale* the reproduction uses when the caller does not ask for a
specific scale: the three UCI-sized datasets default to their full size, the
MNIST variants default to a reduced size that keeps the pure-Python verifier
responsive (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.datasets import iris_like, mammography_like, mnist_like, wdbc_like
from repro.datasets.splits import DatasetSplit


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and generator for one benchmark dataset."""

    name: str
    description: str
    paper_train_size: int
    paper_test_size: int
    n_features: int
    n_classes: int
    feature_type: str
    default_scale: float
    factory: Callable[..., DatasetSplit]

    def load(self, scale: Optional[float] = None, *, seed: int = 0, **kwargs) -> DatasetSplit:
        """Generate the dataset at the requested (or default) scale."""
        effective_scale = self.default_scale if scale is None else float(scale)
        return self.factory(effective_scale, seed=seed, **kwargs)


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="iris",
        description="Iris-like: three flower species, four real features",
        paper_train_size=iris_like.PAPER_TRAIN_SIZE,
        paper_test_size=iris_like.PAPER_TEST_SIZE,
        n_features=4,
        n_classes=3,
        feature_type="real",
        default_scale=1.0,
        factory=iris_like.make_split,
    )
)
_register(
    DatasetSpec(
        name="mammography",
        description="Mammographic-Masses-like: benign vs malignant, five clinical features",
        paper_train_size=mammography_like.PAPER_TRAIN_SIZE,
        paper_test_size=mammography_like.PAPER_TEST_SIZE,
        n_features=5,
        n_classes=2,
        feature_type="real",
        default_scale=1.0,
        factory=mammography_like.make_split,
    )
)
_register(
    DatasetSpec(
        name="wdbc",
        description="Wisconsin-Diagnostic-Breast-Cancer-like: 30 real features",
        paper_train_size=wdbc_like.PAPER_TRAIN_SIZE,
        paper_test_size=wdbc_like.PAPER_TEST_SIZE,
        n_features=30,
        n_classes=2,
        feature_type="real",
        default_scale=1.0,
        factory=wdbc_like.make_split,
    )
)
_register(
    DatasetSpec(
        name="mnist17-binary",
        description="MNIST-1-7-Binary-like: ones vs sevens, boolean pixels",
        paper_train_size=mnist_like.PAPER_TRAIN_SIZE,
        paper_test_size=mnist_like.PAPER_TEST_SIZE,
        n_features=mnist_like.DEFAULT_SIDE**2,
        n_classes=2,
        feature_type="boolean",
        default_scale=0.15,
        factory=mnist_like.make_binary_split,
    )
)
_register(
    DatasetSpec(
        name="mnist17-real",
        description="MNIST-1-7-Real-like: ones vs sevens, real-valued pixels",
        paper_train_size=mnist_like.PAPER_TRAIN_SIZE,
        paper_test_size=mnist_like.PAPER_TEST_SIZE,
        n_features=mnist_like.DEFAULT_SIDE**2,
        n_classes=2,
        feature_type="real",
        default_scale=0.15,
        factory=mnist_like.make_real_split,
    )
)


def list_datasets() -> List[str]:
    """Names of every registered benchmark dataset (Table 1 order)."""
    return list(_REGISTRY.keys())


def get_spec(name: str) -> DatasetSpec:
    """Return the registry entry for ``name`` (raises ``KeyError`` if unknown)."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return _REGISTRY[name]


def load_dataset(
    name: str, scale: Optional[float] = None, *, seed: int = 0, **kwargs
) -> DatasetSplit:
    """Generate a registered benchmark dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        Fraction of the paper's dataset size to generate; ``None`` uses the
        registry default (full size for the UCI-like datasets, reduced for the
        MNIST variants).
    seed:
        Seed controlling both generation and the train/test split.
    """
    return get_spec(name).load(scale, seed=seed, **kwargs)


def dataset_summaries() -> List[Dict[str, object]]:
    """Table-1-style metadata rows for every registered dataset."""
    rows: List[Dict[str, object]] = []
    for spec in _REGISTRY.values():
        rows.append(
            {
                "name": spec.name,
                "description": spec.description,
                "paper_train_size": spec.paper_train_size,
                "paper_test_size": spec.paper_test_size,
                "n_features": spec.n_features,
                "n_classes": spec.n_classes,
                "feature_type": spec.feature_type,
                "default_scale": spec.default_scale,
            }
        )
    return rows
