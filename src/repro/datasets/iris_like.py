"""Synthetic stand-in for the UCI Iris dataset.

The real Iris dataset has 150 samples, four real-valued features and three
species, one of which (*setosa*) is linearly separable from the other two
while *versicolour* and *virginica* overlap.  The generator reproduces that
structure: three Gaussian clusters in four dimensions, one well separated and
two adjacent, split 120/30 into train/test as in Table 1 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.splits import DatasetSplit, train_test_split
from repro.datasets.synthetic import make_gaussian_classes, scaled_size
from repro.utils.rng import derive_seed

#: Training/test sizes reported in Table 1 of the paper.
PAPER_TRAIN_SIZE = 120
PAPER_TEST_SIZE = 30

_CLASS_NAMES = ("setosa", "versicolour", "virginica")
_FEATURE_NAMES = ("sepal_length", "sepal_width", "petal_length", "petal_width")

# Cluster means loosely follow the real Iris class means (in cm).
_CENTERS = np.asarray(
    [
        [5.0, 3.4, 1.5, 0.25],
        [5.9, 2.8, 4.3, 1.3],
        [6.6, 3.0, 5.6, 2.0],
    ]
)
_STDS = np.asarray([0.25, 0.35, 0.35])


def make_split(scale: float = 1.0, *, seed: int = 0) -> DatasetSplit:
    """Generate an Iris-like train/test split.

    ``scale=1.0`` matches the paper's 120/30 sizes; smaller scales shrink both
    portions proportionally (useful for fast tests).
    """
    total = scaled_size(PAPER_TRAIN_SIZE + PAPER_TEST_SIZE, scale, minimum=24)
    dataset = make_gaussian_classes(
        n_samples=total,
        centers=_CENTERS,
        cluster_std=_STDS,
        rng=derive_seed(seed, "iris"),
        name="iris-like",
        feature_names=_FEATURE_NAMES,
        class_names=_CLASS_NAMES,
    )
    test_fraction = PAPER_TEST_SIZE / (PAPER_TRAIN_SIZE + PAPER_TEST_SIZE)
    return train_test_split(dataset, test_fraction, rng=derive_seed(seed, "iris-split"))
