"""Synthetic stand-in for the UCI Mammographic Masses dataset.

The real dataset classifies breast masses as benign or malignant from five
low-resolution clinical attributes (BI-RADS assessment, age, shape, margin,
density); decision trees reach roughly 80-83% accuracy on it (Table 1), i.e.
the classes overlap substantially.  The generator mirrors that: two classes,
five features with small integer-like ranges, deliberately large class
overlap, split 664/166.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.splits import DatasetSplit, train_test_split
from repro.datasets.synthetic import make_gaussian_classes, scaled_size
from repro.utils.rng import derive_seed, make_rng

PAPER_TRAIN_SIZE = 664
PAPER_TEST_SIZE = 166

_CLASS_NAMES = ("benign", "malignant")
_FEATURE_NAMES = ("bi_rads", "age", "shape", "margin", "density")

# Means chosen so that the two classes overlap appreciably on every feature;
# ages are in decades to keep feature magnitudes comparable.
_CENTERS = np.asarray(
    [
        [3.6, 5.2, 2.0, 2.0, 2.9],
        [4.6, 6.3, 3.2, 3.4, 2.7],
    ]
)
_STDS = np.asarray([0.9, 1.3])


def make_split(scale: float = 1.0, *, seed: int = 0) -> DatasetSplit:
    """Generate a Mammographic-Masses-like train/test split."""
    total = scaled_size(PAPER_TRAIN_SIZE + PAPER_TEST_SIZE, scale, minimum=60)
    dataset = make_gaussian_classes(
        n_samples=total,
        centers=_CENTERS,
        cluster_std=_STDS,
        rng=derive_seed(seed, "mammography"),
        name="mammographic-masses-like",
        feature_names=_FEATURE_NAMES,
        class_names=_CLASS_NAMES,
    )
    # The clinical attributes of the original dataset are coarsely quantized
    # ordinal codes; rounding to one decimal keeps that flavour (and keeps the
    # number of candidate thresholds per feature realistic).
    generator = make_rng(derive_seed(seed, "mammography-round"))
    X = np.round(dataset.X, 1) + 0.0 * generator.random(dataset.X.shape)
    dataset = dataset.replace(X=X)
    test_fraction = PAPER_TEST_SIZE / (PAPER_TRAIN_SIZE + PAPER_TEST_SIZE)
    return train_test_split(
        dataset, test_fraction, rng=derive_seed(seed, "mammography-split")
    )
