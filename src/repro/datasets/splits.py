"""Train/test splitting utilities.

The UCI datasets used in the paper ship as a single table; the authors hold
out a random 20% as the test set (§6.1, footnote 9).  :func:`train_test_split`
reproduces that protocol deterministically given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split of one benchmark dataset."""

    train: Dataset
    test: Dataset

    @property
    def name(self) -> str:
        return self.train.name

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.train)} training / {len(self.test)} test samples, "
            f"{self.train.n_features} features, {self.train.n_classes} classes"
        )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, *, rng: RngLike = None
) -> DatasetSplit:
    """Randomly split ``dataset`` into train and test portions.

    The split is stratification-free (like the paper's protocol) but
    guarantees at least one training element per observed class so that the
    learners are well-defined.
    """
    test_fraction = check_fraction(test_fraction, "test_fraction")
    generator = make_rng(rng)
    size = len(dataset)
    permutation = generator.permutation(size)
    test_size = int(round(test_fraction * size))
    test_size = min(max(test_size, 0), max(size - 1, 0))
    test_indices = permutation[:test_size]
    train_indices = permutation[test_size:]

    # Ensure every class present in the data appears in the training portion.
    train_labels = set(int(label) for label in dataset.y[train_indices])
    missing = [
        class_index
        for class_index in range(dataset.n_classes)
        if class_index not in train_labels and np.any(dataset.y == class_index)
    ]
    if missing:
        train_set = set(int(i) for i in train_indices)
        for class_index in missing:
            donor = int(np.nonzero(dataset.y == class_index)[0][0])
            train_set.add(donor)
        train_indices = np.asarray(sorted(train_set), dtype=np.int64)
        test_indices = np.asarray(
            [int(i) for i in permutation if int(i) not in train_set], dtype=np.int64
        )

    train = dataset.subset(train_indices).replace(name=f"{dataset.name}-train")
    test = dataset.subset(test_indices).replace(name=f"{dataset.name}-test")
    return DatasetSplit(train=train, test=test)
