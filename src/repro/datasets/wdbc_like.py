"""Synthetic stand-in for the Wisconsin Diagnostic Breast Cancer dataset.

The real WDBC dataset has 569 samples with 30 real-valued features derived
from cell-nucleus measurements; the two classes (benign/malignant) are well
separated and shallow decision trees exceed 90% accuracy (Table 1).  The
generator produces two 30-dimensional Gaussian clusters whose separation is
concentrated in a handful of informative features — mirroring how a few
measurements (radius, concavity, texture) carry most of the signal in the
real data — with the remaining features acting as correlated noise.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.splits import DatasetSplit, train_test_split
from repro.datasets.synthetic import make_gaussian_classes, scaled_size
from repro.utils.rng import derive_seed

PAPER_TRAIN_SIZE = 456
PAPER_TEST_SIZE = 113

_N_FEATURES = 30
_N_INFORMATIVE = 6

_CLASS_NAMES = ("benign", "malignant")


def _centers() -> np.ndarray:
    """Class means: informative features separated, the rest identical."""
    benign = np.zeros(_N_FEATURES)
    malignant = np.zeros(_N_FEATURES)
    malignant[:_N_INFORMATIVE] = 2.2
    benign[:_N_INFORMATIVE] = 0.0
    # Offset both classes so features look like positive measurements.
    return np.vstack([benign, malignant]) + 3.0


def make_split(scale: float = 1.0, *, seed: int = 0) -> DatasetSplit:
    """Generate a WDBC-like train/test split."""
    total = scaled_size(PAPER_TRAIN_SIZE + PAPER_TEST_SIZE, scale, minimum=60)
    feature_names = tuple(f"measurement_{i}" for i in range(_N_FEATURES))
    dataset = make_gaussian_classes(
        n_samples=total,
        centers=_centers(),
        cluster_std=1.0,
        rng=derive_seed(seed, "wdbc"),
        name="wdbc-like",
        feature_names=feature_names,
        class_names=_CLASS_NAMES,
        class_weights=(0.63, 0.37),
    )
    test_fraction = PAPER_TEST_SIZE / (PAPER_TRAIN_SIZE + PAPER_TEST_SIZE)
    return train_test_split(dataset, test_fraction, rng=derive_seed(seed, "wdbc-split"))
