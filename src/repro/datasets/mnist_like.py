"""Synthetic stand-in for the MNIST-1-7 digit-classification task.

The paper evaluates two variants of the ones-versus-sevens MNIST subset
(13,007 training / 2,163 test images of 28x28 = 784 pixels):

* **MNIST-1-7-Binary** — every pixel reduced to its most significant bit, so
  each feature is boolean and the learner's predicate pool is fixed;
* **MNIST-1-7-Real** — 8-bit pixel intensities treated as real values, so the
  learner chooses thresholds dynamically and the abstract learner needs the
  symbolic predicates of Appendix B.

Without network access we synthesize images instead: a "one" is a vertical
stroke with a random horizontal offset and slant, a "seven" is a horizontal
top bar joined to a diagonal stroke, both with stroke-thickness jitter and
pixel noise.  The two generators share the image model and differ only in the
pixel representation, which preserves exactly the binary-versus-real contrast
that drives the paper's headline performance comparison (Figures 7 and 11).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.datasets.splits import DatasetSplit
from repro.utils.rng import RngLike, derive_seed, make_rng
from repro.utils.validation import check_positive_int

PAPER_TRAIN_SIZE = 13007
PAPER_TEST_SIZE = 100  # the paper runs robustness experiments on 100 test digits
PAPER_SIDE = 28

#: Default image side used by the registry; 14x14 = 196 features keeps the
#: verification experiments tractable in pure Python while preserving the
#: digit structure (see DESIGN.md's substitution table).
DEFAULT_SIDE = 14

_CLASS_NAMES = ("one", "seven")
CLASS_ONE = 0
CLASS_SEVEN = 1


def _draw_one(side: int, rng: np.random.Generator) -> np.ndarray:
    """Render a synthetic "1": a near-vertical stroke."""
    image = np.zeros((side, side))
    column = int(rng.integers(side // 3, 2 * side // 3))
    slant = float(rng.uniform(-0.25, 0.25))
    thickness = int(rng.integers(1, max(2, side // 7) + 1))
    top = int(rng.integers(0, max(1, side // 6)))
    bottom = side - 1 - int(rng.integers(0, max(1, side // 6)))
    for row in range(top, bottom + 1):
        center = column + slant * (row - side / 2)
        lo = int(round(center - thickness / 2))
        hi = int(round(center + thickness / 2))
        image[row, max(0, lo) : min(side, hi + 1)] = 1.0
    return image


def _draw_seven(side: int, rng: np.random.Generator) -> np.ndarray:
    """Render a synthetic "7": a top bar plus a descending diagonal."""
    image = np.zeros((side, side))
    top_row = int(rng.integers(0, max(1, side // 6)))
    bar_thickness = int(rng.integers(1, max(2, side // 8) + 1))
    left = int(rng.integers(0, side // 5))
    right = side - 1 - int(rng.integers(0, side // 6))
    image[top_row : top_row + bar_thickness, left : right + 1] = 1.0

    # Diagonal stroke from the right end of the bar down to the lower-middle.
    start_col = right
    end_col = int(rng.integers(side // 4, side // 2))
    thickness = int(rng.integers(1, max(2, side // 8) + 1))
    rows = np.arange(top_row, side - 1 - int(rng.integers(0, max(1, side // 8))))
    if rows.size:
        columns = np.linspace(start_col, end_col, rows.size)
        for row, center in zip(rows, columns):
            lo = int(round(center - thickness / 2))
            hi = int(round(center + thickness / 2))
            image[int(row), max(0, lo) : min(side, hi + 1)] = 1.0
    return image


def _render_digits(
    n_samples: int, side: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Render ``n_samples`` digit images and their labels (grayscale in [0, 255])."""
    labels = rng.integers(0, 2, size=n_samples)
    images = np.zeros((n_samples, side, side))
    for index, label in enumerate(labels):
        stroke = _draw_one(side, rng) if label == CLASS_ONE else _draw_seven(side, rng)
        intensity = rng.uniform(140.0, 255.0)
        background = rng.uniform(0.0, 25.0, size=(side, side))
        smear = rng.uniform(0.75, 1.0, size=(side, side))
        images[index] = np.clip(stroke * intensity * smear + background, 0.0, 255.0)
    return images.reshape(n_samples, side * side), labels.astype(np.int64)


def _feature_names(side: int) -> Tuple[str, ...]:
    return tuple(f"pixel_{row}_{col}" for row in range(side) for col in range(side))


def make_mnist17(
    n_train: int,
    n_test: int,
    *,
    side: int = DEFAULT_SIDE,
    binary: bool,
    rng: RngLike = None,
) -> DatasetSplit:
    """Generate an MNIST-1-7-like train/test split (binary or real pixels)."""
    n_train = check_positive_int(n_train, "n_train")
    n_test = check_positive_int(n_test, "n_test")
    side = check_positive_int(side, "side")
    generator = make_rng(rng)
    X, y = _render_digits(n_train + n_test, side, generator)

    if binary:
        X = (X >= 128.0).astype(float)
        kinds = tuple(FeatureKind.BOOLEAN for _ in range(side * side))
        name = "mnist-1-7-binary"
    else:
        kinds = tuple(FeatureKind.REAL for _ in range(side * side))
        name = "mnist-1-7-real"

    def build(rows: slice, suffix: str) -> Dataset:
        return Dataset(
            X=X[rows],
            y=y[rows],
            n_classes=2,
            feature_kinds=kinds,
            feature_names=_feature_names(side),
            class_names=_CLASS_NAMES,
            name=f"{name}-{suffix}",
        )

    return DatasetSplit(
        train=build(slice(0, n_train), "train"),
        test=build(slice(n_train, n_train + n_test), "test"),
    )


def make_binary_split(scale: float = 1.0, *, seed: int = 0, side: int = DEFAULT_SIDE) -> DatasetSplit:
    """MNIST-1-7-Binary-like split; ``scale=1.0`` matches the paper's 13,007 images."""
    n_train = max(64, int(round(PAPER_TRAIN_SIZE * float(scale))))
    n_test = max(10, int(round(PAPER_TEST_SIZE * max(float(scale), 0.25))))
    return make_mnist17(
        n_train, n_test, side=side, binary=True, rng=derive_seed(seed, "mnist-binary")
    )


def make_real_split(scale: float = 1.0, *, seed: int = 0, side: int = DEFAULT_SIDE) -> DatasetSplit:
    """MNIST-1-7-Real-like split; ``scale=1.0`` matches the paper's 13,007 images."""
    n_train = max(64, int(round(PAPER_TRAIN_SIZE * float(scale))))
    n_test = max(10, int(round(PAPER_TEST_SIZE * max(float(scale), 0.25))))
    return make_mnist17(
        n_train, n_test, side=side, binary=False, rng=derive_seed(seed, "mnist-real")
    )
