"""Dataset substrate: synthetic stand-ins for the paper's benchmark datasets.

The original evaluation uses three UCI datasets (Iris, Mammographic Masses,
Wisconsin Diagnostic Breast Cancer) and the MNIST-1-7 digit-classification
task in a boolean and a real-valued variant.  This environment has no network
access, so this subpackage provides deterministic synthetic generators that
reproduce each dataset's *shape* — number of classes, number and kind of
features, training/test sizes, and comparable class separability — which is
what drives Antidote's behaviour (see the substitution table in DESIGN.md).

Every generator accepts a ``scale`` argument: ``scale=1.0`` matches the
paper's training-set sizes, while the default registry entries use smaller
sizes suitable for continuous testing.
"""

from repro.datasets.registry import (
    DatasetSpec,
    dataset_summaries,
    list_datasets,
    load_dataset,
)
from repro.datasets.splits import DatasetSplit, train_test_split
from repro.datasets.toy import figure2_dataset

__all__ = [
    "DatasetSpec",
    "dataset_summaries",
    "list_datasets",
    "load_dataset",
    "DatasetSplit",
    "train_test_split",
    "figure2_dataset",
]
