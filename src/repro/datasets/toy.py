"""The illustrative dataset of Figure 2 of the paper.

Thirteen one-dimensional elements labelled *white* (class 0) or *black*
(class 1): the values ``{0, 1, 2, 3, 4, 7, 8, 9, 10}`` sit left of the best
split ``x <= 10`` (seven white, two black at 0 and 4) and ``{11, 12, 13, 14}``
sit right of it (all black).  The overview section of the paper uses this
dataset to walk through ``DTrace``, the score of the ``x <= 10`` split, and
the abstract class-probability interval ``[5/9, 1]`` under 2-poisoning; the
test suite checks all of those numbers against this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset, FeatureKind

#: Class index of the "white" (empty circle) elements in Figure 2.
WHITE = 0
#: Class index of the "black" (solid circle) elements in Figure 2.
BLACK = 1


def figure2_dataset() -> Dataset:
    """Return the 13-element black/white dataset of Figure 2."""
    values = [0, 1, 2, 3, 4, 7, 8, 9, 10, 11, 12, 13, 14]
    labels = {
        0: BLACK,
        1: WHITE,
        2: WHITE,
        3: WHITE,
        4: BLACK,
        7: WHITE,
        8: WHITE,
        9: WHITE,
        10: WHITE,
        11: BLACK,
        12: BLACK,
        13: BLACK,
        14: BLACK,
    }
    X = np.asarray([[float(v)] for v in values])
    y = np.asarray([labels[v] for v in values], dtype=np.int64)
    return Dataset(
        X=X,
        y=y,
        n_classes=2,
        feature_kinds=(FeatureKind.REAL,),
        feature_names=("x",),
        class_names=("white", "black"),
        name="figure2",
    )


def tiny_boolean_dataset() -> Dataset:
    """A minimal two-feature boolean dataset used throughout the test suite."""
    X = np.asarray(
        [
            [0, 0],
            [0, 1],
            [1, 0],
            [1, 1],
            [0, 0],
            [1, 1],
            [1, 0],
            [0, 1],
        ],
        dtype=float,
    )
    y = np.asarray([0, 0, 1, 1, 0, 1, 1, 0], dtype=np.int64)
    return Dataset(
        X=X,
        y=y,
        n_classes=2,
        feature_kinds=(FeatureKind.BOOLEAN, FeatureKind.BOOLEAN),
        name="tiny-boolean",
    )
