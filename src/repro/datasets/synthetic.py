"""Low-level synthetic data generators.

These are the building blocks the per-benchmark generators are assembled
from: Gaussian class clusters for real-valued features and noisy prototype
patterns for boolean features.  They are deliberately simple — the goal is to
produce datasets with controllable size, dimensionality, and class overlap,
which are the properties that drive the verifier's behaviour.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset, FeatureKind
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import ValidationError, check_positive_int


def make_gaussian_classes(
    n_samples: int,
    centers: np.ndarray,
    cluster_std: Sequence[float] | float = 1.0,
    *,
    rng: RngLike = None,
    class_weights: Optional[Sequence[float]] = None,
    name: str = "gaussian",
    feature_names: Sequence[str] = (),
    class_names: Sequence[str] = (),
) -> Dataset:
    """Sample a dataset of Gaussian clusters, one cluster per class.

    Parameters
    ----------
    n_samples:
        Total number of samples across all classes.
    centers:
        Array of shape ``(n_classes, n_features)`` with the cluster means.
    cluster_std:
        Scalar or per-class standard deviation of the isotropic clusters.
    class_weights:
        Optional sampling probabilities per class (defaults to uniform).
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2:
        raise ValidationError("centers must be a 2-D array (n_classes, n_features)")
    n_classes, n_features = centers.shape
    if np.isscalar(cluster_std):
        stds = np.full(n_classes, float(cluster_std))
    else:
        stds = np.asarray(cluster_std, dtype=float)
        if stds.shape != (n_classes,):
            raise ValidationError("cluster_std must be scalar or one value per class")
    generator = make_rng(rng)
    if class_weights is None:
        weights = np.full(n_classes, 1.0 / n_classes)
    else:
        weights = np.asarray(class_weights, dtype=float)
        weights = weights / weights.sum()

    labels = generator.choice(n_classes, size=n_samples, p=weights)
    X = centers[labels] + generator.normal(0.0, 1.0, size=(n_samples, n_features)) * stds[
        labels, None
    ]
    return Dataset(
        X=X,
        y=labels.astype(np.int64),
        n_classes=n_classes,
        feature_kinds=tuple(FeatureKind.REAL for _ in range(n_features)),
        feature_names=tuple(feature_names),
        class_names=tuple(class_names),
        name=name,
    )


def make_prototype_patterns(
    n_samples: int,
    prototypes: np.ndarray,
    flip_probability: float = 0.05,
    *,
    rng: RngLike = None,
    name: str = "patterns",
    class_names: Sequence[str] = (),
) -> Dataset:
    """Sample boolean feature vectors as noisy copies of per-class prototypes.

    Each sample copies its class prototype bit vector and independently flips
    every bit with probability ``flip_probability``.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    prototypes = np.asarray(prototypes, dtype=float)
    if prototypes.ndim != 2 or not np.all(np.isin(prototypes, (0.0, 1.0))):
        raise ValidationError("prototypes must be a 2-D 0/1 array (n_classes, n_features)")
    n_classes, n_features = prototypes.shape
    generator = make_rng(rng)
    labels = generator.integers(0, n_classes, size=n_samples)
    X = prototypes[labels].copy()
    flips = generator.random(size=X.shape) < float(flip_probability)
    X = np.where(flips, 1.0 - X, X)
    return Dataset(
        X=X,
        y=labels.astype(np.int64),
        n_classes=n_classes,
        feature_kinds=tuple(FeatureKind.BOOLEAN for _ in range(n_features)),
        class_names=tuple(class_names),
        name=name,
    )


def scaled_size(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a paper-size sample count down (or up) with a sensible floor."""
    return max(minimum, int(round(base * float(scale))))


def class_separation_report(dataset: Dataset) -> Tuple[float, float]:
    """Return (between-class distance, within-class spread) as a sanity metric.

    Used by the dataset tests to assert that the synthetic benchmarks are
    separable enough for decision trees to reach reasonable accuracy, which in
    turn makes the robustness experiments meaningful (Table 1's purpose).
    """
    means = []
    spreads = []
    for class_index in range(dataset.n_classes):
        rows = dataset.X[dataset.y == class_index]
        if rows.shape[0] == 0:
            continue
        means.append(rows.mean(axis=0))
        spreads.append(float(rows.std(axis=0).mean()))
    if len(means) < 2:
        return 0.0, float(np.mean(spreads) if spreads else 0.0)
    distances = []
    for i in range(len(means)):
        for j in range(i + 1, len(means)):
            distances.append(float(np.linalg.norm(means[i] - means[j])))
    return float(np.mean(distances)), float(np.mean(spreads))
