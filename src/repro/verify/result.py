"""Verification outcome types shared by the engine, the legacy driver, and reports.

:class:`VerificationStatus` and :class:`VerificationResult` describe the
outcome of certifying a single test point against a poisoning threat model:
whether a single class interval dominates (the point is *certified robust*),
or whether the analysis was inconclusive, timed out, or exhausted its
disjunct/memory budget — the same failure modes reported in §6.1 of the
paper.  They live in their own module so that both the modern
:class:`repro.api.CertificationEngine` and the deprecated
:class:`repro.verify.robustness.PoisoningVerifier` shim can share them
without an import cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.domains.interval import Interval

#: The abstract domains the verifier can use.  ``"either"`` mimics the paper's
#: headline experiment (Figure 6), which counts a point as verified when at
#: least one of the two domains succeeds.
DOMAINS = ("box", "disjuncts", "either")


class VerificationStatus(enum.Enum):
    """Outcome of a verification attempt."""

    ROBUST = "robust"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"
    RESOURCE_EXHAUSTED = "resource_exhausted"

    @property
    def is_certified(self) -> bool:
        return self is VerificationStatus.ROBUST


@dataclass(frozen=True)
class VerificationResult:
    """The result of certifying one test point against a poisoning model.

    Attributes
    ----------
    status:
        Whether robustness was proven (``ROBUST``) or why not.
    poisoning_amount:
        The nominal integer budget of the perturbation model that was
        checked (the ``n`` of ``Δn``, the flip budget for label flips, or
        the total contamination ``r + f`` for the composite model).
    poisoning_flips:
        The label-flip component of the budget: ``0`` for the pure-removal
        families, ``n`` for label flips, ``f`` for the composite ``Δ_{r,f}``
        model (whose removal component is ``poisoning_amount -
        poisoning_flips``).  Exported so composite results carry the full
        budget *pair*.
    predicted_class:
        The concrete prediction of ``DTrace`` on the unpoisoned training set.
    certified_class:
        The dominating class of the abstract result when ``status`` is
        ``ROBUST`` (always equal to ``predicted_class`` by soundness).
    class_intervals:
        The abstract class-probability intervals of the (joined) exit states.
    domain:
        Which abstract domain produced the reported result: ``"box"`` /
        ``"disjuncts"`` for removal-family models, ``"flip-box"`` /
        ``"flip-disjuncts"`` for the label-flip and composite removal+flip
        models.
    elapsed_seconds / peak_memory_bytes:
        Wall-clock time and peak Python-heap allocation of the attempt.
    log10_num_datasets:
        ``log10 |Δ(T)|`` — the size of the space a naïve enumeration baseline
        would need to explore.
    """

    status: VerificationStatus
    poisoning_amount: int
    predicted_class: int
    certified_class: Optional[int]
    class_intervals: Tuple[Interval, ...]
    domain: str
    elapsed_seconds: float
    peak_memory_bytes: int
    exit_count: int
    max_disjuncts: int
    log10_num_datasets: float
    poisoning_flips: int = 0
    message: str = ""

    @property
    def is_certified(self) -> bool:
        return self.status.is_certified

    def to_dict(self) -> dict:
        """Return a JSON-serializable summary (for logs, CSV export, dashboards)."""
        return {
            "status": self.status.value,
            "poisoning_amount": self.poisoning_amount,
            "poisoning_flips": self.poisoning_flips,
            "predicted_class": self.predicted_class,
            "certified_class": self.certified_class,
            "class_intervals": [[interval.lo, interval.hi] for interval in self.class_intervals],
            "domain": self.domain,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "exit_count": self.exit_count,
            "max_disjuncts": self.max_disjuncts,
            "log10_num_datasets": self.log10_num_datasets,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "VerificationResult":
        """Reconstruct a result from :meth:`to_dict` output (JSON round-trip)."""
        certified = payload["certified_class"]
        return cls(
            status=VerificationStatus(payload["status"]),
            poisoning_amount=int(payload["poisoning_amount"]),
            predicted_class=int(payload["predicted_class"]),
            certified_class=None if certified is None else int(certified),
            class_intervals=tuple(
                Interval(float(lo), float(hi)) for lo, hi in payload["class_intervals"]
            ),
            domain=str(payload["domain"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            peak_memory_bytes=int(payload["peak_memory_bytes"]),
            exit_count=int(payload["exit_count"]),
            max_disjuncts=int(payload["max_disjuncts"]),
            log10_num_datasets=float(payload["log10_num_datasets"]),
            # Pre-pair payloads (older caches / exports) default to no flips.
            poisoning_flips=int(payload.get("poisoning_flips", 0)),
            message=str(payload.get("message", "")),
        )

    def describe(self) -> str:
        intervals = ", ".join(str(interval) for interval in self.class_intervals)
        budget = f"n={self.poisoning_amount}"
        if self.poisoning_flips and self.poisoning_flips != self.poisoning_amount:
            # A genuine composite budget; pure-removal and pure-flip results
            # keep the familiar scalar rendering.
            budget = (
                f"(r, f)=({self.poisoning_amount - self.poisoning_flips}, "
                f"{self.poisoning_flips})"
            )
        return (
            f"{self.status.value} ({budget}, domain={self.domain}, "
            f"prediction={self.predicted_class}, intervals=[{intervals}], "
            f"time={self.elapsed_seconds:.3f}s)"
        )
